//! Telemetry walkthrough: run a short scenario with the structured event
//! journal and metrics registry attached, then mine the JSONL journal the
//! way an operator would — here, pulling out every deadline miss.
//!
//! ```sh
//! cargo run --release -p pqos-core --example telemetry_journal
//! ```

use pqos_core::config::SimConfig;
use pqos_core::system::QosSimulator;
use pqos_core::user::UserStrategy;
use pqos_failures::synthetic::AixLikeTrace;
use pqos_telemetry::{Telemetry, TelemetryEvent};
use pqos_workload::synthetic::{LogModel, SyntheticLog};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let path = std::env::temp_dir().join("pqos_telemetry_journal.jsonl");

    // A small SDSC-like workload over a year of AIX-like failures, with a
    // mid-accuracy predictor: enough action for every lifecycle event.
    let log = SyntheticLog::new(LogModel::SdscSp2)
        .jobs(400)
        .seed(11)
        .build();
    let trace = Arc::new(AixLikeTrace::new().days(365.0).seed(11).build());
    let config = SimConfig::paper_defaults()
        .accuracy(0.5)
        .user(UserStrategy::risk_threshold(0.5).expect("valid"));

    let telemetry = Telemetry::builder()
        .ring_buffer(256)
        .jsonl_path(&path)?
        .build();
    let output = QosSimulator::new(config, log, trace)
        .with_telemetry(telemetry)
        .run();

    println!(
        "simulated {} jobs: QoS {:.3}, {} deadline misses, {} failures hit jobs",
        output.report.jobs,
        output.report.qos,
        output.report.deadline_misses,
        output.report.job_failures,
    );

    // The journal is plain JSONL: one self-contained event per line. Grep
    // it back for the deadline misses.
    let journal = std::fs::read_to_string(&path)?;
    let mut misses = 0usize;
    for line in journal.lines() {
        let event = TelemetryEvent::from_jsonl(line).expect("journal lines round-trip");
        if let TelemetryEvent::DeadlineMissed {
            at,
            job,
            late_by_secs,
        } = event
        {
            misses += 1;
            if misses <= 5 {
                println!("  deadline miss: job {job} at {at} ({late_by_secs} s late)");
            }
        }
    }
    println!(
        "journal {} holds {} events, {} deadline misses",
        path.display(),
        journal.lines().count(),
        misses,
    );
    assert_eq!(
        misses, output.report.deadline_misses,
        "journal agrees with the aggregate report"
    );

    // The same run's metrics snapshot, rendered as a table.
    let snapshot = output.telemetry.expect("telemetered run has a snapshot");
    println!("\n{}", snapshot.render());
    Ok(())
}
