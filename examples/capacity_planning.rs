//! Capacity planning: how much offered load can the cluster absorb while
//! still keeping its promises?
//!
//! Sweeps the offered load of an SDSC-like workload and reports QoS,
//! utilization, mean wait, and lost work at two prediction accuracies —
//! the kind of study an operator would run before committing to
//! service-level agreements.
//!
//! ```sh
//! cargo run --release -p pqos-core --example capacity_planning
//! ```

use pqos_core::config::SimConfig;
use pqos_core::system::QosSimulator;
use pqos_core::user::UserStrategy;
use pqos_failures::synthetic::AixLikeTrace;
use pqos_sim_core::table::{fnum, Table};
use pqos_workload::synthetic::{LogModel, SyntheticLog};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Arc::new(AixLikeTrace::new().days(200.0).seed(11).build());
    let mut table = Table::new(vec![
        "offered load".into(),
        "a".into(),
        "QoS".into(),
        "utilization".into(),
        "mean wait (s)".into(),
        "lost work (node-s)".into(),
    ]);
    for load in [0.5, 0.65, 0.8, 0.95] {
        for accuracy in [0.0, 0.9] {
            let log = SyntheticLog::new(LogModel::SdscSp2)
                .jobs(2_000)
                .seed(11)
                .offered_load(load)
                .build();
            let config = SimConfig::paper_defaults()
                .accuracy(accuracy)
                .user(UserStrategy::risk_threshold(0.5)?);
            let report = QosSimulator::new(config, log, Arc::clone(&trace))
                .run()
                .report;
            table.row(vec![
                fnum(load, 2),
                fnum(accuracy, 1),
                fnum(report.qos, 4),
                fnum(report.utilization, 4),
                fnum(report.mean_wait_secs, 0),
                report.lost_work.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Higher offered load buys utilization at the cost of queueing;");
    println!("forecasting (a=0.9) claws back QoS and lost work at every load point.");
    Ok(())
}
