//! Negotiation walkthrough: the "unique dialog between the system and the
//! user" (§3.5), reproduced step by step.
//!
//! We plant a detectable failure on every node of a small cluster and show
//! the quote ladder the scheduler offers a 4-node job: the earliest
//! deadline carries a low probability of success; relaxing the deadline
//! buys certainty. Then we show how users with different risk strategies
//! (`U`) settle at different points on that ladder.
//!
//! ```sh
//! cargo run --release -p pqos-core --example negotiation
//! ```

use pqos_cluster::node::NodeId;
use pqos_cluster::topology::Topology;
use pqos_core::negotiate::{negotiate, NegotiationRequest};
use pqos_core::user::UserStrategy;
use pqos_failures::trace::{Failure, FailureTrace};
use pqos_predict::oracle::TraceOracle;
use pqos_sched::place::PlacementStrategy;
use pqos_sched::reservation::ReservationBook;
use pqos_sim_core::time::{SimDuration, SimTime};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node machine where *every* node has a predicted failure two
    // hours from now (px = 0.35 → success 0.65 if the job overlaps it).
    let failures = (0..4)
        .map(|n| Failure {
            time: SimTime::from_secs(2 * 3600),
            node: NodeId::new(n),
            detectability: 0.35,
        })
        .collect();
    let trace = Arc::new(FailureTrace::new(failures)?);
    let oracle = TraceOracle::new(trace, 1.0)?; // perfect forecasting
    let book = ReservationBook::new(4);

    let request = NegotiationRequest {
        size: 4,
        duration: SimDuration::from_hours(3), // overlaps the failure if started now
        now: SimTime::ZERO,
        down: &[],
        recovery_horizon: SimTime::ZERO,
        pre_start_risk: SimDuration::from_secs(120),
    };

    println!("A 4-node, 3-hour job arrives; every node fails (detectably) at t+2h.\n");
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "user strategy", "start", "deadline", "P(success)"
    );
    for (label, user) in [
        ("earliest deadline (U=0)", UserStrategy::AlwaysEarliest),
        ("balanced (U=0.5)", UserStrategy::risk_threshold(0.5)?),
        ("cautious (U=0.9)", UserStrategy::risk_threshold(0.9)?),
    ] {
        let outcome = negotiate(
            &book,
            Topology::Flat,
            PlacementStrategy::MinFailureProbability,
            &oracle,
            request,
            &user,
            16,
            16,
        )
        .expect("job fits the cluster");
        let q = &outcome.accepted;
        println!(
            "{:<28} {:>11}s {:>11}s {:>10.2}",
            label,
            q.start.as_secs(),
            q.deadline.as_secs(),
            q.promised_success()
        );
    }

    println!();
    println!("The earliest-deadline user starts immediately and accepts a 65%");
    println!("promise; the cautious user trades a later deadline for certainty —");
    println!("exactly the incentive structure the paper's market-based scheduler");
    println!("is built around.");
    Ok(())
}
