//! Predictor quality: derive a failure trace the way the paper did (raw
//! RAS log → severity/temporal/spatial filtering), then compare the
//! idealized trace oracle against the practical online predictors.
//!
//! ```sh
//! cargo run --release -p pqos-core --example predictor_quality
//! ```

use pqos_failures::filter::{filter_events, FilterConfig};
use pqos_failures::synthetic::RawLogBuilder;
use pqos_failures::trace::FailureTrace;
use pqos_predict::api::Predictor;
use pqos_predict::eval::{evaluate_per_node, evaluate_per_node_with_threshold};
use pqos_predict::online::{PatternPredictor, RateEstimator};
use pqos_predict::oracle::TraceOracle;
use pqos_sim_core::table::{fnum, Table};
use pqos_sim_core::time::SimDuration;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a raw RAS log: critical events with duplicate chatter,
    //    precursor warnings, shared-root-cause bursts, and noise.
    let raw = RawLogBuilder::new().days(120.0).seed(5).build();
    println!(
        "raw log: {} events, {} ground-truth failures",
        raw.events.len(),
        raw.ground_truth.len()
    );

    // 2. Filter it (severity → temporal → spatial), as in §4.3.
    let (records, stats) = filter_events(&raw.events, FilterConfig::default());
    println!(
        "filtered: kept {} (dropped {} severity, {} temporal, {} spatial)",
        stats.kept, stats.dropped_severity, stats.dropped_temporal, stats.dropped_spatial
    );

    // 3. Assign static detectabilities to get the replayable trace.
    let trace = Arc::new(FailureTrace::from_records(&records, 5));
    println!("trace: {}\n", trace.stats());

    // 4. Train the rate model on the first half of the trace.
    let split = trace.failures()[trace.len() / 2].time;
    let mut rate = RateEstimator::new(SimDuration::from_days(14), 0.7);
    for f in trace.iter().take_while(|f| f.time < split) {
        rate.observe_failure(f.node, f.time);
    }

    let mut table = Table::new(vec![
        "predictor".into(),
        "horizon".into(),
        "recall".into(),
        "precision".into(),
        "false-positive rate".into(),
    ]);
    let mut add = |name: &str, p: &dyn Predictor, horizon: SimDuration, threshold: f64| {
        let q = evaluate_per_node_with_threshold(&p, &trace, 128, horizon, horizon, threshold);
        table.row(vec![
            name.into(),
            format!("{}h", horizon.as_hours_f64()),
            fnum(q.recall().unwrap_or(0.0), 3),
            q.precision()
                .map(|v| fnum(v, 3))
                .unwrap_or_else(|| "-".into()),
            fnum(q.false_positive_rate().unwrap_or(0.0), 3),
        ]);
    };
    let half_day = SimDuration::from_hours(12);
    for a in [0.1, 0.7, 1.0] {
        let oracle = TraceOracle::new(Arc::clone(&trace), a)?;
        add(&format!("trace oracle (a={a:.1})"), &oracle, half_day, 0.0);
    }
    // The rate model always reports a nonzero probability (it carries a
    // prior), so it is evaluated with a firing threshold.
    add("decayed-rate estimator (p>0.05)", &rate, half_day, 0.05);
    println!("{}", table.render());

    // 5. The pattern detector is causal — its state only means something at
    //    "now" — so it is evaluated by online replay: before each critical
    //    event, ask whether the detector was already firing for that node.
    let mut pattern = PatternPredictor::new(SimDuration::from_hours(1), 3, 0.7);
    let truth: std::collections::HashSet<_> =
        raw.ground_truth.iter().map(|e| (e.time, e.node)).collect();
    let (mut hits, mut misses) = (0u32, 0u32);
    for e in &raw.events {
        // Query only at the ground-truth failures, not at their duplicate
        // critical chatter (which the real pipeline coalesces away).
        if e.severity.is_critical() && truth.contains(&(e.time, e.node)) {
            let window =
                pqos_sim_core::time::TimeWindow::starting_at(e.time, SimDuration::from_hours(1));
            if pattern.failure_probability(&[e.node], window) > 0.0 {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        pattern.observe_raw(e);
    }
    println!(
        "precursor-pattern detector (online replay): firing before {}/{} failures ({:.0}%)",
        hits,
        hits + misses,
        100.0 * f64::from(hits) / f64::from(hits + misses)
    );
    println!();
    println!("The oracle's recall tracks `a` with zero false positives (§4.3);");
    println!("the rate model finds the lemon nodes at the cost of false positives;");
    println!("the pattern detector's warning rate is bounded by the fraction of");
    println!("failures that emit precursors (70% here, as in Sahoo et al.).");
    let _ = evaluate_per_node::<pqos_predict::api::NullPredictor>; // both evaluators referenced
    Ok(())
}
