//! Diagnosing a run end-to-end: simulate, journal, doctor, reconstruct
//! spans, and export a Perfetto trace — the workflow DESIGN.md's
//! "Diagnosing a run" section walks through.
//!
//! ```sh
//! cargo run --release -p pqos-obs --example diagnose_run
//! ```

use pqos_core::config::SimConfig;
use pqos_core::system::QosSimulator;
use pqos_core::user::UserStrategy;
use pqos_failures::synthetic::AixLikeTrace;
use pqos_obs::chrome_trace;
use pqos_obs::doctor::Doctor;
use pqos_obs::span::{Outcome, PhaseKind, SpanForest};
use pqos_telemetry::{Telemetry, TelemetryEvent};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let journal_path = std::env::temp_dir().join("pqos_diagnose_run.jsonl");
    let trace_path = std::env::temp_dir().join("pqos_diagnose_run.trace.json");

    // A workload with enough failures that some deadlines are missed.
    let log =
        pqos_workload::synthetic::SyntheticLog::new(pqos_workload::synthetic::LogModel::SdscSp2)
            .jobs(300)
            .seed(7)
            .build();
    let trace = Arc::new(AixLikeTrace::new().days(365.0).seed(7).build());
    let config = SimConfig::paper_defaults()
        .accuracy(0.5)
        .user(UserStrategy::risk_threshold(0.5).expect("valid"));

    let telemetry = Telemetry::builder().jsonl_path(&journal_path)?.build();
    let output = QosSimulator::new(config, log, trace)
        .with_telemetry(telemetry.clone())
        .run();
    telemetry.flush();
    println!(
        "simulated {} jobs: QoS {:.3}, {} deadline misses",
        output.report.jobs, output.report.qos, output.report.deadline_misses
    );

    // Step 1: is the journal internally consistent?
    let journal = std::fs::read_to_string(&journal_path)?;
    let report = Doctor::check_str(&journal);
    println!(
        "doctor: {} errors, {} warnings over {} events",
        report.errors(),
        report.warnings(),
        report.events
    );
    assert_eq!(report.errors(), 0, "a real journal must be clean");

    // Step 2: where did the late jobs spend their time?
    let events: Vec<TelemetryEvent> = journal
        .lines()
        .filter_map(TelemetryEvent::from_jsonl)
        .collect();
    let forest = SpanForest::from_events(&events);
    let mut shown = 0;
    for span in forest.iter() {
        if span.outcome
            != (Outcome::Completed {
                met_deadline: false,
            })
        {
            continue;
        }
        // Every finished job's phases sum to its wall interval.
        assert_eq!(span.accounting_gap(), Some(0));
        if shown < 5 {
            println!(
                "  late job {}: wall {}s = queued {}s + running {}s + ckpt {}s + downtime {}s \
                 ({} restarts)",
                span.job,
                span.wall_secs().unwrap(),
                span.secs_in(PhaseKind::Queued),
                span.secs_in(PhaseKind::Running),
                span.secs_in(PhaseKind::Checkpointing),
                span.secs_in(PhaseKind::Downtime),
                span.restarts
            );
            shown += 1;
        }
    }

    // Step 3: export for about://tracing or ui.perfetto.dev.
    std::fs::write(&trace_path, chrome_trace(&events))?;
    println!(
        "journal: {}\ntrace:   {} (open in https://ui.perfetto.dev)",
        journal_path.display(),
        trace_path.display()
    );
    Ok(())
}
