//! Replaying logs from disk: serialize a workload to Standard Workload
//! Format and a failure trace to the plain-text trace format, read both
//! back, and verify the replayed simulation is bit-identical to running on
//! the in-memory originals — the workflow for replaying *real* archive
//! logs.
//!
//! ```sh
//! cargo run --release -p pqos-core --example trace_replay
//! ```

use pqos_core::config::SimConfig;
use pqos_core::system::QosSimulator;
use pqos_core::user::UserStrategy;
use pqos_failures::io::{parse_trace, to_text};
use pqos_failures::synthetic::AixLikeTrace;
use pqos_workload::swf::{parse_swf, to_swf};
use pqos_workload::synthetic::{LogModel, SyntheticLog};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = SyntheticLog::new(LogModel::NasaIpsc)
        .jobs(1_000)
        .seed(3)
        .build();
    let trace = AixLikeTrace::new().days(60.0).seed(3).build();

    // Round-trip both artifacts through their on-disk formats.
    let dir = std::env::temp_dir();
    let swf_path = dir.join("pqos_example_workload.swf");
    let trace_path = dir.join("pqos_example_failures.trace");
    std::fs::write(&swf_path, to_swf(&log))?;
    std::fs::write(&trace_path, to_text(&trace))?;
    println!("wrote {} and {}", swf_path.display(), trace_path.display());

    let log_from_disk = parse_swf(&std::fs::read_to_string(&swf_path)?)?.log;
    let trace_from_disk = parse_trace(&std::fs::read_to_string(&trace_path)?, 0)?;
    println!(
        "read back {} jobs and {} failures",
        log_from_disk.len(),
        trace_from_disk.len()
    );

    let config = SimConfig::paper_defaults()
        .accuracy(0.7)
        .user(UserStrategy::risk_threshold(0.5)?);
    let direct = QosSimulator::new(config.clone(), log, Arc::new(trace)).run();
    let replayed = QosSimulator::new(config, log_from_disk, Arc::new(trace_from_disk)).run();

    println!("\ndirect run:   {}", direct.report);
    println!("disk replay:  {}", replayed.report);
    assert_eq!(
        direct.report, replayed.report,
        "disk round-trip must not change the simulation"
    );
    println!("\nreports are identical — the on-disk formats are lossless.");

    std::fs::remove_file(swf_path).ok();
    std::fs::remove_file(trace_path).ok();
    Ok(())
}
