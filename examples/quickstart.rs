//! Quickstart: run the probabilistic-QoS system on a synthetic SDSC-like
//! workload and a year of synthetic failures, and print the paper's three
//! headline metrics.
//!
//! ```sh
//! cargo run --release -p pqos-core --example quickstart
//! ```

use pqos_core::config::SimConfig;
use pqos_core::system::QosSimulator;
use pqos_core::user::UserStrategy;
use pqos_failures::synthetic::AixLikeTrace;
use pqos_workload::synthetic::{LogModel, SyntheticLog};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2,000-job slice of an SDSC-SP2-like workload (the paper uses
    // 10,000 jobs; this keeps the quickstart under a second).
    let log = SyntheticLog::new(LogModel::SdscSp2)
        .jobs(2_000)
        .seed(7)
        .build();
    println!("workload: {}", log.stats());

    // A year of bursty, lemon-heavy failures on 128 nodes (§4.3).
    let trace = Arc::new(AixLikeTrace::new().days(365.0).seed(7).build());
    println!("failures: {}", trace.stats());

    // The paper's Table 2 system with a 70%-accurate predictor and users
    // who demand at least a 50% probability of success (Eq. 3).
    let config = SimConfig::paper_defaults()
        .accuracy(0.7)
        .user(UserStrategy::risk_threshold(0.5)?);

    let output = QosSimulator::new(config, log, trace).run();
    let r = &output.report;
    println!();
    println!("QoS (Eq. 2)        {:.4}", r.qos);
    println!("utilization        {:.4}", r.utilization);
    println!("lost work          {} node-seconds", r.lost_work);
    println!(
        "deadline misses    {}/{} jobs ({} hit by failures)",
        r.deadline_misses, r.jobs, r.job_failures
    );
    println!(
        "checkpoints        {} performed, {} skipped",
        r.checkpoints_performed, r.checkpoints_skipped
    );
    Ok(())
}
