//! Checkpoint-policy comparison on a single workload: never checkpoint,
//! classic periodic, the paper's literal Eq. 1 risk-based gate, and the
//! hybrid (Eq. 1 with a periodic default) the headline experiments use.
//!
//! ```sh
//! cargo run --release -p pqos-core --example checkpoint_policies
//! ```

use pqos_core::config::{CheckpointPolicyKind, SimConfig};
use pqos_core::system::QosSimulator;
use pqos_core::user::UserStrategy;
use pqos_failures::synthetic::AixLikeTrace;
use pqos_sim_core::table::{fnum, Table};
use pqos_workload::synthetic::{LogModel, SyntheticLog};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = SyntheticLog::new(LogModel::SdscSp2)
        .jobs(2_000)
        .seed(13)
        .build();
    let trace = Arc::new(AixLikeTrace::new().days(200.0).seed(13).build());

    let mut table = Table::new(vec![
        "policy".into(),
        "a".into(),
        "QoS".into(),
        "lost work (node-s)".into(),
        "ckpt performed".into(),
        "ckpt skipped".into(),
    ]);
    for kind in [
        CheckpointPolicyKind::None,
        CheckpointPolicyKind::Periodic,
        CheckpointPolicyKind::RiskBased,
        CheckpointPolicyKind::RiskBasedWithDefault,
    ] {
        for accuracy in [0.0, 1.0] {
            let config = SimConfig::paper_defaults()
                .accuracy(accuracy)
                .user(UserStrategy::risk_threshold(0.5)?)
                .checkpoint_policy(kind);
            let r = QosSimulator::new(config, log.clone(), Arc::clone(&trace))
                .run()
                .report;
            table.row(vec![
                kind.name().into(),
                fnum(accuracy, 1),
                fnum(r.qos, 4),
                r.lost_work.to_string(),
                r.checkpoints_performed.to_string(),
                r.checkpoints_skipped.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Eq. 1 taken literally checkpoints only when a failure is predicted —");
    println!("cheap at a=1, catastrophic at a=0. The hybrid keeps the periodic");
    println!("safety net when the predictor is silent, matching the paper's");
    println!("measured a=0 behaviour (see DESIGN.md).");
    Ok(())
}
