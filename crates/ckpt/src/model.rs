//! Checkpoint arithmetic: planned execution time with checkpoints, and
//! Young's optimal-interval formula used by the interval ablation.

use pqos_sim_core::time::SimDuration;

/// The checkpoint plan implied by a runtime `ej`, interval `I`, and
/// overhead `C`, assuming every request is granted.
///
/// Requests occur after each full interval of useful progress that is
/// *strictly inside* the run — a request exactly at completion would be
/// pointless, so a job with `ej = k·I` makes `k − 1` requests.
///
/// # Examples
///
/// ```
/// use pqos_ckpt::model::planned_execution;
/// use pqos_sim_core::time::SimDuration;
///
/// let plan = planned_execution(
///     SimDuration::from_secs(2 * 3600), // ej: two hours
///     SimDuration::from_secs(3600),     // I
///     SimDuration::from_secs(720),      // C
/// );
/// assert_eq!(plan.requests, 1);
/// assert_eq!(plan.total.as_secs(), 2 * 3600 + 720);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// Number of checkpoint requests the application will make.
    pub requests: u64,
    /// `Ej`: runtime plus overhead if every request is granted.
    pub total: SimDuration,
}

/// Computes the [`ExecutionPlan`] for a job.
///
/// # Panics
///
/// Panics if `interval` is zero.
pub fn planned_execution(
    runtime: SimDuration,
    interval: SimDuration,
    overhead: SimDuration,
) -> ExecutionPlan {
    assert!(!interval.is_zero(), "checkpoint interval must be positive");
    let requests = if runtime.is_zero() {
        0
    } else {
        (runtime.as_secs() - 1) / interval.as_secs()
    };
    ExecutionPlan {
        requests,
        total: runtime + overhead.saturating_mul(requests),
    }
}

/// Young's first-order optimal checkpoint interval `√(2·C·MTBF)`.
///
/// Used by the interval ablation to contrast the paper's fixed `I = 3600 s`
/// against the classical optimum for the trace's observed MTBF.
///
/// # Panics
///
/// Panics if either argument is zero.
///
/// # Examples
///
/// ```
/// use pqos_ckpt::model::young_interval;
/// use pqos_sim_core::time::SimDuration;
///
/// // C = 720 s, per-partition MTBF = 100 h → I* ≈ 22.8 h.
/// let i = young_interval(SimDuration::from_secs(720), SimDuration::from_hours(100));
/// assert!((i.as_secs() as f64 - 22768.0).abs() < 10.0);
/// ```
pub fn young_interval(overhead: SimDuration, mtbf: SimDuration) -> SimDuration {
    assert!(
        !overhead.is_zero() && !mtbf.is_zero(),
        "overhead and MTBF must be positive"
    );
    let secs = (2.0 * overhead.as_secs() as f64 * mtbf.as_secs() as f64).sqrt();
    SimDuration::from_secs(secs.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_job_requests_nothing() {
        let p = planned_execution(
            SimDuration::from_secs(100),
            SimDuration::from_secs(3600),
            SimDuration::from_secs(720),
        );
        assert_eq!(p.requests, 0);
        assert_eq!(p.total.as_secs(), 100);
    }

    #[test]
    fn exact_multiple_excludes_final_request() {
        let p = planned_execution(
            SimDuration::from_secs(3 * 3600),
            SimDuration::from_secs(3600),
            SimDuration::from_secs(720),
        );
        assert_eq!(p.requests, 2);
        assert_eq!(p.total.as_secs(), 3 * 3600 + 2 * 720);
    }

    #[test]
    fn one_second_over_interval_requests_once() {
        let p = planned_execution(
            SimDuration::from_secs(3601),
            SimDuration::from_secs(3600),
            SimDuration::from_secs(720),
        );
        assert_eq!(p.requests, 1);
    }

    #[test]
    fn zero_runtime_plan_is_empty() {
        let p = planned_execution(
            SimDuration::ZERO,
            SimDuration::from_secs(3600),
            SimDuration::from_secs(720),
        );
        assert_eq!(p.requests, 0);
        assert_eq!(p.total, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = planned_execution(
            SimDuration::from_secs(10),
            SimDuration::ZERO,
            SimDuration::from_secs(1),
        );
    }

    #[test]
    fn young_matches_closed_form() {
        let i = young_interval(SimDuration::from_secs(200), SimDuration::from_secs(10_000));
        assert_eq!(i.as_secs(), 2000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn young_rejects_zero() {
        let _ = young_interval(SimDuration::ZERO, SimDuration::from_secs(1));
    }
}
