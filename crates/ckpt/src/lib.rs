//! # pqos-ckpt
//!
//! Cooperative checkpointing for the DSN 2005 *Probabilistic QoS
//! Guarantees* reproduction.
//!
//! * [`policy`] — the gating policies: [`policy::NoCheckpointing`],
//!   [`policy::Periodic`], the paper's risk-based Eq. 1
//!   ([`policy::RiskBased`]), the conservative hybrid
//!   ([`policy::RiskBasedWithDefault`]), and the
//!   [`policy::DeadlineAware`] override wrapper;
//! * [`model`] — checkpoint arithmetic (`Ej` from `ej`, `I`, `C`) and
//!   Young's optimal interval for the ablation.
//!
//! # Examples
//!
//! ```
//! use pqos_ckpt::policy::{CheckpointContext, CheckpointDecision, CheckpointPolicy,
//!                         DeadlinePressure, RiskBased};
//! use pqos_sim_core::time::{SimDuration, SimTime};
//!
//! let ctx = CheckpointContext {
//!     now: SimTime::from_secs(7200),
//!     interval: SimDuration::from_secs(3600),
//!     overhead: SimDuration::from_secs(720),
//!     skipped_since_last: 1,
//!     failure_probability: 0.15,
//!     baseline_failure_probability: 0.0,
//!     deadline_pressure: DeadlinePressure::None,
//! };
//! // 0.15 · 2·3600 = 1080 ≥ 720 → perform.
//! assert_eq!(RiskBased.decide(&ctx), CheckpointDecision::Perform);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod policy;

pub use model::{planned_execution, young_interval, ExecutionPlan};
pub use policy::{
    CheckpointContext, CheckpointDecision, CheckpointPolicy, DeadlineAware, DeadlinePressure,
    InstrumentedPolicy, NoCheckpointing, Periodic, RiskBased, RiskBasedWithDefault,
    RiskBasedWithPrior,
};
