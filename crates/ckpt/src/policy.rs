//! Checkpoint policies, including the paper's risk-based cooperative
//! checkpointing (§3.4).
//!
//! An application requests a checkpoint every interval `I` of useful
//! progress; the *system* decides whether to grant (perform) or deny (skip)
//! it. Performing pauses progress for the overhead `C`. Skipping leaves the
//! rollback point where it was: if `d − 1` consecutive checkpoints have
//! been skipped, a failure before the next completed checkpoint loses
//! `d·I` of progress (plus whatever was underway).
//!
//! The paper's risk-based heuristic (Eq. 1) grants the checkpoint iff
//!
//! ```text
//! pf · d·I ≥ C
//! ```
//!
//! where `pf` is the predicted probability that the job's partition fails
//! before the next checkpoint would complete. Taken literally, `pf = 0`
//! (no prediction) means *every* checkpoint is skipped — that is the
//! [`RiskBased`] policy, and it is what makes the `a = 0` end of the
//! paper's lost-work curves so high. [`RiskBasedWithDefault`] is the
//! conservative hybrid that falls back to periodic behaviour when the
//! predictor is silent; the ablation benches compare them.

use pqos_sim_core::time::{SimDuration, SimTime};
use std::fmt;

/// Whether the negotiated deadline forces the system's hand (§3.4: "the
/// checkpoint will be skipped if doing so might allow a job to meet a
/// deadline that it would otherwise miss").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePressure {
    /// The deadline is comfortably met either way (or there is none).
    #[default]
    None,
    /// Performing this checkpoint would push the estimated completion past
    /// the deadline, while skipping it keeps the deadline reachable.
    SkipToMeet,
}

/// Everything a policy may consult when deciding one checkpoint request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointContext {
    /// Request time `bᵢ`.
    pub now: SimTime,
    /// Checkpoint interval `I`.
    pub interval: SimDuration,
    /// Checkpoint overhead `C` (the paper approximates `Cᵢ₊₁ ≈ Cᵢ = C`).
    pub overhead: SimDuration,
    /// Consecutive requests already skipped since the last completed
    /// checkpoint (so the paper's `d` is `skipped_since_last + 1`).
    pub skipped_since_last: u64,
    /// Predicted probability that the job's partition fails before the
    /// next checkpoint completes.
    pub failure_probability: f64,
    /// System-estimated *base-rate* probability of the same event, derived
    /// from historical failure rates rather than the predictor — nonzero
    /// even when the predictor is silent. Used by
    /// [`RiskBasedWithPrior`].
    pub baseline_failure_probability: f64,
    /// Deadline pressure computed by the negotiation layer.
    pub deadline_pressure: DeadlinePressure,
}

impl CheckpointContext {
    /// The paper's `d`: number of intervals of progress that would be lost
    /// if the job failed right now (1 plus the skipped requests).
    pub fn d(&self) -> u64 {
        self.skipped_since_last + 1
    }

    /// Work at risk `d·I`.
    pub fn at_risk(&self) -> SimDuration {
        self.interval.saturating_mul(self.d())
    }
}

/// The system's answer to a checkpoint request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointDecision {
    /// Grant: pause the job for `C` and move the rollback point forward.
    Perform,
    /// Deny: continue computing; the rollback point stays put.
    Skip,
}

impl fmt::Display for CheckpointDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointDecision::Perform => write!(f, "perform"),
            CheckpointDecision::Skip => write!(f, "skip"),
        }
    }
}

/// A checkpoint gating policy.
///
/// Implementations must be pure functions of the context so simulation
/// replays are deterministic.
pub trait CheckpointPolicy {
    /// Decides one checkpoint request.
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Never checkpoint. The paper's worst case for lost work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCheckpointing;

impl CheckpointPolicy for NoCheckpointing {
    fn decide(&self, _ctx: &CheckpointContext) -> CheckpointDecision {
        CheckpointDecision::Skip
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Always checkpoint — classic periodic checkpointing, the standard
/// practice the paper compares against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Periodic;

impl CheckpointPolicy for Periodic {
    fn decide(&self, _ctx: &CheckpointContext) -> CheckpointDecision {
        CheckpointDecision::Perform
    }
    fn name(&self) -> &'static str {
        "periodic"
    }
}

/// The paper's Eq. 1, taken literally: perform iff `pf · d·I ≥ C`.
///
/// # Examples
///
/// ```
/// use pqos_ckpt::policy::*;
/// use pqos_sim_core::time::{SimDuration, SimTime};
///
/// let ctx = CheckpointContext {
///     now: SimTime::ZERO,
///     interval: SimDuration::from_secs(3600),
///     overhead: SimDuration::from_secs(720),
///     skipped_since_last: 0,
///     failure_probability: 0.5,
///     baseline_failure_probability: 0.01,
///     deadline_pressure: DeadlinePressure::None,
/// };
/// // 0.5 · 3600 = 1800 ≥ 720 → perform.
/// assert_eq!(RiskBased.decide(&ctx), CheckpointDecision::Perform);
///
/// let quiet = CheckpointContext { failure_probability: 0.1, ..ctx };
/// // 0.1 · 3600 = 360 < 720 → skip.
/// assert_eq!(RiskBased.decide(&quiet), CheckpointDecision::Skip);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RiskBased;

impl CheckpointPolicy for RiskBased {
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision {
        let expected_loss = ctx.failure_probability * ctx.at_risk().as_secs() as f64;
        if expected_loss >= ctx.overhead.as_secs() as f64 {
            CheckpointDecision::Perform
        } else {
            CheckpointDecision::Skip
        }
    }
    fn name(&self) -> &'static str {
        "risk-based"
    }
}

/// Risk-based with a conservative default: when the predictor is silent
/// (`pf = 0`), perform the checkpoint (periodic behaviour); when it speaks,
/// apply Eq. 1.
///
/// Rationale: the oracle's silence is a false-negative-prone signal, not a
/// safety certificate, so a deployment may prefer to keep the periodic
/// safety net. Compared in the checkpoint-policy ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RiskBasedWithDefault;

impl CheckpointPolicy for RiskBasedWithDefault {
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision {
        if ctx.failure_probability == 0.0 {
            CheckpointDecision::Perform
        } else {
            RiskBased.decide(ctx)
        }
    }
    fn name(&self) -> &'static str {
        "risk-based+periodic-default"
    }
}

/// Risk-based with a historical prior: Eq. 1 evaluated on the *larger* of
/// the predicted and base-rate failure probabilities.
///
/// This is the flavour of risk-based checkpointing in Oliner's cooperative-
/// checkpointing work: absence of a prediction is not evidence of safety,
/// so the system falls back to its historical failure-rate estimate. Small
/// partitions with short windows accumulate risk across skipped requests
/// (`d` grows) and still checkpoint periodically — just less often than a
/// blind periodic policy.
///
/// # Examples
///
/// ```
/// use pqos_ckpt::policy::*;
/// use pqos_sim_core::time::{SimDuration, SimTime};
///
/// let mut ctx = CheckpointContext {
///     now: SimTime::ZERO,
///     interval: SimDuration::from_secs(3600),
///     overhead: SimDuration::from_secs(720),
///     skipped_since_last: 0,
///     failure_probability: 0.0,
///     baseline_failure_probability: 0.05,
///     deadline_pressure: DeadlinePressure::None,
/// };
/// // 0.05 · 3600 = 180 < 720 → skip; after 3 skips, 0.05·4·3600 ≥ 720.
/// assert_eq!(RiskBasedWithPrior.decide(&ctx), CheckpointDecision::Skip);
/// ctx.skipped_since_last = 3;
/// assert_eq!(RiskBasedWithPrior.decide(&ctx), CheckpointDecision::Perform);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RiskBasedWithPrior;

impl CheckpointPolicy for RiskBasedWithPrior {
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision {
        let pf = ctx
            .failure_probability
            .max(ctx.baseline_failure_probability);
        let effective = CheckpointContext {
            failure_probability: pf,
            ..*ctx
        };
        RiskBased.decide(&effective)
    }
    fn name(&self) -> &'static str {
        "risk-based+prior"
    }
}

/// Wraps any policy with the paper's deadline override: skip whenever
/// skipping is what lets the job meet its negotiated deadline.
///
/// # Examples
///
/// ```
/// use pqos_ckpt::policy::*;
/// use pqos_sim_core::time::{SimDuration, SimTime};
///
/// let policy = DeadlineAware::new(Periodic);
/// let ctx = CheckpointContext {
///     now: SimTime::ZERO,
///     interval: SimDuration::from_secs(3600),
///     overhead: SimDuration::from_secs(720),
///     skipped_since_last: 0,
///     failure_probability: 0.9,
///     baseline_failure_probability: 0.01,
///     deadline_pressure: DeadlinePressure::SkipToMeet,
/// };
/// assert_eq!(policy.decide(&ctx), CheckpointDecision::Skip);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineAware<P> {
    inner: P,
}

impl<P: CheckpointPolicy> DeadlineAware<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        DeadlineAware { inner }
    }

    /// The wrapped policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: CheckpointPolicy> CheckpointPolicy for DeadlineAware<P> {
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision {
        match ctx.deadline_pressure {
            DeadlinePressure::SkipToMeet => CheckpointDecision::Skip,
            DeadlinePressure::None => self.inner.decide(ctx),
        }
    }
    fn name(&self) -> &'static str {
        "deadline-aware"
    }
}

impl<P: CheckpointPolicy + ?Sized> CheckpointPolicy for Box<P> {
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision {
        (**self).decide(ctx)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Wraps any policy and records its Eq. 1 decisions into a telemetry
/// metrics registry (`ckpt.*`) without altering them.
///
/// The simulator installs this wrapper only when telemetry is enabled, so
/// the uninstrumented path pays nothing.
///
/// # Examples
///
/// ```
/// use pqos_ckpt::policy::*;
/// use pqos_sim_core::time::{SimDuration, SimTime};
/// use pqos_telemetry::Telemetry;
///
/// let telemetry = Telemetry::builder().build();
/// let policy = InstrumentedPolicy::new(Periodic, telemetry.clone());
/// let ctx = CheckpointContext {
///     now: SimTime::ZERO,
///     interval: SimDuration::from_secs(3600),
///     overhead: SimDuration::from_secs(720),
///     skipped_since_last: 0,
///     failure_probability: 0.0,
///     baseline_failure_probability: 0.0,
///     deadline_pressure: DeadlinePressure::None,
/// };
/// assert_eq!(policy.decide(&ctx), CheckpointDecision::Perform);
/// let snap = telemetry.snapshot().unwrap();
/// assert_eq!(snap.counter("ckpt.requests"), Some(1));
/// assert_eq!(snap.counter("ckpt.performed"), Some(1));
/// ```
pub struct InstrumentedPolicy<P> {
    inner: P,
    // Handles resolved once at wrap time; `decide` runs on every checkpoint
    // request of every job.
    requests: pqos_telemetry::Counter,
    performed: pqos_telemetry::Counter,
    skipped: pqos_telemetry::Counter,
    request_pf: pqos_telemetry::Histogram,
    at_risk_secs: pqos_telemetry::Histogram,
}

impl<P: CheckpointPolicy> InstrumentedPolicy<P> {
    /// Wraps `inner`, recording into `telemetry`.
    pub fn new(inner: P, telemetry: pqos_telemetry::Telemetry) -> Self {
        InstrumentedPolicy {
            inner,
            requests: telemetry.counter("ckpt.requests"),
            performed: telemetry.counter("ckpt.performed"),
            skipped: telemetry.counter("ckpt.skipped"),
            request_pf: telemetry.histogram("ckpt.request_pf"),
            at_risk_secs: telemetry.histogram("ckpt.work_at_risk_secs"),
        }
    }

    /// The wrapped policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: CheckpointPolicy> CheckpointPolicy for InstrumentedPolicy<P> {
    fn decide(&self, ctx: &CheckpointContext) -> CheckpointDecision {
        let decision = self.inner.decide(ctx);
        self.requests.inc();
        match decision {
            CheckpointDecision::Perform => self.performed.inc(),
            CheckpointDecision::Skip => self.skipped.inc(),
        }
        self.request_pf.observe(ctx.failure_probability);
        self.at_risk_secs.observe(ctx.at_risk().as_secs() as f64);
        decision
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pf: f64, skipped: u64) -> CheckpointContext {
        CheckpointContext {
            now: SimTime::from_secs(1000),
            interval: SimDuration::from_secs(3600),
            overhead: SimDuration::from_secs(720),
            skipped_since_last: skipped,
            failure_probability: pf,
            baseline_failure_probability: 0.0,
            deadline_pressure: DeadlinePressure::None,
        }
    }

    #[test]
    fn d_counts_current_interval() {
        assert_eq!(ctx(0.0, 0).d(), 1);
        assert_eq!(ctx(0.0, 3).d(), 4);
        assert_eq!(ctx(0.0, 3).at_risk(), SimDuration::from_secs(4 * 3600));
    }

    #[test]
    fn risk_based_threshold_is_eq1() {
        // Boundary: pf·dI = C exactly → perform (inequality is ≥).
        let boundary = ctx(720.0 / 3600.0, 0);
        assert_eq!(RiskBased.decide(&boundary), CheckpointDecision::Perform);
        let below = ctx(719.0 / 3600.0, 0);
        assert_eq!(RiskBased.decide(&below), CheckpointDecision::Skip);
    }

    #[test]
    fn risk_based_accumulates_risk_over_skips() {
        // pf = 0.05: 0.05·3600 = 180 < 720 → skip; after 3 skips,
        // 0.05·4·3600 = 720 ≥ 720 → perform.
        assert_eq!(RiskBased.decide(&ctx(0.05, 0)), CheckpointDecision::Skip);
        assert_eq!(RiskBased.decide(&ctx(0.05, 3)), CheckpointDecision::Perform);
    }

    #[test]
    fn risk_based_skips_on_silence() {
        assert_eq!(RiskBased.decide(&ctx(0.0, 100)), CheckpointDecision::Skip);
    }

    #[test]
    fn hybrid_performs_on_silence() {
        assert_eq!(
            RiskBasedWithDefault.decide(&ctx(0.0, 0)),
            CheckpointDecision::Perform
        );
        // With a prediction it behaves like Eq. 1.
        assert_eq!(
            RiskBasedWithDefault.decide(&ctx(0.05, 0)),
            CheckpointDecision::Skip
        );
        assert_eq!(
            RiskBasedWithDefault.decide(&ctx(0.5, 0)),
            CheckpointDecision::Perform
        );
    }

    #[test]
    fn constant_policies() {
        assert_eq!(
            NoCheckpointing.decide(&ctx(1.0, 9)),
            CheckpointDecision::Skip
        );
        assert_eq!(Periodic.decide(&ctx(0.0, 0)), CheckpointDecision::Perform);
    }

    #[test]
    fn deadline_override_beats_any_inner_decision() {
        let mut c = ctx(1.0, 9);
        c.deadline_pressure = DeadlinePressure::SkipToMeet;
        assert_eq!(
            DeadlineAware::new(Periodic).decide(&c),
            CheckpointDecision::Skip
        );
        assert_eq!(
            DeadlineAware::new(RiskBased).decide(&c),
            CheckpointDecision::Skip
        );
        c.deadline_pressure = DeadlinePressure::None;
        assert_eq!(
            DeadlineAware::new(Periodic).decide(&c),
            CheckpointDecision::Perform
        );
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            NoCheckpointing.name(),
            Periodic.name(),
            RiskBased.name(),
            RiskBasedWithDefault.name(),
            RiskBasedWithPrior.name(),
            DeadlineAware::new(Periodic).name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn prior_policy_uses_max_of_prediction_and_baseline() {
        let mut c = ctx(0.0, 0);
        c.baseline_failure_probability = 0.25;
        // max(0, 0.25)·3600 = 900 ≥ 720 → perform on the prior alone.
        assert_eq!(RiskBasedWithPrior.decide(&c), CheckpointDecision::Perform);
        // A strong prediction dominates a weak prior.
        let mut c = ctx(0.5, 0);
        c.baseline_failure_probability = 0.01;
        assert_eq!(RiskBasedWithPrior.decide(&c), CheckpointDecision::Perform);
        // Both weak → skip.
        let mut c = ctx(0.01, 0);
        c.baseline_failure_probability = 0.01;
        assert_eq!(RiskBasedWithPrior.decide(&c), CheckpointDecision::Skip);
    }

    #[test]
    fn boxed_policy_delegates() {
        let boxed: Box<dyn CheckpointPolicy> = Box::new(RiskBased);
        assert_eq!(boxed.decide(&ctx(1.0, 0)), CheckpointDecision::Perform);
        assert_eq!(boxed.name(), "risk-based");
    }

    #[test]
    fn decision_display() {
        assert_eq!(CheckpointDecision::Perform.to_string(), "perform");
        assert_eq!(CheckpointDecision::Skip.to_string(), "skip");
    }

    #[test]
    fn into_inner_round_trips() {
        assert_eq!(DeadlineAware::new(Periodic).into_inner(), Periodic);
    }

    #[test]
    fn instrumented_policy_counts_without_changing_decisions() {
        let telemetry = pqos_telemetry::Telemetry::builder().build();
        let policy = InstrumentedPolicy::new(RiskBased, telemetry.clone());
        for (pf, skipped) in [(1.0, 0), (0.0, 0), (0.0, 5)] {
            let c = ctx(pf, skipped);
            assert_eq!(policy.decide(&c), RiskBased.decide(&c));
        }
        assert_eq!(policy.name(), RiskBased.name());
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counter("ckpt.requests"), Some(3));
        assert_eq!(snap.counter("ckpt.performed"), Some(1));
        assert_eq!(snap.counter("ckpt.skipped"), Some(2));
        assert_eq!(snap.histogram("ckpt.request_pf").unwrap().count, 3);
        assert_eq!(policy.into_inner(), RiskBased);
    }

    #[test]
    fn instrumented_policy_with_disabled_handle_is_silent() {
        let policy = InstrumentedPolicy::new(Periodic, pqos_telemetry::Telemetry::disabled());
        assert_eq!(policy.decide(&ctx(0.0, 0)), CheckpointDecision::Perform);
    }
}
