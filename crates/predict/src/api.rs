//! The prediction interface consumed by the scheduler, the checkpointer,
//! and the negotiation layer.

use pqos_cluster::node::NodeId;
use pqos_sim_core::time::TimeWindow;

/// An event-prediction mechanism (§3.2).
///
/// "The prediction algorithm in this paper is given a set (partition) of
/// nodes and a time window, and returns the estimated probability of
/// failure."
///
/// Implementations must return a probability in `[0, 1]`; `0` means "no
/// failure foreseen", which callers treat as the absence of a prediction
/// rather than a certificate of safety.
pub trait Predictor {
    /// Estimated probability that at least one node of `nodes` fails within
    /// `window`.
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64;

    /// Convenience: single-node query.
    fn node_failure_probability(&self, node: NodeId, window: TimeWindow) -> f64 {
        self.failure_probability(&[node], window)
    }
}

/// The no-forecasting baseline: predicts nothing, ever.
///
/// Equivalent to a [`crate::oracle::TraceOracle`] with accuracy 0, but
/// usable without a trace. The paper's comparisons against "a system that
/// does not use event prediction" use this.
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
/// use pqos_predict::api::{NullPredictor, Predictor};
/// use pqos_sim_core::time::{SimTime, TimeWindow};
///
/// let p = NullPredictor;
/// let w = TimeWindow::new(SimTime::ZERO, SimTime::from_secs(1_000_000));
/// assert_eq!(p.failure_probability(&[NodeId::new(0)], w), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPredictor;

impl Predictor for NullPredictor {
    fn failure_probability(&self, _nodes: &[NodeId], _window: TimeWindow) -> f64 {
        0.0
    }
}

impl<P: Predictor + ?Sized> Predictor for &P {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        (**self).failure_probability(nodes, window)
    }
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        (**self).failure_probability(nodes, window)
    }
}

impl<P: Predictor + ?Sized> Predictor for std::sync::Arc<P> {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        (**self).failure_probability(nodes, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_sim_core::time::SimTime;

    #[test]
    fn null_predictor_is_always_zero() {
        let w = TimeWindow::new(SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(NullPredictor.failure_probability(&[], w), 0.0);
        assert_eq!(
            NullPredictor.node_failure_probability(NodeId::new(5), w),
            0.0
        );
    }

    #[test]
    fn trait_objects_and_smart_pointers_work() {
        let w = TimeWindow::new(SimTime::ZERO, SimTime::from_secs(100));
        let boxed: Box<dyn Predictor> = Box::new(NullPredictor);
        assert_eq!(boxed.failure_probability(&[NodeId::new(0)], w), 0.0);
        let arc: std::sync::Arc<dyn Predictor> = std::sync::Arc::new(NullPredictor);
        assert_eq!(arc.failure_probability(&[NodeId::new(0)], w), 0.0);
        let by_ref: &dyn Predictor = &NullPredictor;
        assert_eq!(by_ref.node_failure_probability(NodeId::new(1), w), 0.0);
    }
}
