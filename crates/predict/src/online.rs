//! Online predictors: learn from the event stream instead of consulting a
//! trace oracle.
//!
//! The paper's simulations use the idealized trace oracle, but its §3.2
//! describes the real mechanism it stands in for: "linear time series
//! models for the roughly continuous variables ... and Bayesian correlation
//! models to recognize patterns in preceding system events" (Sahoo et al.,
//! KDD 2003). This module provides two practical stand-ins usable outside
//! trace replay:
//!
//! * [`RateEstimator`] — an exponentially-decayed per-node failure-rate
//!   model; the "continuous" half. Captures lemon nodes.
//! * [`PatternPredictor`] — a precursor-pattern detector over the raw
//!   event stream; the "event correlation" half. Captures
//!   failures-preceded-by-misbehavior.

use crate::api::Predictor;
use pqos_cluster::node::NodeId;
use pqos_failures::event::RawEvent;
use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
use std::collections::VecDeque;
use std::sync::{Arc, RwLock};

/// Exponentially-decayed per-node failure-rate estimator.
///
/// Each observed failure bumps the node's rate; rates decay with a
/// configurable half-life. The predicted probability of failure over a
/// window of length `L` is `1 − exp(−rate·L)`, capped at
/// [`RateEstimator::confidence_cap`] so that, like the paper's oracle, an
/// imprecise predictor never claims high confidence.
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
/// use pqos_predict::api::Predictor;
/// use pqos_predict::online::RateEstimator;
/// use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
///
/// let mut est = RateEstimator::new(SimDuration::from_days(7), 0.9);
/// let lemon = NodeId::new(3);
/// for day in 0..5 {
///     est.observe_failure(lemon, SimTime::from_secs(day * 86_400));
/// }
/// let w = TimeWindow::starting_at(SimTime::from_secs(5 * 86_400), SimDuration::from_days(1));
/// assert!(est.failure_probability(&[lemon], w) > 0.2);
/// assert!(est.failure_probability(&[NodeId::new(9)], w) < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct RateEstimator {
    half_life: SimDuration,
    confidence_cap: f64,
    prior_rate_per_sec: f64,
    // Per node: (decayed failure count, time of last update).
    counts: Vec<(f64, SimTime)>,
}

impl RateEstimator {
    /// Creates an estimator with the given decay half-life and confidence
    /// cap.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is zero or `confidence_cap` outside `(0, 1]`.
    pub fn new(half_life: SimDuration, confidence_cap: f64) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        assert!(
            confidence_cap > 0.0 && confidence_cap <= 1.0,
            "confidence cap outside (0, 1]"
        );
        RateEstimator {
            half_life,
            confidence_cap,
            // One failure per node-decade as an uninformative prior.
            prior_rate_per_sec: 1.0 / (10.0 * 365.0 * 86_400.0),
            counts: Vec::new(),
        }
    }

    /// The confidence cap.
    pub fn confidence_cap(&self) -> f64 {
        self.confidence_cap
    }

    /// Records a failure of `node` at `at`. Observations must be fed in
    /// non-decreasing time order per node; out-of-order observations are
    /// treated as happening at the node's latest known time.
    pub fn observe_failure(&mut self, node: NodeId, at: SimTime) {
        if node.index() >= self.counts.len() {
            self.counts.resize(node.index() + 1, (0.0, SimTime::ZERO));
        }
        let (count, last) = self.counts[node.index()];
        let at = at.max(last);
        let decayed = count * self.decay_factor(at.saturating_since(last));
        self.counts[node.index()] = (decayed + 1.0, at);
    }

    fn decay_factor(&self, elapsed: SimDuration) -> f64 {
        (-std::f64::consts::LN_2 * elapsed.as_secs() as f64 / self.half_life.as_secs() as f64).exp()
    }

    /// Decayed failure rate of `node` (failures/second) as of `now` — a
    /// diagnostic view: the count keeps decaying between `last observation`
    /// and `now`.
    pub fn node_rate(&self, node: NodeId, now: SimTime) -> f64 {
        let Some(&(count, last)) = self.counts.get(node.index()) else {
            return self.prior_rate_per_sec;
        };
        let decayed = count * self.decay_factor(now.saturating_since(last));
        // A decayed count over an effective window of ~2 half-lives.
        let effective_window = 2.0 * self.half_life.as_secs() as f64;
        self.prior_rate_per_sec + decayed / effective_window
    }

    /// Estimated hazard of `node` as of its last observation, with no
    /// further query-time decay. This is what [`Predictor`] queries use:
    /// a constant-hazard model quotes the *same* probability for a window
    /// regardless of how far in the future it starts, so deadline
    /// negotiation cannot mistake model staleness ("risk decays the longer
    /// I procrastinate") for genuine risk avoidance.
    pub fn node_hazard(&self, node: NodeId) -> f64 {
        let Some(&(count, _)) = self.counts.get(node.index()) else {
            return self.prior_rate_per_sec;
        };
        let effective_window = 2.0 * self.half_life.as_secs() as f64;
        self.prior_rate_per_sec + count / effective_window
    }
}

impl Predictor for RateEstimator {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        let total_rate: f64 = nodes.iter().map(|&n| self.node_hazard(n)).sum();
        let p = 1.0 - (-total_rate * window.length().as_secs() as f64).exp();
        p.min(self.confidence_cap)
    }
}

/// Precursor-pattern predictor over the raw event stream.
///
/// Maintains a sliding window of recent WARNING/ERROR events per node; when
/// a node has accumulated at least `threshold` precursors, a failure within
/// the lookahead horizon is predicted with confidence proportional to the
/// precursor count (capped).
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
/// use pqos_failures::event::{RawEvent, Severity, Subsystem};
/// use pqos_predict::api::Predictor;
/// use pqos_predict::online::PatternPredictor;
/// use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
///
/// let mut p = PatternPredictor::new(SimDuration::from_secs(3600), 3, 0.7);
/// for k in 0..4 {
///     p.observe_raw(&RawEvent {
///         time: SimTime::from_secs(100 * k),
///         node: NodeId::new(2),
///         severity: Severity::Warning,
///         subsystem: Subsystem::Memory,
///     });
/// }
/// let w = TimeWindow::starting_at(SimTime::from_secs(400), SimDuration::from_secs(3600));
/// assert!(p.failure_probability(&[NodeId::new(2)], w) > 0.0);
/// assert_eq!(p.failure_probability(&[NodeId::new(5)], w), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PatternPredictor {
    window: SimDuration,
    threshold: usize,
    confidence_cap: f64,
    // Per node: timestamps of recent precursor events.
    recent: Vec<VecDeque<SimTime>>,
}

impl PatternPredictor {
    /// Creates a predictor that looks for `threshold` precursor events
    /// within `window`, reporting at most `confidence_cap` confidence.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, `threshold == 0`, or `confidence_cap`
    /// is outside `(0, 1]`.
    pub fn new(window: SimDuration, threshold: usize, confidence_cap: f64) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        assert!(threshold > 0, "threshold must be positive");
        assert!(
            confidence_cap > 0.0 && confidence_cap <= 1.0,
            "confidence cap outside (0, 1]"
        );
        PatternPredictor {
            window,
            threshold,
            confidence_cap,
            recent: Vec::new(),
        }
    }

    /// Feeds one raw event. Only WARNING/ERROR events count as precursors;
    /// INFO is ignored; critical events clear the node's history (the node
    /// just failed — its pattern is spent).
    pub fn observe_raw(&mut self, event: &RawEvent) {
        use pqos_failures::event::Severity;
        let idx = event.node.index();
        if idx >= self.recent.len() {
            self.recent.resize_with(idx + 1, VecDeque::new);
        }
        match event.severity {
            Severity::Warning | Severity::Error => {
                self.recent[idx].push_back(event.time);
                self.expire(idx, event.time);
            }
            Severity::Fatal | Severity::Failure => self.recent[idx].clear(),
            Severity::Info => {}
        }
    }

    fn expire(&mut self, idx: usize, now: SimTime) {
        while let Some(&front) = self.recent[idx].front() {
            if now.saturating_since(front) > self.window {
                self.recent[idx].pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of live precursors for `node` as of `now`.
    pub fn precursor_count(&self, node: NodeId, now: SimTime) -> usize {
        let Some(q) = self.recent.get(node.index()) else {
            return 0;
        };
        q.iter()
            .filter(|&&t| now.saturating_since(t) <= self.window)
            .count()
    }
}

impl Predictor for PatternPredictor {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        let mut best = 0.0f64;
        for &n in nodes {
            let count = self.precursor_count(n, window.start());
            if count >= self.threshold {
                // Confidence grows with excess precursors.
                let p =
                    self.confidence_cap * (count as f64 / (count as f64 + self.threshold as f64));
                best = best.max(p);
            }
        }
        best.min(self.confidence_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_failures::event::{Severity, Subsystem};

    fn ev(t: u64, n: u32, sev: Severity) -> RawEvent {
        RawEvent {
            time: SimTime::from_secs(t),
            node: NodeId::new(n),
            severity: sev,
            subsystem: Subsystem::Memory,
        }
    }

    #[test]
    fn rate_estimator_learns_lemons() {
        let mut est = RateEstimator::new(SimDuration::from_days(7), 1.0);
        let lemon = NodeId::new(0);
        let good = NodeId::new(1);
        for day in 0..10 {
            est.observe_failure(lemon, SimTime::from_secs(day * 86_400));
        }
        let now = SimTime::from_secs(10 * 86_400);
        assert!(est.node_rate(lemon, now) > 50.0 * est.node_rate(good, now));
    }

    #[test]
    fn rate_decays_over_time() {
        let mut est = RateEstimator::new(SimDuration::from_days(1), 1.0);
        est.observe_failure(NodeId::new(0), SimTime::ZERO);
        let soon = est.node_rate(NodeId::new(0), SimTime::from_secs(3600));
        let later = est.node_rate(NodeId::new(0), SimTime::from_secs(30 * 86_400));
        assert!(soon > 10.0 * later);
    }

    #[test]
    fn rate_prediction_is_capped() {
        let mut est = RateEstimator::new(SimDuration::from_days(1), 0.6);
        for k in 0..100 {
            est.observe_failure(NodeId::new(0), SimTime::from_secs(k * 60));
        }
        let w = TimeWindow::starting_at(SimTime::from_secs(6000), SimDuration::from_days(30));
        let p = est.failure_probability(&[NodeId::new(0)], w);
        assert!(p <= 0.6 + 1e-12, "p = {p}");
        assert!(p > 0.59, "should saturate at the cap");
        assert_eq!(est.confidence_cap(), 0.6);
    }

    #[test]
    fn predictions_are_start_time_invariant() {
        // Constant-hazard semantics: the same window length quoted now and
        // a month out must carry the same probability, so negotiation
        // cannot profit from procrastination against a stale model.
        let mut est = RateEstimator::new(SimDuration::from_days(7), 1.0);
        for day in 0..10 {
            est.observe_failure(NodeId::new(0), SimTime::from_secs(day * 86_400));
        }
        let len = SimDuration::from_days(1);
        let soon = est.failure_probability(
            &[NodeId::new(0)],
            TimeWindow::starting_at(SimTime::from_secs(10 * 86_400), len),
        );
        let later = est.failure_probability(
            &[NodeId::new(0)],
            TimeWindow::starting_at(SimTime::from_secs(40 * 86_400), len),
        );
        assert_eq!(soon, later);
        assert!(soon > 0.0);
    }

    #[test]
    fn out_of_order_observation_does_not_panic() {
        let mut est = RateEstimator::new(SimDuration::from_days(1), 1.0);
        est.observe_failure(NodeId::new(0), SimTime::from_secs(1000));
        est.observe_failure(NodeId::new(0), SimTime::from_secs(500));
        assert!(est.node_rate(NodeId::new(0), SimTime::from_secs(1000)) > 0.0);
    }

    #[test]
    fn pattern_requires_threshold() {
        let mut p = PatternPredictor::new(SimDuration::from_secs(3600), 3, 0.7);
        p.observe_raw(&ev(0, 0, Severity::Warning));
        p.observe_raw(&ev(10, 0, Severity::Warning));
        let w = TimeWindow::starting_at(SimTime::from_secs(20), SimDuration::from_secs(100));
        assert_eq!(p.failure_probability(&[NodeId::new(0)], w), 0.0);
        p.observe_raw(&ev(20, 0, Severity::Error));
        assert!(p.failure_probability(&[NodeId::new(0)], w) > 0.0);
    }

    #[test]
    fn pattern_ignores_info_and_expires() {
        let mut p = PatternPredictor::new(SimDuration::from_secs(100), 2, 0.7);
        p.observe_raw(&ev(0, 0, Severity::Info));
        p.observe_raw(&ev(0, 0, Severity::Warning));
        p.observe_raw(&ev(10, 0, Severity::Warning));
        assert_eq!(p.precursor_count(NodeId::new(0), SimTime::from_secs(10)), 2);
        // Far in the future, both expired.
        assert_eq!(
            p.precursor_count(NodeId::new(0), SimTime::from_secs(500)),
            0
        );
    }

    #[test]
    fn pattern_clears_on_failure() {
        let mut p = PatternPredictor::new(SimDuration::from_secs(1000), 2, 0.7);
        p.observe_raw(&ev(0, 0, Severity::Warning));
        p.observe_raw(&ev(1, 0, Severity::Warning));
        p.observe_raw(&ev(2, 0, Severity::Fatal));
        assert_eq!(p.precursor_count(NodeId::new(0), SimTime::from_secs(3)), 0);
    }

    #[test]
    fn pattern_confidence_capped() {
        let mut p = PatternPredictor::new(SimDuration::from_secs(10_000), 1, 0.5);
        for k in 0..50 {
            p.observe_raw(&ev(k, 0, Severity::Warning));
        }
        let w = TimeWindow::starting_at(SimTime::from_secs(50), SimDuration::from_secs(100));
        let prob = p.failure_probability(&[NodeId::new(0)], w);
        assert!(prob <= 0.5 && prob > 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn pattern_rejects_zero_threshold() {
        let _ = PatternPredictor::new(SimDuration::from_secs(1), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn rate_rejects_zero_half_life() {
        let _ = RateEstimator::new(SimDuration::ZERO, 0.5);
    }
}

/// A shareable, concurrently-updatable [`RateEstimator`].
///
/// The plain estimator needs `&mut self` to learn; a simulator holds its
/// predictor behind an `Arc`. This wrapper provides interior mutability so
/// the model can be *fed during the run* (e.g. via
/// `QosSimulator::with_failure_hook`), keeping its decayed rates current
/// instead of going stale and systematically rewarding procrastination.
///
/// # Examples
///
/// ```
/// use pqos_predict::api::Predictor;
/// use pqos_predict::online::{RateEstimator, SharedRateEstimator};
/// use pqos_cluster::node::NodeId;
/// use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
///
/// let shared = SharedRateEstimator::new(RateEstimator::new(
///     SimDuration::from_days(7),
///     0.9,
/// ));
/// let clone = shared.clone(); // both handles see the same model
/// clone.observe_failure(NodeId::new(0), SimTime::from_secs(100));
/// let w = TimeWindow::starting_at(SimTime::from_secs(200), SimDuration::from_days(1));
/// assert!(shared.failure_probability(&[NodeId::new(0)], w) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedRateEstimator {
    inner: Arc<RwLock<RateEstimator>>,
}

impl SharedRateEstimator {
    /// Wraps an estimator.
    pub fn new(estimator: RateEstimator) -> Self {
        SharedRateEstimator {
            inner: Arc::new(RwLock::new(estimator)),
        }
    }

    /// Records a failure (see [`RateEstimator::observe_failure`]).
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a writer panicked).
    pub fn observe_failure(&self, node: NodeId, at: SimTime) {
        self.inner
            .write()
            .expect("rate estimator lock poisoned")
            .observe_failure(node, at);
    }
}

impl Predictor for SharedRateEstimator {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        self.inner
            .read()
            .expect("rate estimator lock poisoned")
            .failure_probability(nodes, window)
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let a = SharedRateEstimator::new(RateEstimator::new(SimDuration::from_days(1), 1.0));
        let b = a.clone();
        for k in 0..20 {
            a.observe_failure(NodeId::new(3), SimTime::from_secs(k * 100));
        }
        let w = TimeWindow::starting_at(SimTime::from_secs(2000), SimDuration::from_days(1));
        let pa = a.failure_probability(&[NodeId::new(3)], w);
        let pb = b.failure_probability(&[NodeId::new(3)], w);
        assert_eq!(pa, pb);
        assert!(pa > 0.1);
    }
}
