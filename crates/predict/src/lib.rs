//! # pqos-predict
//!
//! Event prediction (forecasting) for the DSN 2005 *Probabilistic QoS
//! Guarantees* reproduction.
//!
//! * [`api`] — the [`api::Predictor`] trait and the no-forecasting
//!   [`api::NullPredictor`] baseline;
//! * [`oracle`] — the paper's deterministic trace oracle with tunable
//!   accuracy `a` (zero false positives, false-negative rate `1 − a`,
//!   never returns `pf > a`);
//! * [`online`] — practical online predictors (decayed-rate and
//!   precursor-pattern models) standing in for the Sahoo et al. mechanism;
//! * [`eval`] — sliding-window recall/precision evaluation;
//! * [`instrument`] — a transparent telemetry-counting wrapper.
//!
//! # Examples
//!
//! ```
//! use pqos_failures::synthetic::AixLikeTrace;
//! use pqos_predict::api::Predictor;
//! use pqos_predict::oracle::TraceOracle;
//! use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
//! use std::sync::Arc;
//!
//! let trace = Arc::new(AixLikeTrace::new().days(30.0).seed(1).build());
//! let oracle = TraceOracle::new(trace, 0.7)?;
//! let window = TimeWindow::starting_at(SimTime::ZERO, SimDuration::from_days(30));
//! let nodes: Vec<_> = (0..128).map(pqos_cluster::node::NodeId::new).collect();
//! let pf = oracle.failure_probability(&nodes, window);
//! assert!(pf <= 0.7);
//! # Ok::<(), pqos_predict::oracle::AccuracyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod eval;
pub mod instrument;
pub mod online;
pub mod oracle;

pub use api::{NullPredictor, Predictor};
pub use instrument::InstrumentedPredictor;
pub use oracle::TraceOracle;
