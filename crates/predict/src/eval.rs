//! Prediction-quality evaluation against a ground-truth trace.
//!
//! Used to validate that a predictor behaves as configured — e.g. that the
//! trace oracle's recall equals its accuracy parameter `a` and its false
//! positive rate is zero, the two properties §4.3 asserts.

use crate::api::Predictor;
use pqos_cluster::node::NodeId;
use pqos_failures::trace::FailureTrace;
use pqos_sim_core::time::{SimDuration, TimeWindow};
use std::fmt;

/// Outcome counts of a sliding-window evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictionQuality {
    /// Windows containing a failure where the predictor fired.
    pub true_positives: usize,
    /// Windows containing a failure where it stayed silent.
    pub false_negatives: usize,
    /// Failure-free windows where it fired anyway.
    pub false_positives: usize,
    /// Failure-free windows where it stayed silent.
    pub true_negatives: usize,
}

impl PredictionQuality {
    /// Recall = TP / (TP + FN); `None` when no failure windows were seen.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_negatives;
        (denom > 0).then(|| self.true_positives as f64 / denom as f64)
    }

    /// False-positive rate = FP / (FP + TN); `None` when no clean windows
    /// were seen.
    pub fn false_positive_rate(&self) -> Option<f64> {
        let denom = self.false_positives + self.true_negatives;
        (denom > 0).then(|| self.false_positives as f64 / denom as f64)
    }

    /// Precision = TP / (TP + FP); `None` when the predictor never fired.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_positives;
        (denom > 0).then(|| self.true_positives as f64 / denom as f64)
    }
}

impl fmt::Display for PredictionQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recall={:?} precision={:?} fpr={:?} (tp={} fn={} fp={} tn={})",
            self.recall(),
            self.precision(),
            self.false_positive_rate(),
            self.true_positives,
            self.false_negatives,
            self.false_positives,
            self.true_negatives,
        )
    }
}

/// Slides a window of `horizon` over the trace span in steps of `step`,
/// querying the predictor per node and comparing against ground truth.
///
/// A prediction "fires" when the returned probability is strictly positive.
/// For predictors that always return a nonzero probability (e.g. rate
/// models with a prior), use [`evaluate_per_node_with_threshold`].
///
/// # Panics
///
/// Panics if `step` or `horizon` is zero.
pub fn evaluate_per_node<P: Predictor>(
    predictor: &P,
    truth: &FailureTrace,
    nodes: u32,
    horizon: SimDuration,
    step: SimDuration,
) -> PredictionQuality {
    evaluate_per_node_with_threshold(predictor, truth, nodes, horizon, step, 0.0)
}

/// Like [`evaluate_per_node`], but a prediction "fires" only when the
/// returned probability is strictly greater than `fire_threshold`.
///
/// # Panics
///
/// Panics if `step` or `horizon` is zero, or `fire_threshold` is not in
/// `[0, 1)`.
pub fn evaluate_per_node_with_threshold<P: Predictor>(
    predictor: &P,
    truth: &FailureTrace,
    nodes: u32,
    horizon: SimDuration,
    step: SimDuration,
    fire_threshold: f64,
) -> PredictionQuality {
    assert!(
        !step.is_zero() && !horizon.is_zero(),
        "zero step or horizon"
    );
    assert!(
        (0.0..1.0).contains(&fire_threshold),
        "fire threshold outside [0, 1)"
    );
    let mut q = PredictionQuality::default();
    let Some(last) = truth.failures().last().map(|f| f.time) else {
        return q;
    };
    let mut start = pqos_sim_core::time::SimTime::ZERO;
    while start <= last {
        let window = TimeWindow::starting_at(start, horizon);
        for n in 0..nodes {
            let node = NodeId::new(n);
            let fired = predictor.node_failure_probability(node, window) > fire_threshold;
            let failed = !truth.failures_on_node_in(node, window).is_empty();
            match (fired, failed) {
                (true, true) => q.true_positives += 1,
                (false, true) => q.false_negatives += 1,
                (true, false) => q.false_positives += 1,
                (false, false) => q.true_negatives += 1,
            }
        }
        start += step;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NullPredictor;
    use crate::oracle::TraceOracle;
    use pqos_failures::synthetic::AixLikeTrace;
    use std::sync::Arc;

    #[test]
    fn oracle_recall_tracks_accuracy_with_zero_fpr() {
        let trace = Arc::new(AixLikeTrace::new().days(90.0).seed(21).build());
        for a in [0.3, 0.7, 1.0] {
            let oracle = TraceOracle::new(Arc::clone(&trace), a).unwrap();
            let q = evaluate_per_node(
                &oracle,
                &trace,
                128,
                SimDuration::from_hours(12),
                SimDuration::from_hours(12),
            );
            let recall = q.recall().expect("trace has failures");
            assert!(
                (recall - a).abs() < 0.12,
                "a={a}: recall {recall} (quality {q})"
            );
            assert_eq!(q.false_positive_rate(), Some(0.0), "oracle has no FPs");
        }
    }

    #[test]
    fn null_predictor_has_zero_recall() {
        let trace = AixLikeTrace::new().days(30.0).seed(22).build();
        let q = evaluate_per_node(
            &NullPredictor,
            &trace,
            128,
            SimDuration::from_hours(12),
            SimDuration::from_hours(12),
        );
        assert_eq!(q.recall(), Some(0.0));
        assert_eq!(q.precision(), None, "never fired");
        assert!(!q.to_string().is_empty());
    }

    #[test]
    fn threshold_silences_weak_predictions() {
        use crate::online::RateEstimator;
        let trace = AixLikeTrace::new().days(30.0).seed(23).build();
        let mut rate = RateEstimator::new(SimDuration::from_days(7), 0.9);
        for f in trace.iter() {
            rate.observe_failure(f.node, f.time);
        }
        let loose = evaluate_per_node(
            &rate,
            &trace,
            128,
            SimDuration::from_hours(12),
            SimDuration::from_hours(12),
        );
        let strict = evaluate_per_node_with_threshold(
            &rate,
            &trace,
            128,
            SimDuration::from_hours(12),
            SimDuration::from_hours(12),
            0.2,
        );
        // The prior makes every probability positive, so the loose
        // evaluation fires everywhere; the threshold restores selectivity.
        assert_eq!(loose.false_positive_rate(), Some(1.0));
        assert!(strict.false_positive_rate().unwrap_or(1.0) < 0.5);
    }

    #[test]
    fn empty_trace_yields_empty_quality() {
        let trace = FailureTrace::new(vec![]).unwrap();
        let q = evaluate_per_node(
            &NullPredictor,
            &trace,
            4,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        );
        assert_eq!(q, PredictionQuality::default());
        assert_eq!(q.recall(), None);
    }
}
