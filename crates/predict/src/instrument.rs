//! Telemetry instrumentation for predictors.
//!
//! [`InstrumentedPredictor`] wraps any [`Predictor`] and records query
//! volume and prediction strength into a telemetry metrics registry
//! (`predict.*`) without altering any answer. The simulator installs the
//! wrapper only when telemetry is enabled, so the uninstrumented path is
//! untouched.

use crate::api::Predictor;
use pqos_cluster::node::NodeId;
use pqos_sim_core::time::TimeWindow;
use pqos_telemetry::{Counter, Histogram, Telemetry};

/// A [`Predictor`] that counts its own queries.
///
/// Metrics recorded per [`Predictor::failure_probability`] call:
///
/// * `predict.queries` — total partition queries;
/// * `predict.fired` — queries answered with `pf > 0` (a prediction);
/// * `predict.silent` — queries answered with `pf == 0` (no forecast);
/// * `predict.pf` — histogram of the returned probabilities.
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
/// use pqos_predict::api::{NullPredictor, Predictor};
/// use pqos_predict::instrument::InstrumentedPredictor;
/// use pqos_sim_core::time::{SimTime, TimeWindow};
/// use pqos_telemetry::Telemetry;
///
/// let telemetry = Telemetry::builder().build();
/// let p = InstrumentedPredictor::new(NullPredictor, telemetry.clone());
/// let w = TimeWindow::new(SimTime::ZERO, SimTime::from_secs(100));
/// assert_eq!(p.failure_probability(&[NodeId::new(0)], w), 0.0);
/// let snap = telemetry.snapshot().unwrap();
/// assert_eq!(snap.counter("predict.queries"), Some(1));
/// assert_eq!(snap.counter("predict.silent"), Some(1));
/// ```
pub struct InstrumentedPredictor<P> {
    inner: P,
    // The predictor sits on the simulator's hottest path (every negotiation
    // probes it per candidate slot), so the metric handles are resolved once
    // here instead of by name on every query.
    queries: Counter,
    fired: Counter,
    silent: Counter,
    pf_hist: Histogram,
}

impl<P: Predictor> InstrumentedPredictor<P> {
    /// Wraps `inner`, recording into `telemetry`.
    pub fn new(inner: P, telemetry: Telemetry) -> Self {
        InstrumentedPredictor {
            inner,
            queries: telemetry.counter("predict.queries"),
            fired: telemetry.counter("predict.fired"),
            silent: telemetry.counter("predict.silent"),
            pf_hist: telemetry.histogram("predict.pf"),
        }
    }

    /// The wrapped predictor.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Predictor> Predictor for InstrumentedPredictor<P> {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        let pf = self.inner.failure_probability(nodes, window);
        self.queries.inc();
        if pf > 0.0 {
            self.fired.inc();
        } else {
            self.silent.inc();
        }
        self.pf_hist.observe(pf);
        pf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NullPredictor;
    use crate::oracle::TraceOracle;
    use pqos_failures::trace::{Failure, FailureTrace};
    use pqos_sim_core::time::SimTime;
    use std::sync::Arc;

    fn window(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn answers_match_the_wrapped_predictor() {
        let trace = FailureTrace::new(vec![Failure {
            time: SimTime::from_secs(50),
            node: NodeId::new(0),
            detectability: 0.4,
        }])
        .unwrap();
        let oracle = TraceOracle::new(Arc::new(trace), 1.0).unwrap();
        let telemetry = Telemetry::builder().build();
        let wrapped = InstrumentedPredictor::new(&oracle, telemetry.clone());

        let nodes = [NodeId::new(0)];
        assert_eq!(
            wrapped.failure_probability(&nodes, window(0, 100)),
            oracle.failure_probability(&nodes, window(0, 100)),
        );
        assert_eq!(
            wrapped.failure_probability(&nodes, window(200, 300)),
            oracle.failure_probability(&nodes, window(200, 300)),
        );

        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counter("predict.queries"), Some(2));
        assert_eq!(snap.counter("predict.fired"), Some(1));
        assert_eq!(snap.counter("predict.silent"), Some(1));
        let pf = snap.histogram("predict.pf").unwrap();
        assert_eq!(pf.count, 2);
        assert_eq!(pf.max, 0.4);
    }

    #[test]
    fn single_node_queries_route_through_the_counter() {
        let telemetry = Telemetry::builder().build();
        let wrapped = InstrumentedPredictor::new(NullPredictor, telemetry.clone());
        wrapped.node_failure_probability(NodeId::new(3), window(0, 10));
        assert_eq!(
            telemetry.snapshot().unwrap().counter("predict.queries"),
            Some(1)
        );
    }

    #[test]
    fn disabled_handle_is_silent_and_transparent() {
        let wrapped = InstrumentedPredictor::new(NullPredictor, Telemetry::disabled());
        assert_eq!(
            wrapped.failure_probability(&[NodeId::new(0)], window(0, 10)),
            0.0
        );
        assert_eq!(wrapped.into_inner(), NullPredictor);
    }
}
