//! The paper's deterministic trace-oracle predictor (§4.3).
//!
//! "When the predictor is asked for the probability of failure of a
//! particular node (or partition) in a given time window, it retrieves all
//! the corresponding failures from the log and considers them in order of
//! time. Once a failure is encountered such that `px ≤ a`, `px` is returned
//! as the probability of failure. Otherwise, the predictor returns 0.
//! Therefore, the false positive rate is 0 and the false negative rate is
//! `1 − a`. An additional consequence of this method is that the
//! probability of failure returned for any partition will never exceed `a`
//! \[since\] a low-accuracy predictor should not make predictions with high
//! confidence."

use crate::api::Predictor;
use pqos_cluster::node::NodeId;
use pqos_failures::trace::FailureTrace;
use pqos_sim_core::time::TimeWindow;
use std::fmt;
use std::sync::Arc;

/// Error constructing a [`TraceOracle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyError(pub f64);

impl fmt::Display for AccuracyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prediction accuracy {} outside [0, 1]", self.0)
    }
}

impl std::error::Error for AccuracyError {}

/// Trace-backed predictor with tunable accuracy `a ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
/// use pqos_failures::trace::{Failure, FailureTrace};
/// use pqos_predict::api::Predictor;
/// use pqos_predict::oracle::TraceOracle;
/// use pqos_sim_core::time::{SimTime, TimeWindow};
/// use std::sync::Arc;
///
/// let trace = Arc::new(FailureTrace::new(vec![Failure {
///     time: SimTime::from_secs(500),
///     node: NodeId::new(3),
///     detectability: 0.4,
/// }])?);
/// let w = TimeWindow::new(SimTime::ZERO, SimTime::from_secs(1000));
///
/// // Detectable at a = 0.5 ...
/// let sharp = TraceOracle::new(Arc::clone(&trace), 0.5)?;
/// assert_eq!(sharp.failure_probability(&[NodeId::new(3)], w), 0.4);
///
/// // ... invisible at a = 0.3 (px > a ⇒ false negative).
/// let blunt = TraceOracle::new(trace, 0.3)?;
/// assert_eq!(blunt.failure_probability(&[NodeId::new(3)], w), 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceOracle {
    trace: Arc<FailureTrace>,
    accuracy: f64,
}

impl TraceOracle {
    /// Creates an oracle over `trace` with accuracy `a`.
    ///
    /// # Errors
    ///
    /// Returns [`AccuracyError`] if `a` is outside `[0, 1]` or NaN.
    pub fn new(trace: Arc<FailureTrace>, accuracy: f64) -> Result<Self, AccuracyError> {
        if !(0.0..=1.0).contains(&accuracy) {
            return Err(AccuracyError(accuracy));
        }
        Ok(TraceOracle { trace, accuracy })
    }

    /// The accuracy `a`.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The underlying trace.
    pub fn trace(&self) -> &FailureTrace {
        &self.trace
    }
}

impl Predictor for TraceOracle {
    fn failure_probability(&self, nodes: &[NodeId], window: TimeWindow) -> f64 {
        for failure in self.trace.failures_in_window(nodes, window) {
            if failure.detectability <= self.accuracy {
                return failure.detectability;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_failures::trace::Failure;
    use pqos_sim_core::time::SimTime;

    fn trace(failures: Vec<(u64, u32, f64)>) -> Arc<FailureTrace> {
        Arc::new(
            FailureTrace::new(
                failures
                    .into_iter()
                    .map(|(t, n, px)| Failure {
                        time: SimTime::from_secs(t),
                        node: NodeId::new(n),
                        detectability: px,
                    })
                    .collect(),
            )
            .unwrap(),
        )
    }

    fn w(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn rejects_bad_accuracy() {
        let t = trace(vec![]);
        assert!(TraceOracle::new(Arc::clone(&t), -0.1).is_err());
        assert!(TraceOracle::new(Arc::clone(&t), 1.1).is_err());
        assert!(TraceOracle::new(Arc::clone(&t), f64::NAN).is_err());
        assert!(!AccuracyError(2.0).to_string().is_empty());
        let ok = TraceOracle::new(t, 0.5).unwrap();
        assert_eq!(ok.accuracy(), 0.5);
    }

    #[test]
    fn returns_first_detectable_in_time_order() {
        // Two failures; the earlier one has high px (undetectable at 0.5),
        // the later low px. Paper semantics: scan in time order, return the
        // first *detectable* one.
        let t = trace(vec![(100, 0, 0.9), (200, 0, 0.2)]);
        let oracle = TraceOracle::new(t, 0.5).unwrap();
        assert_eq!(
            oracle.failure_probability(&[NodeId::new(0)], w(0, 1000)),
            0.2
        );
    }

    #[test]
    fn partition_query_spans_nodes() {
        let t = trace(vec![(300, 1, 0.3), (100, 2, 0.8)]);
        let oracle = TraceOracle::new(t, 0.5).unwrap();
        // Node 2's failure at t=100 is first in time but undetectable; node
        // 1's at t=300 is returned.
        let p = oracle.failure_probability(&[NodeId::new(1), NodeId::new(2)], w(0, 1000));
        assert_eq!(p, 0.3);
    }

    #[test]
    fn never_exceeds_accuracy() {
        let t = trace(
            (0..200)
                .map(|i| (i * 10, (i % 16) as u32, (i as f64) / 200.0))
                .collect(),
        );
        for a in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let oracle = TraceOracle::new(Arc::clone(&t), a).unwrap();
            for start in (0..2000).step_by(100) {
                let nodes: Vec<NodeId> = (0..16).map(NodeId::new).collect();
                let p = oracle.failure_probability(&nodes, w(start, start + 500));
                assert!(p <= a + 1e-12, "pf {p} exceeds a {a}");
            }
        }
    }

    #[test]
    fn zero_accuracy_is_null() {
        let t = trace(vec![(100, 0, 0.001), (200, 0, 0.5)]);
        let oracle = TraceOracle::new(t, 0.0).unwrap();
        // px is strictly positive almost surely; with px ≤ a = 0 nothing is
        // returned unless px is exactly 0.
        assert_eq!(
            oracle.failure_probability(&[NodeId::new(0)], w(0, 1000)),
            0.0
        );
    }

    #[test]
    fn perfect_accuracy_sees_everything() {
        let t = trace(vec![(100, 0, 0.97)]);
        let oracle = TraceOracle::new(t, 1.0).unwrap();
        assert_eq!(
            oracle.failure_probability(&[NodeId::new(0)], w(0, 1000)),
            0.97
        );
    }

    #[test]
    fn window_bounds_are_respected() {
        let t = trace(vec![(100, 0, 0.2)]);
        let oracle = TraceOracle::new(t, 1.0).unwrap();
        assert_eq!(
            oracle.failure_probability(&[NodeId::new(0)], w(0, 100)),
            0.0
        );
        assert_eq!(
            oracle.failure_probability(&[NodeId::new(0)], w(100, 101)),
            0.2
        );
        assert_eq!(
            oracle.failure_probability(&[NodeId::new(0)], w(101, 1000)),
            0.0
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let t = trace(vec![(100, 0, 0.2), (150, 1, 0.4)]);
        let oracle = TraceOracle::new(t, 0.5).unwrap();
        let clone = oracle.clone();
        let nodes = [NodeId::new(0), NodeId::new(1)];
        assert_eq!(
            oracle.failure_probability(&nodes, w(0, 1000)),
            clone.failure_probability(&nodes, w(0, 1000))
        );
        assert!(oracle.trace().len() == 2);
    }
}
