//! Deterministic re-execution of recorded request traces.
//!
//! [`replay`] feeds a trace captured by the daemon's `--record` flag back
//! through the *real* [`NegotiationSession`] code path — no sockets, no
//! wall clock. Virtual time comes from the recorded per-epoch ticks,
//! batching comes from the recorded epoch grouping, and job ids come from
//! the recorded engine assignments, so the replayed session makes exactly
//! the decisions the live engine made and emits a byte-identical journal.
//!
//! # Determinism contract
//!
//! Replay checks *response parity* for the deterministic verbs —
//! `negotiate`, `accept`, `cancel`, `shutdown` — whose responses are pure
//! functions of session state. `status` and `dump` responses carry
//! wall-clock fields (uptime, queue depth, flight-recorder contents) and
//! are skipped (counted in
//! [`ReplayReport::skipped_nondeterministic`]). Queue-timeout refusals
//! never reached the session when recorded, so replay honors them by
//! skipping the entry. Journal equality is checked by the caller against
//! the recorded journal ([`ReplayReport::journal`] holds the replayed
//! one).

use crate::engine;
use crate::protocol::{ErrorCode, Request, Response};
use crate::record::SharedBuf;
use crate::shard::{partition_spans, ShardedCore};
use pqos_core::config::SimConfig;
use pqos_core::session::{AdmissionRequest, NegotiationSession, SessionOp, SessionOpOutcome};
use pqos_failures::synthetic::AixLikeTrace;
use pqos_predict::api::{NullPredictor, Predictor};
use pqos_predict::oracle::TraceOracle;
use pqos_sim_core::time::{SimDuration, SimTime};
use pqos_telemetry::reqtrace::{RequestTrace, TraceEntry};
use pqos_telemetry::{SloAccum, SloEngine, SloSink, Telemetry};
use pqos_workload::job::JobId;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Stop after this epoch (inclusive); `None` replays to the end.
    pub until: Option<u64>,
    /// Batch fan-out override; `0` uses the recorded `batch_threads`
    /// (quoting is thread-count independent, so this only affects speed).
    pub threads: usize,
    /// Compare every deterministic response byte-for-byte against the
    /// recording.
    pub check_parity: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            until: None,
            threads: 0,
            check_parity: true,
        }
    }
}

/// One replayed response that differs from the recording.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityMismatch {
    /// Sequence number of the diverging entry.
    pub seq: u64,
    /// Epoch it replayed in.
    pub epoch: u64,
    /// Protocol verb.
    pub verb: String,
    /// The recorded response line.
    pub recorded: String,
    /// What this build of the code answered instead.
    pub replayed: String,
}

/// Per-epoch progress, for `--step` narrowing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSummary {
    /// The epoch just replayed.
    pub epoch: u64,
    /// Virtual time it advanced to.
    pub tick_secs: u64,
    /// Entries it contained.
    pub entries: usize,
    /// Live jobs after the epoch.
    pub live_jobs: usize,
    /// Cumulative parity mismatches so far.
    pub mismatches: usize,
}

/// What a replay produced.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Entries in the trace.
    pub entries_total: usize,
    /// Entries fed through the session (or honored as recorded
    /// timeouts); the rest were cut off by `--until` or a mid-trace
    /// shutdown.
    pub entries_replayed: usize,
    /// Epochs replayed.
    pub epochs_replayed: u64,
    /// Deterministic responses compared against the recording.
    pub parity_checked: usize,
    /// The comparisons that diverged.
    pub mismatches: Vec<ParityMismatch>,
    /// `status`/`dump` entries skipped (wall-clock responses).
    pub skipped_nondeterministic: usize,
    /// Recorded queue-timeout refusals honored by skipping.
    pub timeouts_honored: usize,
    /// Whether the trace ended with a shutdown acknowledgement.
    pub shutdown_seen: bool,
    /// The replayed journal (JSONL), for byte comparison against the
    /// recorded one.
    pub journal: String,
    /// Replayed response line per deterministic entry, in replay order
    /// (`(seq, line)`); lets callers reconstruct responses for authored
    /// traces.
    pub responses: Vec<(u64, String)>,
    /// Wall-clock cost of the replay.
    pub elapsed: Duration,
}

impl ReplayReport {
    /// No response diverged from the recording.
    pub fn is_parity_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Why a trace cannot be replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The trace as a whole is not replayable (wrong source, unknown
    /// predictor).
    Unsupported(String),
    /// One entry is malformed beyond what the schema validator can see
    /// (unparseable request/response payload, negotiate without a job).
    BadEntry {
        /// Sequence number of the offending entry.
        seq: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Unsupported(detail) => write!(f, "cannot replay: {detail}"),
            ReplayError::BadEntry { seq, detail } => {
                write!(f, "trace entry seq {seq}: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays `trace` to completion (or `opts.until`). See the
/// [module docs](self) for the determinism contract.
pub fn replay(trace: &RequestTrace, opts: &ReplayOptions) -> Result<ReplayReport, ReplayError> {
    replay_with(trace, opts, |_| {})
}

/// [`replay`], invoking `on_epoch` after each replayed epoch (the
/// substrate for `pqos-replay run --step`).
pub fn replay_with(
    trace: &RequestTrace,
    opts: &ReplayOptions,
    mut on_epoch: impl FnMut(&EpochSummary),
) -> Result<ReplayReport, ReplayError> {
    let started = Instant::now();
    let meta = &trace.meta;
    if meta.source != "qosd" {
        return Err(ReplayError::Unsupported(format!(
            "trace source is {:?}; only engine-side (\"qosd\") traces carry \
             the batch epochs replay needs — re-capture with `pqos-qosd --record`",
            meta.source
        )));
    }
    // Mirrors pqos-qosd's predictor construction exactly: same seeds,
    // same traces, same oracle accuracy — per shard and for the wide-job
    // coordinator.
    let make_predictor =
        |seed: u64, nodes: u32| -> Result<Box<dyn Predictor + Send + Sync>, ReplayError> {
            match meta.predictor.as_str() {
                "null" => Ok(Box::new(NullPredictor)),
                "synthetic-aix" => {
                    let failure_trace = Arc::new(
                        AixLikeTrace::new()
                            .days(365.0)
                            .seed(seed)
                            .nodes(nodes)
                            .build(),
                    );
                    Ok(Box::new(
                        TraceOracle::new(failure_trace, 0.9).expect("accuracy in range"),
                    ))
                }
                other => Err(ReplayError::Unsupported(format!(
                    "unknown predictor {other:?} (this build knows \"null\" and \"synthetic-aix\")"
                ))),
            }
        };
    // The SLO plane: rebuild the daemon's evaluator from the recorded
    // rule specs, attach the same window accumulator to every journal
    // plane, and drain at the same point the engine does (right after
    // each epoch's AdvanceTo) — the journaled alert lines then replay
    // byte-identically.
    let mut slo_rules = Vec::new();
    for spec in &meta.slo {
        slo_rules.push(pqos_telemetry::slo::parse_rule(spec).map_err(|e| {
            ReplayError::Unsupported(format!("bad SLO rule {spec:?} in trace header: {e}"))
        })?);
    }
    let slo_accum = if slo_rules.is_empty() {
        None
    } else {
        Some(Arc::new(SloAccum::new(meta.slo_window_secs)))
    };
    let mut slo_engine = slo_accum.as_ref().map(|_| SloEngine::new(slo_rules));
    let shards = meta.shards.max(1) as u32;
    if shards > meta.cluster_size {
        return Err(ReplayError::Unsupported(format!(
            "trace claims {shards} shards over {} nodes — a shard must own at least one node",
            meta.cluster_size
        )));
    }
    let make_session = |nodes: u32,
                        base: u32,
                        seed: u64|
     -> Result<
        (
            NegotiationSession<Box<dyn Predictor + Send + Sync>>,
            SharedBuf,
        ),
        ReplayError,
    > {
        let buf = SharedBuf::new();
        let mut builder = Telemetry::builder()
            .flush_every(0)
            .jsonl_writer(buf.clone());
        if let Some(accum) = &slo_accum {
            builder = builder.sink(Box::new(SloSink(Arc::clone(accum))));
        }
        let telemetry = builder.build();
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(nodes),
            make_predictor(seed, nodes)?,
            telemetry,
        )
        .verify_parity(false)
        .node_base(u64::from(base));
        Ok((session, buf))
    };
    // Per-plane journal buffers, in the same order qosd merges its
    // per-plane journal files (shard 0..N-1, then the coordinator).
    let mut journal_bufs: Vec<SharedBuf> = Vec::new();
    let mut core = if shards == 1 {
        let (session, buf) = make_session(meta.cluster_size, 0, 0xD5_2005)?;
        journal_bufs.push(buf);
        ShardedCore::single(session)
    } else {
        let mut sessions = Vec::with_capacity(shards as usize);
        for (k, span) in partition_spans(meta.cluster_size, shards)
            .iter()
            .enumerate()
        {
            let (session, buf) = make_session(span.width, span.base, 0xD5_2005 ^ k as u64)?;
            journal_bufs.push(buf);
            sessions.push(session);
        }
        let wide_buf = SharedBuf::new();
        let mut builder = Telemetry::builder()
            .flush_every(0)
            .jsonl_writer(wide_buf.clone());
        if let Some(accum) = &slo_accum {
            builder = builder.sink(Box::new(SloSink(Arc::clone(accum))));
        }
        let coordinator = builder.build();
        journal_bufs.push(wide_buf);
        ShardedCore::sharded(
            sessions,
            make_predictor(0xD5_2005, meta.cluster_size)?,
            coordinator,
            Telemetry::disabled(),
        )
    };
    if let Some(secs) = meta.quote_horizon_secs {
        core = core.quote_horizon(SimDuration::from_secs(secs));
    }
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        (meta.batch_threads as usize).max(1)
    };

    let mut report = ReplayReport {
        entries_total: trace.entries.len(),
        entries_replayed: 0,
        epochs_replayed: 0,
        parity_checked: 0,
        mismatches: Vec::new(),
        skipped_nondeterministic: 0,
        timeouts_honored: 0,
        shutdown_seen: false,
        journal: String::new(),
        responses: Vec::new(),
        elapsed: Duration::ZERO,
    };

    let mut idx = 0;
    'epochs: while idx < trace.entries.len() {
        let epoch = trace.entries[idx].epoch;
        if opts.until.is_some_and(|until| epoch > until) {
            break;
        }
        let mut end = idx;
        while end < trace.entries.len() && trace.entries[end].epoch == epoch {
            end += 1;
        }
        let entries = &trace.entries[idx..end];
        let tick = entries[0].tick_secs;
        core.apply(&SessionOp::AdvanceTo(SimTime::from_secs(tick)), threads);
        if let (Some(accum), Some(slo)) = (&slo_accum, slo_engine.as_mut()) {
            for alert in slo.drain(accum, tick) {
                core.alert_telemetry().emit(|| alert.clone());
            }
        }

        // Parse payloads and split out recorded queue-timeouts up front.
        let mut parsed = Vec::with_capacity(entries.len());
        for entry in entries {
            let bad = |detail: String| ReplayError::BadEntry {
                seq: entry.seq,
                detail,
            };
            let request = Request::parse(&entry.request)
                .map_err(|e| bad(format!("request does not parse: {}", e.detail)))?;
            if request.verb() != entry.verb {
                return Err(bad(format!(
                    "entry verb {:?} disagrees with its request payload ({:?})",
                    entry.verb,
                    request.verb()
                )));
            }
            let recorded = Response::parse(&entry.response)
                .ok_or_else(|| bad("response does not parse".to_string()))?;
            let timed_out = matches!(
                recorded,
                Response::Error {
                    code: ErrorCode::Timeout,
                    ..
                }
            );
            parsed.push((entry, request, timed_out));
        }

        // Pass 1: the epoch's executed negotiates, as one batch with the
        // recorded job ids (rejected negotiates consumed an id too).
        let mut batch: Vec<(JobId, AdmissionRequest)> = Vec::new();
        let mut batch_entries: Vec<&TraceEntry> = Vec::new();
        for (entry, request, timed_out) in &parsed {
            if *timed_out {
                continue;
            }
            if let Request::Negotiate {
                size, runtime_secs, ..
            } = request
            {
                let Some(job) = entry.job else {
                    return Err(ReplayError::BadEntry {
                        seq: entry.seq,
                        detail: "executed negotiate is missing its engine-assigned job id".into(),
                    });
                };
                batch.push((
                    JobId::new(job),
                    AdmissionRequest {
                        size: *size,
                        runtime: SimDuration::from_secs(*runtime_secs),
                    },
                ));
                batch_entries.push(entry);
            }
        }
        if !batch.is_empty() {
            let SessionOpOutcome::Quotes(decisions) =
                core.apply(&SessionOp::QuoteBatch(batch.clone()), threads)
            else {
                unreachable!("QuoteBatch yields Quotes");
            };
            for ((entry, (job, _)), decision) in batch_entries.iter().zip(&batch).zip(decisions) {
                let request_id = Request::parse(&entry.request).expect("parsed above").id();
                let replayed = engine::quote_response(request_id, job.as_u64(), decision);
                check_parity(opts, entry, &replayed, &mut report);
            }
        }

        // Pass 2: everything else in arrival order.
        for (entry, request, timed_out) in &parsed {
            if *timed_out {
                report.timeouts_honored += 1;
                continue;
            }
            let id = request.id();
            let replayed = match request {
                Request::Negotiate { .. } => continue, // replayed in pass 1
                Request::Accept { job, .. } => {
                    let SessionOpOutcome::Accepted(outcome) =
                        core.apply(&SessionOp::Accept(JobId::new(*job)), threads)
                    else {
                        unreachable!("Accept yields Accepted");
                    };
                    engine::accept_outcome_response(id, &outcome)
                }
                Request::Cancel { job, .. } => {
                    let SessionOpOutcome::Cancelled(outcome) =
                        core.apply(&SessionOp::Cancel(JobId::new(*job)), threads)
                    else {
                        unreachable!("Cancel yields Cancelled");
                    };
                    engine::cancel_outcome_response(id, &outcome)
                }
                Request::Status { .. } | Request::Dump { .. } | Request::History { .. } => {
                    report.skipped_nondeterministic += 1;
                    continue;
                }
                Request::Shutdown { .. } => {
                    let replayed = Response::Ok { id };
                    check_parity(opts, entry, &replayed, &mut report);
                    report.shutdown_seen = true;
                    report.entries_replayed = parsed
                        .iter()
                        .position(|(e, _, _)| e.seq == entry.seq)
                        .map_or(report.entries_replayed, |pos| {
                            report.entries_replayed + pos + 1
                        });
                    report.epochs_replayed += 1;
                    on_epoch(&EpochSummary {
                        epoch,
                        tick_secs: tick,
                        entries: entries.len(),
                        live_jobs: core.live_jobs(),
                        mismatches: report.mismatches.len(),
                    });
                    break 'epochs;
                }
            };
            check_parity(opts, entry, &replayed, &mut report);
        }
        report.entries_replayed += entries.len();
        report.epochs_replayed += 1;
        on_epoch(&EpochSummary {
            epoch,
            tick_secs: tick,
            entries: entries.len(),
            live_jobs: core.live_jobs(),
            mismatches: report.mismatches.len(),
        });
        idx = end;
    }

    core.flush();
    // One plane: its buffer IS the journal. Sharded: merge the per-plane
    // buffers exactly as qosd merges its per-plane files, so the replayed
    // journal is byte-comparable against the daemon's merged one.
    let texts: Vec<String> = journal_bufs.iter().map(SharedBuf::take_string).collect();
    report.journal = if texts.len() == 1 {
        texts.into_iter().next().unwrap_or_default()
    } else {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        pqos_telemetry::merge::merge_journals_to_string(&refs)
    };
    report.elapsed = started.elapsed();
    Ok(report)
}

/// Records the replayed response and, when parity checking is on,
/// byte-compares it against the recorded line.
fn check_parity(
    opts: &ReplayOptions,
    entry: &TraceEntry,
    replayed: &Response,
    report: &mut ReplayReport,
) {
    let line = replayed.encode();
    if opts.check_parity {
        report.parity_checked += 1;
        if line != entry.response {
            report.mismatches.push(ParityMismatch {
                seq: entry.seq,
                epoch: entry.epoch,
                verb: entry.verb.clone(),
                recorded: entry.response.clone(),
                replayed: line.clone(),
            });
        }
    }
    report.responses.push((entry.seq, line));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self as eng, EngineConfig, ReplySender};
    use crate::flight::FlightRecorder;
    use crate::record::TraceRecorder;
    use std::time::Duration as StdDuration;

    /// Records an in-process engine run, then replays it and asserts the
    /// round trip: byte-identical journal, 100% response parity.
    #[test]
    fn record_then_replay_round_trips() {
        let trace_buf = SharedBuf::new();
        let journal_buf = SharedBuf::new();
        let meta = pqos_telemetry::reqtrace::TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size: 16,
            time_scale: 2000.0,
            batch_threads: 2,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 1,
            slo: Vec::new(),
            slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
        };
        let telemetry = Telemetry::builder()
            .flush_every(0)
            .jsonl_writer(journal_buf.clone())
            .build();
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(16),
            NullPredictor,
            telemetry,
        );
        let config = EngineConfig {
            time_scale: 2000.0,
            batch_threads: 2,
            ..EngineConfig::default()
        };
        let recorder = TraceRecorder::to_writer(trace_buf.clone(), &meta).unwrap();
        let (handle, join) = eng::spawn(session, config, FlightRecorder::disabled(), recorder);
        let (reply, rx) = ReplySender::channel();
        let ask = |request: Request| {
            handle.submit(request, &reply, None, 1).expect("accepts");
            rx.recv_timeout(StdDuration::from_secs(5)).expect("reply").0
        };
        let mut jobs = Vec::new();
        for k in 0..12u64 {
            match ask(Request::Negotiate {
                id: k,
                size: 1 + (k % 5) as u32,
                runtime_secs: 600 + 60 * k,
            }) {
                Response::Quote { job, .. } => jobs.push(job),
                other => panic!("expected quote, got {other:?}"),
            }
            // Spread requests across ticks so several epochs exist.
            if k % 4 == 3 {
                std::thread::sleep(StdDuration::from_millis(5));
            }
        }
        // Some accepts succeed, some lose their slot to an earlier accept
        // and expire — both outcomes must replay identically, so neither
        // is asserted away.
        let mut accepted_ok = 0;
        for &job in jobs.iter().take(6) {
            if matches!(
                ask(Request::Accept { id: 100 + job, job }),
                Response::Ok { .. }
            ) {
                accepted_ok += 1;
            }
        }
        assert!(accepted_ok >= 1, "at least one accept lands");
        // A cancel on a merely-quoted job is an error reply; that too must
        // round-trip byte-for-byte.
        ask(Request::Cancel {
            id: 200,
            job: jobs[6],
        });
        // An unknown job too: error responses must replay identically.
        assert!(matches!(
            ask(Request::Cancel { id: 201, job: 9999 }),
            Response::Error { .. }
        ));
        assert!(matches!(
            ask(Request::Status { id: 300 }),
            Response::Status { .. }
        ));
        assert!(matches!(
            ask(Request::Shutdown { id: 301 }),
            Response::Ok { .. }
        ));
        join.join().unwrap();

        let recorded_journal = journal_buf.take_string();
        let trace = RequestTrace::parse(&trace_buf.take_string()).expect("recorded trace parses");
        assert!(trace.entries.len() >= 16, "all answered requests recorded");

        let report = replay(&trace, &ReplayOptions::default()).expect("replayable");
        assert!(report.shutdown_seen);
        assert_eq!(report.skipped_nondeterministic, 1, "the status probe");
        assert!(
            report.is_parity_clean(),
            "parity mismatches: {:#?}",
            report.mismatches
        );
        // 12 negotiates + 6 accepts + 2 cancels + 1 shutdown.
        assert_eq!(report.parity_checked, 21);
        assert_eq!(
            report.journal, recorded_journal,
            "replayed journal must be byte-identical"
        );
    }

    /// The SLO plane round trip: a live engine run with a tight
    /// `rejects<=0` rule journals a fire and a resolve, and replay —
    /// rebuilding the evaluator from the trace header alone — reproduces
    /// the exact `slo_alert` lines, byte for byte.
    #[test]
    fn slo_alerts_record_then_replay_byte_identically() {
        use pqos_telemetry::{AlertState, SloAccum, SloSink, TelemetryEvent};
        let trace_buf = SharedBuf::new();
        let journal_buf = SharedBuf::new();
        let meta = pqos_telemetry::reqtrace::TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size: 16,
            time_scale: 5000.0,
            batch_threads: 2,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 1,
            slo: vec!["tight:rejects<=0@1".into()],
            slo_window_secs: 60,
        };
        let accum = Arc::new(SloAccum::new(60));
        let telemetry = Telemetry::builder()
            .flush_every(0)
            .jsonl_writer(journal_buf.clone())
            .sink(Box::new(SloSink(Arc::clone(&accum))))
            .build();
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(16),
            NullPredictor,
            telemetry,
        );
        let config = EngineConfig {
            time_scale: 5000.0,
            batch_threads: 2,
            slo_rules: vec![pqos_telemetry::slo::parse_rule("tight:rejects<=0@1").unwrap()],
            slo_accum: Some(accum),
            ..EngineConfig::default()
        };
        let recorder = TraceRecorder::to_writer(trace_buf.clone(), &meta).unwrap();
        let (handle, join) = eng::spawn(session, config, FlightRecorder::disabled(), recorder);
        let (reply, rx) = ReplySender::channel();
        let ask = |request: Request| {
            handle.submit(request, &reply, None, 1).expect("accepts");
            rx.recv_timeout(StdDuration::from_secs(5)).expect("reply").0
        };
        // Wider than the cluster: journals a reject into the live window.
        assert!(matches!(
            ask(Request::Negotiate {
                id: 1,
                size: 32,
                runtime_secs: 600,
            }),
            Response::Error { .. }
        ));
        // 30ms of wall time is 150 virtual seconds at this scale — more
        // than one 60s window, so the next tick must close the reject's
        // window and FIRE, and its own clean quote lands in a later one.
        std::thread::sleep(StdDuration::from_millis(30));
        assert!(matches!(
            ask(Request::Negotiate {
                id: 2,
                size: 2,
                runtime_secs: 600,
            }),
            Response::Quote { .. }
        ));
        // Another window's worth of virtual time: the shutdown tick's
        // drain closes the clean window and RESOLVES before serving.
        std::thread::sleep(StdDuration::from_millis(30));
        assert!(matches!(
            ask(Request::Shutdown { id: 3 }),
            Response::Ok { .. }
        ));
        join.join().unwrap();

        let recorded_journal = journal_buf.take_string();
        let states: Vec<AlertState> = recorded_journal
            .lines()
            .filter_map(TelemetryEvent::from_jsonl)
            .filter_map(|e| match e {
                TelemetryEvent::SloAlert { state, .. } => Some(state),
                _ => None,
            })
            .collect();
        assert_eq!(
            states,
            [AlertState::Fire, AlertState::Resolve],
            "the run journals one fire and one resolve"
        );

        let trace = RequestTrace::parse(&trace_buf.take_string()).expect("recorded trace parses");
        let report = replay(&trace, &ReplayOptions::default()).expect("replayable");
        assert!(report.shutdown_seen);
        assert!(
            report.is_parity_clean(),
            "parity mismatches: {:#?}",
            report.mismatches
        );
        assert_eq!(
            report.journal, recorded_journal,
            "replayed journal (alerts included) must be byte-identical"
        );
    }

    /// Regression for engine tick coalescing: a cancel and a re-negotiate
    /// for the same capacity racing into one tick are quoted in pass 1
    /// (pre-cancel snapshot) and mutated in pass 2, so the fresh job can
    /// never quote against a hole that no longer exists — and whichever
    /// tick boundary the pair actually lands on, the accept must succeed
    /// and the whole interleaving must replay byte-for-byte.
    #[test]
    fn cancel_and_requote_interleaving_replays_clean() {
        let trace_buf = SharedBuf::new();
        let journal_buf = SharedBuf::new();
        let meta = pqos_telemetry::reqtrace::TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size: 4,
            time_scale: 0.001,
            batch_threads: 1,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 1,
            slo: Vec::new(),
            slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
        };
        let telemetry = Telemetry::builder()
            .flush_every(0)
            .jsonl_writer(journal_buf.clone())
            .build();
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(4),
            NullPredictor,
            telemetry,
        );
        // Near-frozen virtual time: accepted-but-queued jobs never start,
        // so every cancel below targets a cancellable reservation.
        let config = EngineConfig {
            time_scale: 0.001,
            batch_threads: 1,
            ..EngineConfig::default()
        };
        let recorder = TraceRecorder::to_writer(trace_buf.clone(), &meta).unwrap();
        let (handle, join) = eng::spawn(session, config, FlightRecorder::disabled(), recorder);
        let (reply, rx) = ReplySender::channel();
        let recv = || rx.recv_timeout(StdDuration::from_secs(5)).expect("reply").0;
        let ask = |request: Request| {
            handle.submit(request, &reply, None, 1).expect("accepts");
            recv()
        };
        // C pins the whole cluster from t=0; everything below queues
        // behind it as a future reservation.
        let Response::Quote { job: pin, .. } = ask(Request::Negotiate {
            id: 0,
            size: 4,
            runtime_secs: 100_000,
        }) else {
            panic!("pin job must quote");
        };
        assert!(matches!(
            ask(Request::Accept { id: 1, job: pin }),
            Response::Ok { .. }
        ));
        let mut next_id = 10u64;
        for round in 0..8u64 {
            // Accept A behind the pin (and any earlier B backlog).
            let Response::Quote { job: a, .. } = ask(Request::Negotiate {
                id: next_id,
                size: 4,
                runtime_secs: 3600 + round,
            }) else {
                panic!("A must quote in round {round}");
            };
            assert!(matches!(
                ask(Request::Accept {
                    id: next_id + 1,
                    job: a
                }),
                Response::Ok { .. }
            ));
            // Pipeline cancel(A) + negotiate(B) back-to-back so they tend
            // to coalesce into a single tick; the engine was idle, so both
            // usually drain into one batch.
            handle
                .submit(
                    Request::Cancel {
                        id: next_id + 2,
                        job: a,
                    },
                    &reply,
                    None,
                    1,
                )
                .expect("accepts");
            handle
                .submit(
                    Request::Negotiate {
                        id: next_id + 3,
                        size: 4,
                        runtime_secs: 3600 + round,
                    },
                    &reply,
                    None,
                    1,
                )
                .expect("accepts");
            let (r1, r2) = (recv(), recv());
            let b = match (&r1, &r2) {
                (Response::Ok { .. }, Response::Quote { job, .. })
                | (Response::Quote { job, .. }, Response::Ok { .. }) => *job,
                other => panic!("round {round}: cancel+requote got {other:?}"),
            };
            // Whether B was quoted against the pre- or post-cancel book,
            // the quote must be honorable once the cancel has landed.
            assert!(
                matches!(
                    ask(Request::Accept {
                        id: next_id + 4,
                        job: b
                    }),
                    Response::Ok { .. }
                ),
                "round {round}: stale-snapshot quote must stay honorable"
            );
            next_id += 10;
        }
        assert!(matches!(
            ask(Request::Shutdown { id: 999 }),
            Response::Ok { .. }
        ));
        join.join().unwrap();

        let recorded_journal = journal_buf.take_string();
        let trace = RequestTrace::parse(&trace_buf.take_string()).expect("recorded trace parses");
        let report = replay(&trace, &ReplayOptions::default()).expect("replayable");
        assert!(report.shutdown_seen);
        assert_eq!(report.skipped_nondeterministic, 0);
        assert!(
            report.is_parity_clean(),
            "parity mismatches: {:#?}",
            report.mismatches
        );
        // 17 negotiates + 17 accepts + 8 cancels + 1 shutdown.
        assert_eq!(report.parity_checked, 43);
        assert_eq!(
            report.journal, recorded_journal,
            "replayed journal must be byte-identical"
        );
    }

    #[test]
    fn refuses_loadgen_and_unknown_predictor_traces() {
        let mut meta = pqos_telemetry::reqtrace::TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "loadgen".into(),
            cluster_size: 4,
            time_scale: 1.0,
            batch_threads: 1,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 1,
            slo: Vec::new(),
            slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
        };
        let trace = RequestTrace {
            meta: meta.clone(),
            entries: vec![],
        };
        let err = replay(&trace, &ReplayOptions::default()).unwrap_err();
        assert!(matches!(err, ReplayError::Unsupported(_)), "{err}");
        assert!(err.to_string().contains("qosd"), "{err}");

        meta.source = "qosd".into();
        meta.predictor = "crystal-ball".into();
        let trace = RequestTrace {
            meta,
            entries: vec![],
        };
        let err = replay(&trace, &ReplayOptions::default()).unwrap_err();
        assert!(err.to_string().contains("unknown predictor"), "{err}");
    }

    #[test]
    fn until_cuts_the_replay_short() {
        let meta = pqos_telemetry::reqtrace::TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size: 8,
            time_scale: 1.0,
            batch_threads: 1,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 1,
            slo: Vec::new(),
            slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
        };
        let entry = |seq, epoch, tick, job: u64| TraceEntry {
            seq,
            epoch,
            tick_secs: tick,
            conn: 1,
            verb: "negotiate".into(),
            job: Some(job),
            request: Request::Negotiate {
                id: seq,
                size: 1,
                runtime_secs: 60,
            }
            .encode(),
            response: String::from("{\"id\":0,\"ok\":true}"),
        };
        let trace = RequestTrace {
            meta,
            entries: vec![entry(1, 1, 0, 1), entry(2, 2, 5, 2), entry(3, 3, 9, 3)],
        };
        let report = replay(
            &trace,
            &ReplayOptions {
                until: Some(2),
                check_parity: false,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.epochs_replayed, 2);
        assert_eq!(report.entries_replayed, 2);
        assert_eq!(report.responses.len(), 2);
    }

    /// The sharded mirror of `record_then_replay_round_trips`: a 4-shard
    /// engine run (narrow jobs routed by probe, one wide job through the
    /// two-phase coordinator) is recorded, then replayed through a
    /// freshly partitioned core. Parity must hold response-by-response
    /// and the replayed merged journal must be byte-identical to the
    /// merge of the live run's per-plane journals.
    #[test]
    fn sharded_record_then_replay_round_trips() {
        use crate::shard::{partition_spans, ShardedCore};

        let trace_buf = SharedBuf::new();
        let meta = pqos_telemetry::reqtrace::TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size: 16,
            time_scale: 2000.0,
            batch_threads: 2,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 4,
            slo: Vec::new(),
            slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
        };
        // Build the live core exactly the way pqos-qosd --shards 4 does,
        // except each plane journals to a buffer instead of a file.
        let mut plane_bufs = Vec::new();
        let mut sessions = Vec::new();
        for span in partition_spans(16, 4) {
            let buf = SharedBuf::new();
            let telemetry = Telemetry::builder()
                .flush_every(0)
                .jsonl_writer(buf.clone())
                .build();
            plane_bufs.push(buf);
            sessions.push(
                NegotiationSession::new(
                    SimConfig::paper_defaults().cluster_size_nodes(span.width),
                    NullPredictor,
                    telemetry,
                )
                .node_base(u64::from(span.base)),
            );
        }
        let wide_buf = SharedBuf::new();
        let coordinator = Telemetry::builder()
            .flush_every(0)
            .jsonl_writer(wide_buf.clone())
            .build();
        plane_bufs.push(wide_buf);
        let core =
            ShardedCore::sharded(sessions, NullPredictor, coordinator, Telemetry::disabled());
        let config = EngineConfig {
            time_scale: 2000.0,
            batch_threads: 2,
            ..EngineConfig::default()
        };
        let recorder = TraceRecorder::to_writer(trace_buf.clone(), &meta).unwrap();
        let (handle, join) = eng::spawn_core(core, config, FlightRecorder::disabled(), recorder);
        let (reply, rx) = ReplySender::channel();
        let ask = |request: Request| {
            handle.submit(request, &reply, None, 1).expect("accepts");
            rx.recv_timeout(StdDuration::from_secs(5)).expect("reply").0
        };
        let mut jobs = Vec::new();
        for k in 0..10u64 {
            match ask(Request::Negotiate {
                id: k,
                // Each shard owns 4 nodes, so sizes 1-4 route narrow.
                size: 1 + (k % 4) as u32,
                runtime_secs: 600 + 60 * k,
            }) {
                Response::Quote { job, .. } => jobs.push(job),
                other => panic!("expected quote, got {other:?}"),
            }
            if k % 3 == 2 {
                std::thread::sleep(StdDuration::from_millis(5));
            }
        }
        // One job wider than any shard: the coordinator negotiates it
        // against the merged view and reserves slices on several shards.
        let wide = match ask(Request::Negotiate {
            id: 50,
            size: 10,
            runtime_secs: 1200,
        }) {
            Response::Quote { job, .. } => job,
            other => panic!("expected wide quote, got {other:?}"),
        };
        let mut accepted_ok = 0;
        for &job in jobs.iter().take(5).chain([&wide]) {
            if matches!(
                ask(Request::Accept { id: 100 + job, job }),
                Response::Ok { .. }
            ) {
                accepted_ok += 1;
            }
        }
        assert!(accepted_ok >= 1, "at least one accept lands");
        // Cancel one narrow and the wide job so slice release journals too.
        ask(Request::Cancel {
            id: 200,
            job: jobs[0],
        });
        ask(Request::Cancel { id: 201, job: wide });
        assert!(matches!(
            ask(Request::Status { id: 300 }),
            Response::Status { .. }
        ));
        assert!(matches!(
            ask(Request::Shutdown { id: 301 }),
            Response::Ok { .. }
        ));
        join.join().unwrap();

        let plane_texts: Vec<String> = plane_bufs.iter().map(SharedBuf::take_string).collect();
        let plane_refs: Vec<&str> = plane_texts.iter().map(String::as_str).collect();
        let recorded_journal = pqos_telemetry::merge::merge_journals_to_string(&plane_refs);
        assert!(
            !recorded_journal.is_empty(),
            "sharded run journals through its planes"
        );

        let trace = RequestTrace::parse(&trace_buf.take_string()).expect("recorded trace parses");
        let report = replay(&trace, &ReplayOptions::default()).expect("replayable");
        assert!(report.shutdown_seen);
        assert!(
            report.is_parity_clean(),
            "parity mismatches: {:#?}",
            report.mismatches
        );
        // 11 negotiates + 6 accepts + 2 cancels + 1 shutdown.
        assert_eq!(report.parity_checked, 20);
        assert_eq!(
            report.journal, recorded_journal,
            "replayed merged journal must be byte-identical"
        );
    }
}
