//! # pqos-service
//!
//! The paper's negotiation protocol, served live: a TCP daemon
//! (`pqos-qosd`) that quotes (deadline, probability) pairs to concurrent
//! clients, and a load generator (`pqos-loadgen`) that drives it with
//! synthetic NASA/SDSC arrival streams and reports quote throughput and
//! latency percentiles.
//!
//! The trace simulator in `pqos-core` answers "what QoS would this system
//! have delivered on a recorded week?"; this crate answers "can the same
//! negotiation machinery keep its promises *online*, under concurrent
//! request pressure?" Three design rules make that tractable without any
//! async runtime:
//!
//! 1. **Single-writer state.** One engine thread owns the
//!    [`NegotiationSession`](pqos_core::session::NegotiationSession) —
//!    reservation book, predictor, virtual clock, journal. Connections
//!    never touch shared state; they exchange messages with the engine
//!    over a bounded channel, so overload is an explicit `overloaded`
//!    response instead of a lock convoy.
//! 2. **Batched quoting.** The engine drains its queue and coalesces all
//!    pending `negotiate` verbs into one
//!    [`negotiate_batch`](pqos_core::negotiate::negotiate_batch) call
//!    fanned out across threads against a single book snapshot. Quoting is
//!    read-only, so batched quotes are *identical* to serial ones — a
//!    guarantee the engine can re-check at runtime
//!    ([`EngineConfig::verify_parity`](engine::EngineConfig)) and the
//!    property suite checks offline.
//! 3. **JSON-lines protocol.** One request object per line, one response
//!    per request, correlated by caller-chosen `id` so clients can
//!    pipeline. Malformed input gets a `bad_request` response, never a
//!    disconnect or a panic — the parser is the same fuzz-hardened one the
//!    journal uses.
//!
//! The daemon also carries its own observability plane (this crate's
//! `flight`, `metrics_http`, and `scrape` modules): every request line
//! can open a [`TraceCtx`](flight::TraceCtx) whose stage latencies
//! (parse → queue → batch → compute → write) land in per-verb histograms
//! and in the [`FlightRecorder`](flight::FlightRecorder)'s ring; a
//! hand-rolled `/metrics` listener exposes the whole registry in
//! Prometheus text format; and `pqos-top` renders the scrape as a live
//! one-screen status display.
//!
//! See `DESIGN.md` ("The online service", "Monitoring the daemon") for
//! the wire protocol and threading model, and the README for a runnable
//! walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod flight;
pub mod loadgen;
pub mod metrics_http;
pub mod protocol;
pub mod record;
pub mod replay;
pub mod scrape;
pub mod server;
pub mod shard;
pub mod sweep;

pub use engine::{EngineConfig, EngineHandle};
pub use flight::{FlightRecorder, TraceCtx};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{ErrorCode, Request, Response};
pub use record::{SharedBuf, TraceRecorder};
pub use replay::{replay, ReplayOptions, ReplayReport};
pub use server::{serve, RecordConfig, ServerConfig};
pub use shard::{partition_spans, MergedAvailabilityView, ShardSpan, ShardedCore};
