//! Request-scoped tracing and the in-flight flight recorder.
//!
//! Every request line the daemon accepts can carry a [`TraceCtx`]: a
//! monotonic clock started when the line arrived, marked at the end of
//! each processing stage (`parse` → `queue` → `batch` → `compute` →
//! `write`). Stage durations land in per-verb histograms
//! (`rpc.stage_ns{stage=…,verb=…}`) so a p99 quote latency can be
//! decomposed server-side instead of observed only from the client, and
//! the whole trace is retained by the [`FlightRecorder`]: a fixed-size
//! ring of the last N completed requests plus everything currently in
//! flight.
//!
//! The recorder dumps on demand (the `dump` protocol verb, or
//! `--flight-dump` at graceful shutdown) in Chrome `trace_event` format —
//! the same format `pqos-obs` emits for journals — so one request's life
//! through the engine renders in Perfetto with no extra tooling.
//!
//! A disabled recorder ([`FlightRecorder::disabled`]) makes
//! [`FlightRecorder::begin`] return `None`, so the traced paths cost one
//! branch and zero clock reads when tracing is off (`--no-flight`).

use pqos_telemetry::json::ObjWriter;
use pqos_telemetry::{labeled, Telemetry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Stage names in processing order. `parse` ends when the request line is
/// decoded, `queue` when the engine dequeues it, `batch` when the
/// coalesced quote batch starts computing (negotiate only), `compute`
/// when the response exists, `write` when it reached the socket.
pub const STAGES: [&str; 5] = ["parse", "queue", "batch", "compute", "write"];

/// One completed (or in-flight) request trace.
#[derive(Debug, Clone)]
struct TraceRecord {
    /// Recorder-assigned sequence number.
    seq: u64,
    /// Protocol verb.
    verb: &'static str,
    /// Connection the request arrived on (trace `tid`).
    conn: u64,
    /// Offset of the request's arrival from the recorder epoch.
    begin_offset: Duration,
    /// `(stage, end offset from begin)` marks in order.
    marks: Vec<(&'static str, Duration)>,
}

struct State {
    inflight: HashMap<u64, TraceRecord>,
    completed: VecDeque<TraceRecord>,
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    state: Mutex<State>,
    telemetry: Telemetry,
}

/// Shared handle to the recorder ring. Cloning shares state; a handle
/// built by [`FlightRecorder::disabled`] ignores everything.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` completed traces.
    /// Histogram observations go through `telemetry` (no-op when that
    /// handle is disabled; the ring still records).
    pub fn new(capacity: usize, telemetry: Telemetry) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                state: Mutex::new(State {
                    inflight: HashMap::new(),
                    completed: VecDeque::new(),
                }),
                telemetry,
            })),
        }
    }

    /// The no-op recorder (`--no-flight`).
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether traces are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a trace for a request that arrived at `begin` on connection
    /// `conn`. Returns `None` when the recorder is disabled, so disabled
    /// tracing never reads the clock again.
    pub fn begin(&self, verb: &'static str, conn: u64, begin: Instant) -> Option<TraceCtx> {
        let inner = self.inner.as_ref()?;
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let record = TraceRecord {
            seq,
            verb,
            conn,
            begin_offset: begin.saturating_duration_since(inner.epoch),
            marks: Vec::with_capacity(STAGES.len()),
        };
        inner
            .state
            .lock()
            .expect("flight lock")
            .inflight
            .insert(seq, record);
        Some(TraceCtx {
            recorder: self.clone(),
            seq,
            verb,
            begin,
            marks: Vec::with_capacity(STAGES.len()),
        })
    }

    /// `(inflight, completed)` trace counts.
    pub fn depth(&self) -> (usize, usize) {
        match &self.inner {
            Some(inner) => {
                let state = inner.state.lock().expect("flight lock");
                (state.inflight.len(), state.completed.len())
            }
            None => (0, 0),
        }
    }

    fn finish(&self, ctx: &mut TraceCtx) {
        let Some(inner) = &self.inner else { return };
        let mut total = Duration::ZERO;
        let mut prev = ctx.begin;
        for (stage, at) in &ctx.marks {
            let dur = at.saturating_duration_since(prev);
            prev = *at;
            total += dur;
            inner
                .telemetry
                .histogram(&labeled(
                    "rpc.stage_ns",
                    &[("stage", stage), ("verb", ctx.verb)],
                ))
                .observe(dur.as_nanos() as f64);
        }
        inner
            .telemetry
            .histogram(&labeled("rpc.request_ns", &[("verb", ctx.verb)]))
            .observe(total.as_nanos() as f64);
        inner
            .telemetry
            .counter(&labeled("rpc.requests_total", &[("verb", ctx.verb)]))
            .inc();
        let mut state = inner.state.lock().expect("flight lock");
        let Some(mut record) = state.inflight.remove(&ctx.seq) else {
            return;
        };
        record.marks = ctx
            .marks
            .iter()
            .map(|(stage, at)| (*stage, at.saturating_duration_since(ctx.begin)))
            .collect();
        if state.completed.len() >= inner.capacity {
            state.completed.pop_front();
        }
        state.completed.push_back(record);
    }

    /// Renders the ring — completed traces first, then everything still in
    /// flight — as a Chrome `trace_event` document (`{"traceEvents":[…]}`).
    /// Each connection is a track (`tid`); each stage is a `ph:"X"` span;
    /// in-flight requests appear as open-ended spans flagged
    /// `"inflight":true`. Returns an empty document when disabled.
    pub fn dump_chrome(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::from("{\"traceEvents\":[]}\n");
        };
        let now_offset = Instant::now().saturating_duration_since(inner.epoch);
        let mut events: Vec<String> = Vec::new();
        let mut named_conns: Vec<u64> = Vec::new();
        let mut meta = ObjWriter::new();
        meta.str("name", "process_name")
            .str("ph", "M")
            .u64("pid", 1);
        let mut args = ObjWriter::new();
        args.str("name", "pqos-qosd requests");
        meta.raw("args", &args.finish());
        events.push(meta.finish());

        let micros = |d: Duration| d.as_micros() as u64;
        let state = inner.state.lock().expect("flight lock");
        let mut emit = |record: &TraceRecord, inflight: bool| {
            if !named_conns.contains(&record.conn) {
                named_conns.push(record.conn);
                let mut w = ObjWriter::new();
                w.str("name", "thread_name")
                    .str("ph", "M")
                    .u64("pid", 1)
                    .u64("tid", record.conn);
                let mut args = ObjWriter::new();
                args.str("name", &format!("conn {}", record.conn));
                w.raw("args", &args.finish());
                events.push(w.finish());
            }
            let begin = micros(record.begin_offset);
            let total_end = record
                .marks
                .last()
                .map(|(_, at)| *at)
                .unwrap_or_else(|| now_offset.saturating_sub(record.begin_offset));
            let mut w = ObjWriter::new();
            w.str("name", record.verb)
                .str("ph", "X")
                .u64("ts", begin)
                .u64("dur", micros(total_end).max(1))
                .u64("pid", 1)
                .u64("tid", record.conn);
            let mut args = ObjWriter::new();
            args.u64("seq", record.seq).bool("inflight", inflight);
            w.raw("args", &args.finish());
            events.push(w.finish());
            let mut prev = Duration::ZERO;
            for (stage, at) in &record.marks {
                let mut w = ObjWriter::new();
                w.str("name", &format!("{}:{stage}", record.verb))
                    .str("ph", "X")
                    .u64("ts", begin + micros(prev))
                    .u64("dur", micros(at.saturating_sub(prev)).max(1))
                    .u64("pid", 1)
                    .u64("tid", record.conn);
                let mut args = ObjWriter::new();
                args.u64("seq", record.seq).str("stage", stage);
                w.raw("args", &args.finish());
                events.push(w.finish());
                prev = *at;
            }
        };
        for record in &state.completed {
            emit(record, false);
        }
        let mut inflight: Vec<&TraceRecord> = state.inflight.values().collect();
        inflight.sort_by_key(|r| r.seq);
        for record in inflight {
            emit(record, true);
        }
        drop(state);

        let mut doc = String::from("{\"traceEvents\":[\n");
        doc.push_str(&events.join(",\n"));
        doc.push_str("\n]}\n");
        doc
    }
}

/// A single request's trace: created by [`FlightRecorder::begin`] when
/// the request line arrives, marked at each stage end, finished by
/// [`TraceCtx::finish`] after the reply hits the socket. Dropping an
/// unfinished ctx leaves the request in the in-flight table (it will show
/// in dumps as a lost request) — always finish or [`TraceCtx::abandon`].
#[derive(Debug)]
pub struct TraceCtx {
    recorder: FlightRecorder,
    seq: u64,
    verb: &'static str,
    begin: Instant,
    marks: Vec<(&'static str, Instant)>,
}

impl TraceCtx {
    /// Marks the end of `stage` (a name from [`STAGES`]) at now.
    pub fn mark(&mut self, stage: &'static str) {
        self.marks.push((stage, Instant::now()));
    }

    /// Completes the trace: records stage histograms and moves it from
    /// the in-flight table into the completed ring.
    pub fn finish(mut self) {
        let recorder = self.recorder.clone();
        recorder.finish(&mut self);
    }

    /// Drops the trace without recording anything (the connection died
    /// before the reply could be written).
    pub fn abandon(self) {
        if let Some(inner) = &self.recorder.inner {
            inner
                .state
                .lock()
                .expect("flight lock")
                .inflight
                .remove(&self.seq);
        }
    }

    /// The protocol verb this trace belongs to.
    pub fn verb(&self) -> &'static str {
        self.verb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_telemetry::json::Json;

    #[test]
    fn disabled_recorder_hands_out_nothing() {
        let recorder = FlightRecorder::disabled();
        assert!(!recorder.is_enabled());
        assert!(recorder.begin("status", 1, Instant::now()).is_none());
        assert_eq!(recorder.depth(), (0, 0));
        let doc = recorder.dump_chrome();
        let v = Json::parse(doc.trim()).expect("valid JSON");
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn traces_move_from_inflight_to_the_ring() {
        let recorder = FlightRecorder::new(8, Telemetry::disabled());
        let mut ctx = recorder.begin("negotiate", 3, Instant::now()).unwrap();
        assert_eq!(recorder.depth(), (1, 0));
        for stage in ["parse", "queue", "batch", "compute", "write"] {
            ctx.mark(stage);
        }
        ctx.finish();
        assert_eq!(recorder.depth(), (0, 1));
    }

    #[test]
    fn the_ring_is_bounded() {
        let recorder = FlightRecorder::new(2, Telemetry::disabled());
        for _ in 0..5 {
            let mut ctx = recorder.begin("status", 1, Instant::now()).unwrap();
            ctx.mark("parse");
            ctx.mark("write");
            ctx.finish();
        }
        assert_eq!(recorder.depth(), (0, 2));
    }

    #[test]
    fn stage_histograms_are_per_verb_and_per_stage() {
        let telemetry = Telemetry::builder().ring_buffer(1).build();
        let recorder = FlightRecorder::new(8, telemetry.clone());
        let mut ctx = recorder.begin("negotiate", 1, Instant::now()).unwrap();
        ctx.mark("parse");
        ctx.mark("queue");
        ctx.mark("compute");
        ctx.mark("write");
        ctx.finish();
        let snap = telemetry.snapshot().unwrap();
        for stage in ["parse", "queue", "compute", "write"] {
            let key = labeled("rpc.stage_ns", &[("stage", stage), ("verb", "negotiate")]);
            assert_eq!(snap.histogram(&key).unwrap().count, 1, "{key}");
        }
        let total = labeled("rpc.request_ns", &[("verb", "negotiate")]);
        assert_eq!(snap.histogram(&total).unwrap().count, 1);
        let count = labeled("rpc.requests_total", &[("verb", "negotiate")]);
        assert_eq!(snap.counter(&count), Some(1));
    }

    #[test]
    fn dump_is_a_valid_chrome_trace_with_inflight_flags() {
        let recorder = FlightRecorder::new(8, Telemetry::disabled());
        let mut done = recorder.begin("negotiate", 1, Instant::now()).unwrap();
        done.mark("parse");
        done.mark("queue");
        done.mark("compute");
        done.mark("write");
        done.finish();
        let _open = recorder.begin("accept", 2, Instant::now()).unwrap();
        let doc = recorder.dump_chrome();
        let v = Json::parse(doc.trim()).expect("dump parses as JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata + verb span + 4 stage spans + conn names + open span.
        assert!(events.len() >= 7, "got {} events", events.len());
        let inflight: Vec<bool> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("args")?.get("inflight")?.as_bool())
            .collect();
        assert!(inflight.contains(&false), "completed span present");
        assert!(inflight.contains(&true), "in-flight span present");
        // Stage spans carry a stage arg and verb:stage names.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("negotiate:queue")
                && e.get("args").and_then(|a| a.get("stage")).is_some()
        }));
    }

    #[test]
    fn abandoned_traces_leave_no_residue() {
        let recorder = FlightRecorder::new(8, Telemetry::disabled());
        let ctx = recorder.begin("cancel", 1, Instant::now()).unwrap();
        ctx.abandon();
        assert_eq!(recorder.depth(), (0, 0));
    }
}
