//! Shard-scaling sweep: the same workload against fresh in-process
//! daemons at increasing engine shard counts.
//!
//! `pqos-loadgen --shards 1,2,4` comes in here. For each count the sweep
//! binds an ephemeral port, builds an N-way [`ShardedCore`] over the
//! configured cluster (null predictor, registry-only telemetry — the
//! point is admission throughput, not journal I/O), serves it on a
//! background thread, and drives it with the caller's client profile,
//! shutting each daemon down before the next point. Every point sees the
//! identical request stream (same seed, same model), so the rows differ
//! only in how the engine partitions its book.
//!
//! The returned report is the **first** point's run — its top-level
//! throughput and percentiles stay comparable with plain single-daemon
//! benchmarks — with the full sweep attached as
//! [`LoadgenReport::shard_scaling`], speedups relative to that first
//! point.

use crate::engine::EngineConfig;
use crate::loadgen::{self, LoadgenConfig, LoadgenReport, ShardScalingRow};
use crate::server::{serve_core, ServerConfig};
use crate::shard::{partition_spans, ShardedCore};
use pqos_core::config::SimConfig;
use pqos_core::session::NegotiationSession;
use pqos_predict::api::NullPredictor;
use pqos_telemetry::Telemetry;
use std::net::TcpListener;

/// What to sweep: the shard counts to try and the cluster they carve up.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Engine shard counts, in run order. The first is the baseline the
    /// other points' speedups are computed against.
    pub shard_counts: Vec<u32>,
    /// Cluster size every daemon runs with. Bigger clusters mean more
    /// live reservations per book, which is where sharding's smaller
    /// per-shard books actually pay.
    pub cluster_size: u32,
    /// Engine tuning shared by every point.
    pub engine: EngineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shard_counts: vec![1, 2, 4],
            cluster_size: 4096,
            engine: EngineConfig::default(),
        }
    }
}

/// Runs the sweep. The client profile in `client` is reused for every
/// point (`addr` is ignored — each point gets its own loopback daemon;
/// `shutdown`, `metrics_addr`, `record`, and `baseline_rps` are
/// overridden, since the sweep owns daemon lifecycle and the report
/// shape).
///
/// # Errors
///
/// Socket-level failures binding a daemon or running the client surface
/// as `Err`; an individual daemon panicking surfaces as the client's
/// connection error.
pub fn shard_sweep(client: &LoadgenConfig, sweep: &SweepConfig) -> std::io::Result<LoadgenReport> {
    assert!(
        !sweep.shard_counts.is_empty(),
        "sweep needs at least one shard count"
    );
    let mut rows: Vec<ShardScalingRow> = Vec::new();
    let mut base_report: Option<LoadgenReport> = None;
    for &shards in &sweep.shard_counts {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let core = build_core(sweep.cluster_size, shards);
        let engine = sweep.engine.clone();
        let server =
            std::thread::spawn(move || serve_core(listener, core, ServerConfig::from(engine)));

        let mut point = client.clone();
        point.addr = addr.to_string();
        point.shutdown = true;
        point.metrics_addr = None;
        point.record = None;
        point.baseline_rps = None;
        let report = loadgen::run(&point)?;
        server.join().map_err(|_| {
            std::io::Error::other(format!("daemon with {shards} shards panicked"))
        })??;

        let base_rps = base_report
            .as_ref()
            .map_or(report.throughput_rps, |b| b.throughput_rps);
        rows.push(ShardScalingRow {
            shards,
            throughput_rps: report.throughput_rps,
            p99_latency_us: report.p99_latency_us,
            speedup: if base_rps > 0.0 {
                report.throughput_rps / base_rps
            } else {
                0.0
            },
        });
        if base_report.is_none() {
            base_report = Some(report);
        }
    }
    let mut report = base_report.expect("at least one sweep point ran");
    report.shard_scaling = rows;
    Ok(report)
}

/// Builds the admission core for one sweep point: `shards` single-writer
/// planes carving up `cluster` nodes, or the plain single plane when
/// `shards` is 1. Telemetry is registry-only — no journal sinks — so the
/// sweep measures admission work, not disk.
fn build_core(cluster: u32, shards: u32) -> ShardedCore<NullPredictor> {
    let session = |nodes: u32, base: u32| {
        NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(nodes),
            NullPredictor,
            Telemetry::builder().build(),
        )
        .node_base(u64::from(base))
    };
    if shards <= 1 {
        return ShardedCore::single(session(cluster, 0));
    }
    let sessions = partition_spans(cluster, shards)
        .into_iter()
        .map(|span| session(span.width, span.base))
        .collect();
    ShardedCore::sharded(
        sessions,
        NullPredictor,
        Telemetry::builder().build(),
        Telemetry::builder().build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny sweep end to end: every point answers the same workload,
    /// rows line up with the requested counts, speedups are relative to
    /// the first point, and the report serializes the table.
    #[test]
    fn sweep_runs_every_point_and_tables_the_rows() {
        let client = LoadgenConfig {
            threads: 2,
            requests: 200,
            pipeline_depth: 2,
            ..LoadgenConfig::default()
        };
        let sweep = SweepConfig {
            shard_counts: vec![1, 2],
            cluster_size: 64,
            ..SweepConfig::default()
        };
        let report = shard_sweep(&client, &sweep).expect("sweep runs");
        assert_eq!(report.shard_scaling.len(), 2);
        assert_eq!(report.shard_scaling[0].shards, 1);
        assert_eq!(report.shard_scaling[1].shards, 2);
        assert!((report.shard_scaling[0].speedup - 1.0).abs() < 1e-9);
        assert!(report.shard_scaling[1].throughput_rps > 0.0);
        assert!(report.requests > 0);
        let json = report.to_json();
        assert!(json.contains("\"shard_scaling\": [ { \"shards\": 1,"));
    }
}
