//! The JSON-lines wire protocol between clients and `pqos-qosd`.
//!
//! One JSON object per line in each direction. Every request carries a
//! caller-chosen `id`; every response echoes it, so clients may pipeline
//! any number of requests on one connection and match replies by id.
//!
//! Requests (`verb` selects the operation):
//!
//! ```text
//! {"id":1,"verb":"negotiate","size":4,"runtime_secs":3600}
//! {"id":2,"verb":"accept","job":17}
//! {"id":3,"verb":"cancel","job":17}
//! {"id":4,"verb":"status"}
//! {"id":5,"verb":"dump"}
//! {"id":6,"verb":"history"}
//! {"id":7,"verb":"shutdown"}
//! ```
//!
//! Successful responses carry `"ok":true` plus verb-specific fields;
//! failures carry `"ok":false` and a stable `error` code (see
//! [`ErrorCode`]). Malformed lines are answered with `bad_request` — the
//! connection stays open.
//!
//! Parsing reuses the journal's hand-rolled [`Json`] parser, which returns
//! `None` on any syntax error, so arbitrary garbage on the wire can at
//! worst earn a `bad_request` reply (the fuzz test in `tests/service.rs`
//! holds the daemon to that).

use pqos_telemetry::json::{Json, ObjWriter};

/// Stable error codes carried in `"error"` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not a valid protocol message.
    BadRequest,
    /// The engine queue was full; retry later.
    Overloaded,
    /// The request waited in the queue past its deadline; retry.
    Timeout,
    /// The job cannot fit the cluster at any time (negotiate).
    Rejected,
    /// No quote is held for this job (accept).
    UnknownQuote,
    /// The quoted slot is gone; negotiate again (accept).
    QuoteExpired,
    /// The job id is unknown (cancel).
    UnknownJob,
    /// The job already started; too late to cancel.
    AlreadyStarted,
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Rejected => "rejected",
            ErrorCode::UnknownQuote => "unknown_quote",
            ErrorCode::QuoteExpired => "quote_expired",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::AlreadyStarted => "already_started",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Parses a wire spelling back to a code.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "overloaded" => ErrorCode::Overloaded,
            "timeout" => ErrorCode::Timeout,
            "rejected" => ErrorCode::Rejected,
            "unknown_quote" => ErrorCode::UnknownQuote,
            "quote_expired" => ErrorCode::QuoteExpired,
            "unknown_job" => ErrorCode::UnknownJob,
            "already_started" => ErrorCode::AlreadyStarted,
            "shutting_down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }

    /// Whether the client may usefully retry the same request.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::Timeout)
    }
}

/// A client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Ask for a (deadline, probability) quote for `size` nodes running
    /// `runtime_secs` of useful work. The reply assigns the job id.
    Negotiate {
        /// Correlation id, echoed in the reply.
        id: u64,
        /// Requested partition size in nodes.
        size: u32,
        /// Requested useful runtime in seconds.
        runtime_secs: u64,
    },
    /// Commit the held quote for `job`.
    Accept {
        /// Correlation id, echoed in the reply.
        id: u64,
        /// Job id from the negotiate reply.
        job: u64,
    },
    /// Withdraw `job` (drops a held quote or releases a not-yet-started
    /// reservation).
    Cancel {
        /// Correlation id, echoed in the reply.
        id: u64,
        /// Job id from the negotiate reply.
        job: u64,
    },
    /// Ask for a state snapshot (virtual time, occupancy, counters).
    Status {
        /// Correlation id, echoed in the reply.
        id: u64,
    },
    /// Ask for the flight recorder's contents as a Chrome trace.
    Dump {
        /// Correlation id, echoed in the reply.
        id: u64,
    },
    /// Ask for the windowed health history (wall-clock metric windows).
    History {
        /// Correlation id, echoed in the reply.
        id: u64,
    },
    /// Drain and stop the daemon.
    Shutdown {
        /// Correlation id, echoed in the reply.
        id: u64,
    },
}

/// Why a request line failed to parse, with the correlation id when one
/// could still be recovered (so the error reply reaches the right caller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The request's `id`, when the line was valid JSON carrying one.
    pub id: Option<u64>,
    /// Human-readable cause for the `detail` field of the reply.
    pub detail: &'static str,
}

impl Request {
    /// The correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Negotiate { id, .. }
            | Request::Accept { id, .. }
            | Request::Cancel { id, .. }
            | Request::Status { id }
            | Request::Dump { id }
            | Request::History { id }
            | Request::Shutdown { id } => *id,
        }
    }

    /// The verb as spelled on the wire (trace and metric label).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Negotiate { .. } => "negotiate",
            Request::Accept { .. } => "accept",
            Request::Cancel { .. } => "cancel",
            Request::Status { .. } => "status",
            Request::Dump { .. } => "dump",
            Request::History { .. } => "history",
            Request::Shutdown { .. } => "shutdown",
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ParseError`] describing the first problem found; `id` is
    /// populated whenever the line was well-formed JSON with a numeric
    /// `id`, letting the server answer `bad_request` to the right caller.
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let fail = |id, detail| Err(ParseError { id, detail });
        let Some(v) = Json::parse(line.trim()) else {
            return fail(None, "not valid JSON");
        };
        let id = v.get("id").and_then(Json::as_u64);
        let Some(verb) = v.get("verb").and_then(Json::as_str) else {
            return fail(id, "missing verb");
        };
        let Some(id) = id else {
            return fail(None, "missing numeric id");
        };
        match verb {
            "negotiate" => {
                let Some(size) = v.get("size").and_then(Json::as_u64) else {
                    return fail(Some(id), "negotiate: missing size");
                };
                let Some(runtime_secs) = v.get("runtime_secs").and_then(Json::as_u64) else {
                    return fail(Some(id), "negotiate: missing runtime_secs");
                };
                let Ok(size) = u32::try_from(size) else {
                    return fail(Some(id), "negotiate: size out of range");
                };
                if size == 0 || runtime_secs == 0 {
                    return fail(
                        Some(id),
                        "negotiate: size and runtime_secs must be positive",
                    );
                }
                Ok(Request::Negotiate {
                    id,
                    size,
                    runtime_secs,
                })
            }
            "accept" | "cancel" => {
                let Some(job) = v.get("job").and_then(Json::as_u64) else {
                    return fail(Some(id), "missing job");
                };
                Ok(if verb == "accept" {
                    Request::Accept { id, job }
                } else {
                    Request::Cancel { id, job }
                })
            }
            "status" => Ok(Request::Status { id }),
            "dump" => Ok(Request::Dump { id }),
            "history" => Ok(Request::History { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            _ => fail(Some(id), "unknown verb"),
        }
    }

    /// Encodes the request as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut w = ObjWriter::new();
        match self {
            Request::Negotiate {
                id,
                size,
                runtime_secs,
            } => {
                w.u64("id", *id)
                    .str("verb", "negotiate")
                    .u64("size", u64::from(*size))
                    .u64("runtime_secs", *runtime_secs);
            }
            Request::Accept { id, job } => {
                w.u64("id", *id).str("verb", "accept").u64("job", *job);
            }
            Request::Cancel { id, job } => {
                w.u64("id", *id).str("verb", "cancel").u64("job", *job);
            }
            Request::Status { id } => {
                w.u64("id", *id).str("verb", "status");
            }
            Request::Dump { id } => {
                w.u64("id", *id).str("verb", "dump");
            }
            Request::History { id } => {
                w.u64("id", *id).str("verb", "history");
            }
            Request::Shutdown { id } => {
                w.u64("id", *id).str("verb", "shutdown");
            }
        }
        w.finish()
    }
}

/// Counters and occupancy in a `status` reply.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusBody {
    /// Virtual time in seconds.
    pub now_secs: u64,
    /// Cluster width in nodes.
    pub cluster_size: u32,
    /// Nodes committed at the current virtual time.
    pub occupied_nodes: u32,
    /// Live reservations.
    pub reservations: u64,
    /// Negotiations answered with a quote.
    pub quoted: u64,
    /// Negotiations answered `rejected`.
    pub rejected: u64,
    /// Quotes committed.
    pub accepted: u64,
    /// Accepts refused as `quote_expired`.
    pub expired: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs started.
    pub started: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Batched quotes re-checked against serial negotiation.
    pub parity_checked: u64,
    /// Re-checks that disagreed (must be zero).
    pub parity_violations: u64,
    /// Parity re-check cadence: every Nth quote batch is re-checked
    /// (1 = every batch).
    pub parity_sample: u64,
    /// Promises made: quotes committed via `accept`.
    pub promises_made: u64,
    /// Promises resolved with the deadline met.
    pub promises_kept: u64,
    /// Promises resolved with the deadline missed.
    pub promises_broken: u64,
    /// Promises withdrawn by `cancel` before resolution.
    pub promises_cancelled: u64,
    /// Worst per-bucket calibration residual, in milli-units: observed
    /// success rate minus mean quoted probability, ×1000, for the
    /// quoted-probability bucket where it is largest in magnitude.
    /// Negative = overconfident.
    pub worst_residual_milli: i64,
    /// Requests waiting in the engine queue right now.
    pub queue_depth: u64,
    /// Wall-clock seconds since the engine started.
    pub uptime_secs: u64,
    /// Jobs currently quoted, accepted, or running.
    pub live_jobs: u64,
    /// Requests refused with `overloaded` since startup.
    pub overloaded: u64,
    /// Journal events durably written across all sinks.
    pub journal_events_written: u64,
    /// Journal events evicted from the in-memory ring to make room. A
    /// nonzero value means a recorded capture may be lossy.
    pub journal_ring_dropped: u64,
    /// Journal events lost to sink I/O errors.
    pub journal_write_errors: u64,
    /// Engine shards serving this daemon (1 = the classic single-writer
    /// plane).
    pub shards: u64,
    /// Requests routed to each lane in the most recent quote batch:
    /// one entry per shard, plus a final entry for the cross-shard
    /// (wide-job) coordinator when `shards > 1`. Empty on single-shard
    /// daemons.
    pub shard_queue: Vec<u64>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful `negotiate`: the offered quote and its job id.
    Quote {
        /// Correlation id of the request.
        id: u64,
        /// Server-assigned job id for accept/cancel.
        job: u64,
        /// Quoted start time (virtual seconds).
        start_secs: u64,
        /// Promised completion (virtual seconds).
        promised_secs: u64,
        /// Effective deadline after slack (virtual seconds).
        deadline_secs: u64,
        /// Promised probability of meeting the deadline (Eq. 2).
        success_probability: f64,
        /// Whether the quote met the configured user threshold.
        satisfied_threshold: bool,
    },
    /// A successful `accept`, `cancel`, or `shutdown`.
    Ok {
        /// Correlation id of the request.
        id: u64,
    },
    /// A successful `status`.
    Status {
        /// Correlation id of the request.
        id: u64,
        /// The snapshot.
        body: StatusBody,
    },
    /// A successful `dump`: the flight recorder rendered as a Chrome
    /// `trace_event` document (JSON carried as a string field).
    Dump {
        /// Correlation id of the request.
        id: u64,
        /// Chrome trace JSON (`{"traceEvents":[…]}`).
        trace: String,
    },
    /// A successful `history`: the windowed health-history document
    /// (JSON carried as a string field; see
    /// `pqos_telemetry::WindowStore::to_json`).
    History {
        /// Correlation id of the request.
        id: u64,
        /// History JSON (`{"history":true,"window_ms":…,"families":[…]}`).
        history: String,
    },
    /// Any failure; `code` is stable, `detail` is advisory.
    Error {
        /// Correlation id of the request (0 when unrecoverable).
        id: u64,
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable explanation.
        detail: String,
    },
}

impl Response {
    /// The correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Quote { id, .. }
            | Response::Ok { id }
            | Response::Status { id, .. }
            | Response::Dump { id, .. }
            | Response::History { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Encodes the response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut w = ObjWriter::new();
        match self {
            Response::Quote {
                id,
                job,
                start_secs,
                promised_secs,
                deadline_secs,
                success_probability,
                satisfied_threshold,
            } => {
                w.u64("id", *id)
                    .bool("ok", true)
                    .u64("job", *job)
                    .u64("start_secs", *start_secs)
                    .u64("promised_secs", *promised_secs)
                    .u64("deadline_secs", *deadline_secs)
                    .f64("success_probability", *success_probability)
                    .bool("satisfied_threshold", *satisfied_threshold);
            }
            Response::Ok { id } => {
                w.u64("id", *id).bool("ok", true);
            }
            Response::Status { id, body } => {
                w.u64("id", *id)
                    .bool("ok", true)
                    .u64("now_secs", body.now_secs)
                    .u64("cluster_size", u64::from(body.cluster_size))
                    .u64("occupied_nodes", u64::from(body.occupied_nodes))
                    .u64("reservations", body.reservations)
                    .u64("quoted", body.quoted)
                    .u64("rejected", body.rejected)
                    .u64("accepted", body.accepted)
                    .u64("expired", body.expired)
                    .u64("cancelled", body.cancelled)
                    .u64("started", body.started)
                    .u64("completed", body.completed)
                    .u64("parity_checked", body.parity_checked)
                    .u64("parity_violations", body.parity_violations)
                    .u64("queue_depth", body.queue_depth)
                    .u64("uptime_secs", body.uptime_secs)
                    .u64("live_jobs", body.live_jobs)
                    .u64("overloaded", body.overloaded)
                    .u64("journal_events_written", body.journal_events_written)
                    .u64("journal_ring_dropped", body.journal_ring_dropped)
                    .u64("journal_write_errors", body.journal_write_errors)
                    .u64("parity_sample", body.parity_sample)
                    .u64("promises_made", body.promises_made)
                    .u64("promises_kept", body.promises_kept)
                    .u64("promises_broken", body.promises_broken)
                    .u64("promises_cancelled", body.promises_cancelled)
                    .i64("worst_residual_milli", body.worst_residual_milli)
                    .u64("shards", body.shards)
                    .arr_u64("shard_queue", &body.shard_queue);
            }
            Response::Dump { id, trace } => {
                w.u64("id", *id).bool("ok", true).str("trace", trace);
            }
            Response::History { id, history } => {
                w.u64("id", *id).bool("ok", true).str("history", history);
            }
            Response::Error { id, code, detail } => {
                w.u64("id", *id)
                    .bool("ok", false)
                    .str("error", code.as_str())
                    .str("detail", detail);
            }
        }
        w.finish()
    }

    /// Parses one response line (the client side of the protocol).
    /// Returns `None` for anything that is not a well-formed response.
    pub fn parse(line: &str) -> Option<Response> {
        let v = Json::parse(line.trim())?;
        let id = v.get("id").and_then(Json::as_u64)?;
        let ok = v.get("ok").and_then(Json::as_bool)?;
        if !ok {
            let code = ErrorCode::parse(v.get("error").and_then(Json::as_str)?)?;
            let detail = v
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Some(Response::Error { id, code, detail });
        }
        if let Some(trace) = v.get("trace").and_then(Json::as_str) {
            return Some(Response::Dump {
                id,
                trace: trace.to_string(),
            });
        }
        if let Some(history) = v.get("history").and_then(Json::as_str) {
            return Some(Response::History {
                id,
                history: history.to_string(),
            });
        }
        if let Some(job) = v.get("job").and_then(Json::as_u64) {
            return Some(Response::Quote {
                id,
                job,
                start_secs: v.get("start_secs").and_then(Json::as_u64)?,
                promised_secs: v.get("promised_secs").and_then(Json::as_u64)?,
                deadline_secs: v.get("deadline_secs").and_then(Json::as_u64)?,
                success_probability: v.get("success_probability").and_then(Json::as_f64)?,
                satisfied_threshold: v.get("satisfied_threshold").and_then(Json::as_bool)?,
            });
        }
        if v.get("now_secs").is_some() {
            let u = |key: &str| v.get(key).and_then(Json::as_u64);
            return Some(Response::Status {
                id,
                body: StatusBody {
                    now_secs: u("now_secs")?,
                    cluster_size: u32::try_from(u("cluster_size")?).ok()?,
                    occupied_nodes: u32::try_from(u("occupied_nodes")?).ok()?,
                    reservations: u("reservations")?,
                    quoted: u("quoted")?,
                    rejected: u("rejected")?,
                    accepted: u("accepted")?,
                    expired: u("expired")?,
                    cancelled: u("cancelled")?,
                    started: u("started")?,
                    completed: u("completed")?,
                    parity_checked: u("parity_checked")?,
                    parity_violations: u("parity_violations")?,
                    // Lenient on the observability extras so replies from
                    // daemons predating them still parse.
                    queue_depth: u("queue_depth").unwrap_or(0),
                    uptime_secs: u("uptime_secs").unwrap_or(0),
                    live_jobs: u("live_jobs").unwrap_or(0),
                    overloaded: u("overloaded").unwrap_or(0),
                    journal_events_written: u("journal_events_written").unwrap_or(0),
                    journal_ring_dropped: u("journal_ring_dropped").unwrap_or(0),
                    journal_write_errors: u("journal_write_errors").unwrap_or(0),
                    // A daemon predating sampling re-checked every batch.
                    parity_sample: u("parity_sample").unwrap_or(1),
                    promises_made: u("promises_made").unwrap_or(0),
                    promises_kept: u("promises_kept").unwrap_or(0),
                    promises_broken: u("promises_broken").unwrap_or(0),
                    promises_cancelled: u("promises_cancelled").unwrap_or(0),
                    worst_residual_milli: v
                        .get("worst_residual_milli")
                        .and_then(Json::as_i64)
                        .unwrap_or(0),
                    // A daemon predating sharding ran one engine plane.
                    shards: u("shards").unwrap_or(1),
                    shard_queue: v
                        .get("shard_queue")
                        .and_then(Json::as_arr)
                        .map(|a| a.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default(),
                },
            });
        }
        Some(Response::Ok { id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Negotiate {
                id: 1,
                size: 4,
                runtime_secs: 3600,
            },
            Request::Accept { id: 2, job: 17 },
            Request::Cancel { id: 3, job: 17 },
            Request::Status { id: 4 },
            Request::Dump { id: 5 },
            Request::History { id: 6 },
            Request::Shutdown { id: 7 },
        ];
        for r in requests {
            assert_eq!(Request::parse(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Quote {
                id: 1,
                job: 9,
                start_secs: 0,
                promised_secs: 4000,
                deadline_secs: 4800,
                success_probability: 0.93,
                satisfied_threshold: true,
            },
            Response::Ok { id: 2 },
            Response::Status {
                id: 3,
                body: StatusBody {
                    now_secs: 120,
                    cluster_size: 64,
                    occupied_nodes: 12,
                    reservations: 3,
                    quoted: 40,
                    rejected: 1,
                    accepted: 30,
                    expired: 2,
                    cancelled: 4,
                    started: 20,
                    completed: 15,
                    parity_checked: 40,
                    parity_violations: 0,
                    parity_sample: 16,
                    promises_made: 30,
                    promises_kept: 14,
                    promises_broken: 1,
                    promises_cancelled: 4,
                    worst_residual_milli: -125,
                    queue_depth: 7,
                    uptime_secs: 33,
                    live_jobs: 11,
                    overloaded: 2,
                    journal_events_written: 90,
                    journal_ring_dropped: 1,
                    journal_write_errors: 0,
                    shards: 4,
                    shard_queue: vec![12, 9, 11, 8, 2],
                },
            },
            Response::Dump {
                id: 9,
                trace: "{\"traceEvents\":[]}\n".into(),
            },
            Response::History {
                id: 10,
                history: "{\"history\":true,\"window_ms\":1000,\"windows\":0,\"families\":[]}"
                    .into(),
            },
            Response::Error {
                id: 4,
                code: ErrorCode::QuoteExpired,
                detail: "quote expired; negotiate again".into(),
            },
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.encode()), Some(r));
        }
    }

    #[test]
    fn malformed_requests_fail_softly_with_recovered_ids() {
        // Not JSON at all: no id to correlate.
        assert_eq!(Request::parse("}{").unwrap_err().id, None);
        // Valid JSON, bad verb: the id survives for the error reply.
        let err = Request::parse(r#"{"id":7,"verb":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.id, Some(7));
        // Missing fields.
        assert!(Request::parse(r#"{"id":1,"verb":"negotiate","size":4}"#).is_err());
        assert!(Request::parse(r#"{"id":1,"verb":"accept"}"#).is_err());
        // Zero-size and zero-runtime jobs are protocol errors, not quotes.
        assert!(
            Request::parse(r#"{"id":1,"verb":"negotiate","size":0,"runtime_secs":10}"#).is_err()
        );
        assert!(
            Request::parse(r#"{"id":1,"verb":"negotiate","size":4,"runtime_secs":0}"#).is_err()
        );
    }

    #[test]
    fn status_parse_tolerates_missing_observability_fields() {
        // A reply from a daemon predating queue_depth/uptime/live_jobs/
        // overloaded must still parse, with those fields zeroed.
        let line = concat!(
            r#"{"id":3,"ok":true,"now_secs":1,"cluster_size":4,"occupied_nodes":0,"#,
            r#""reservations":0,"quoted":0,"rejected":0,"accepted":0,"expired":0,"#,
            r#""cancelled":0,"started":0,"completed":0,"parity_checked":0,"#,
            r#""parity_violations":0}"#
        );
        let Some(Response::Status { body, .. }) = Response::parse(line) else {
            panic!("legacy status reply must parse");
        };
        assert_eq!(body.queue_depth, 0);
        assert_eq!(body.uptime_secs, 0);
        assert_eq!(body.live_jobs, 0);
        assert_eq!(body.overloaded, 0);
        assert_eq!(body.journal_events_written, 0);
        assert_eq!(body.journal_ring_dropped, 0);
        assert_eq!(body.journal_write_errors, 0);
        // Promise fields zero too — except the sampling cadence, which
        // was implicitly "every batch" before it was reported.
        assert_eq!(body.parity_sample, 1);
        assert_eq!(body.promises_made, 0);
        assert_eq!(body.promises_kept, 0);
        assert_eq!(body.promises_broken, 0);
        assert_eq!(body.promises_cancelled, 0);
        assert_eq!(body.worst_residual_milli, 0);
        // Pre-sharding daemons ran one engine plane.
        assert_eq!(body.shards, 1);
        assert!(body.shard_queue.is_empty());
    }

    #[test]
    fn dump_round_trips_nested_json_as_a_string() {
        let trace = "{\"traceEvents\":[{\"name\":\"negotiate\",\"ph\":\"X\"}]}";
        let r = Response::Dump {
            id: 12,
            trace: trace.into(),
        };
        assert_eq!(Response::parse(&r.encode()), Some(r));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::Timeout,
            ErrorCode::Rejected,
            ErrorCode::UnknownQuote,
            ErrorCode::QuoteExpired,
            ErrorCode::UnknownJob,
            ErrorCode::AlreadyStarted,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
