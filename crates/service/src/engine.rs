//! The single-writer admission engine.
//!
//! One OS thread owns the whole mutable service state — the
//! [`NegotiationSession`] with its reservation book, predictor, virtual
//! clock, and telemetry journal. Connection threads never share it; they
//! enqueue ([`EngineHandle::submit`]) onto a *bounded* channel and receive
//! replies on their own per-connection channel. Backpressure is therefore
//! explicit: a full queue earns the client an `overloaded` response
//! immediately, instead of unbounded buffering or a lock convoy.
//!
//! The engine loop blocks on the queue, then drains everything already
//! waiting into one *tick*. Within a tick it:
//!
//! 1. advances virtual time (wall-clock elapsed × `time_scale`), firing
//!    due job starts/completions into the journal;
//! 2. expires requests that waited past their deadline (`timeout`);
//! 3. coalesces every `negotiate` into one
//!    [`negotiate_batch`](pqos_core::negotiate::negotiate_batch) call
//!    fanned across threads — quoting is read-only over the book, so the
//!    batch is exactly what serial calls against the same snapshot would
//!    produce (re-checked live when [`EngineConfig::verify_parity`] is
//!    on);
//! 4. applies accepts/cancels/status in arrival order;
//! 5. on `shutdown`, drains the queue with `shutting_down` replies,
//!    flushes the journal, and exits.
//!
//! There is no fixed tick interval: an idle engine wakes per request, a
//! busy one amortizes whole queue-fulls into one snapshot, which is what
//! keeps quote latency in microseconds at tens of thousands of requests
//! per second.

use crate::protocol::{ErrorCode, Request, Response, StatusBody};
use pqos_core::session::{AcceptError, CancelError, NegotiationSession, QuoteDecision};
use pqos_core::session::{AdmissionRequest, SessionStatus};
use pqos_predict::api::Predictor;
use pqos_sim_core::time::{SimDuration, SimTime};
use pqos_workload::job::JobId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the engine thread.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded request-queue capacity; a full queue answers `overloaded`.
    pub queue_depth: usize,
    /// Fan-out width for batched quoting.
    pub batch_threads: usize,
    /// Virtual seconds that elapse per wall-clock second.
    pub time_scale: f64,
    /// Queue-wait budget per request; exceeded requests answer `timeout`.
    pub request_timeout: Duration,
    /// Most requests coalesced into one tick.
    pub max_batch: usize,
    /// Re-check every batched quote against a serial negotiation and
    /// count disagreements (surfaced via `status`).
    pub verify_parity: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_depth: 1024,
            batch_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            time_scale: 1.0,
            request_timeout: Duration::from_secs(5),
            max_batch: 256,
            verify_parity: true,
        }
    }
}

/// One queued unit of work: the request plus the connection's reply lane.
struct EngineRequest {
    request: Request,
    reply: Sender<Response>,
    enqueued: Instant,
}

/// Cheap clonable front door to the engine thread. Dropping every handle
/// (and the queue emptying) stops the engine.
#[derive(Clone)]
pub struct EngineHandle {
    tx: SyncSender<EngineRequest>,
    draining: Arc<AtomicBool>,
}

impl EngineHandle {
    /// Enqueues `request`; its reply will arrive on `reply`. When the
    /// engine cannot take it, the error response to send back is returned
    /// instead (`overloaded` on a full queue, `shutting_down` during
    /// drain).
    pub fn submit(&self, request: Request, reply: &Sender<Response>) -> Result<(), Response> {
        let refusal = |code: ErrorCode| Response::Error {
            id: request.id(),
            code,
            detail: match code {
                ErrorCode::Overloaded => "engine queue full; retry".into(),
                _ => "daemon is draining".into(),
            },
        };
        if self.draining.load(Ordering::Acquire) {
            return Err(refusal(ErrorCode::ShuttingDown));
        }
        let item = EngineRequest {
            request,
            reply: reply.clone(),
            enqueued: Instant::now(),
        };
        match self.tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(refusal(ErrorCode::Overloaded)),
            Err(TrySendError::Disconnected(_)) => Err(refusal(ErrorCode::ShuttingDown)),
        }
    }

    /// Whether a shutdown verb has been observed.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// Starts the engine thread around `session`. Returns the handle
/// connections submit through and the join handle to await drain.
pub fn spawn<P>(
    session: NegotiationSession<P>,
    config: EngineConfig,
) -> (EngineHandle, JoinHandle<()>)
where
    P: Predictor + Send + Sync + 'static,
{
    let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
    let draining = Arc::new(AtomicBool::new(false));
    let handle = EngineHandle {
        tx,
        draining: Arc::clone(&draining),
    };
    let join = std::thread::Builder::new()
        .name("pqos-engine".into())
        .spawn(move || run(session, config, rx, draining))
        .expect("spawn engine thread");
    (handle, join)
}

fn run<P: Predictor + Sync>(
    mut session: NegotiationSession<P>,
    config: EngineConfig,
    rx: Receiver<EngineRequest>,
    draining: Arc<AtomicBool>,
) {
    let session = &mut session;
    let epoch = Instant::now();
    let mut next_job: u64 = 1;
    'serve: loop {
        let Ok(first) = rx.recv() else {
            break; // every handle dropped; nothing more can arrive
        };
        let mut tick = vec![first];
        while tick.len() < config.max_batch.max(1) {
            match rx.try_recv() {
                Ok(item) => tick.push(item),
                Err(_) => break,
            }
        }
        let virtual_now = (epoch.elapsed().as_secs_f64() * config.time_scale) as u64;
        session.advance_to(SimTime::from_secs(virtual_now));

        let mut live = Vec::with_capacity(tick.len());
        for item in tick {
            if item.enqueued.elapsed() > config.request_timeout {
                respond(
                    &item.reply,
                    Response::Error {
                        id: item.request.id(),
                        code: ErrorCode::Timeout,
                        detail: "request waited past its deadline; retry".into(),
                    },
                );
            } else {
                live.push(item);
            }
        }

        // Pass 1: coalesce every negotiate into one batched quote call
        // against this tick's book snapshot.
        let quote_items: Vec<&EngineRequest> = live
            .iter()
            .filter(|i| matches!(i.request, Request::Negotiate { .. }))
            .collect();
        if !quote_items.is_empty() {
            let batch: Vec<(JobId, AdmissionRequest)> = quote_items
                .iter()
                .map(|i| {
                    let Request::Negotiate {
                        size, runtime_secs, ..
                    } = i.request
                    else {
                        unreachable!("filtered above");
                    };
                    let id = JobId::new(next_job);
                    next_job += 1;
                    (
                        id,
                        AdmissionRequest {
                            size,
                            runtime: SimDuration::from_secs(runtime_secs),
                        },
                    )
                })
                .collect();
            let decisions = session.quote_batch(&batch, config.batch_threads);
            for ((item, (job, _)), decision) in quote_items.iter().zip(&batch).zip(decisions) {
                respond(
                    &item.reply,
                    quote_response(item.request.id(), job.as_u64(), decision),
                );
            }
        }

        // Pass 2: mutations and queries in arrival order.
        for item in &live {
            let id = item.request.id();
            match item.request {
                Request::Negotiate { .. } => {}
                Request::Accept { job, .. } => {
                    respond(&item.reply, accept_response(session, id, job));
                }
                Request::Cancel { job, .. } => {
                    respond(&item.reply, cancel_response(session, id, job));
                }
                Request::Status { .. } => {
                    respond(
                        &item.reply,
                        Response::Status {
                            id,
                            body: status_body(&session.status()),
                        },
                    );
                }
                Request::Shutdown { .. } => {
                    draining.store(true, Ordering::Release);
                    respond(&item.reply, Response::Ok { id });
                    while let Ok(stale) = rx.try_recv() {
                        respond(
                            &stale.reply,
                            Response::Error {
                                id: stale.request.id(),
                                code: ErrorCode::ShuttingDown,
                                detail: "daemon is draining".into(),
                            },
                        );
                    }
                    break 'serve;
                }
            }
        }
    }
    session.flush();
}

/// Replies are best-effort: a gone client (dropped receiver) is a clean
/// disconnect, not an engine error.
fn respond(reply: &Sender<Response>, response: Response) {
    let _ = reply.send(response);
}

fn quote_response(id: u64, job: u64, decision: QuoteDecision) -> Response {
    match decision {
        QuoteDecision::Quoted(held) => Response::Quote {
            id,
            job,
            start_secs: held.quote.start.as_secs(),
            promised_secs: held.quote.deadline.as_secs(),
            deadline_secs: held.deadline.as_secs(),
            success_probability: held.quote.promised_success(),
            satisfied_threshold: held.satisfied_threshold,
        },
        QuoteDecision::Rejected => Response::Error {
            id,
            code: ErrorCode::Rejected,
            detail: "job cannot fit the cluster".into(),
        },
    }
}

fn accept_response<P: Predictor + Sync>(
    session: &mut NegotiationSession<P>,
    id: u64,
    job: u64,
) -> Response {
    match session.accept(JobId::new(job)) {
        Ok(_) => Response::Ok { id },
        Err(e) => Response::Error {
            id,
            code: match e {
                AcceptError::UnknownQuote => ErrorCode::UnknownQuote,
                AcceptError::QuoteExpired => ErrorCode::QuoteExpired,
            },
            detail: e.to_string(),
        },
    }
}

fn cancel_response<P: Predictor + Sync>(
    session: &mut NegotiationSession<P>,
    id: u64,
    job: u64,
) -> Response {
    match session.cancel(JobId::new(job)) {
        Ok(()) => Response::Ok { id },
        Err(e) => Response::Error {
            id,
            code: match e {
                CancelError::UnknownJob => ErrorCode::UnknownJob,
                CancelError::AlreadyStarted => ErrorCode::AlreadyStarted,
            },
            detail: e.to_string(),
        },
    }
}

fn status_body(status: &SessionStatus) -> StatusBody {
    StatusBody {
        now_secs: status.now.as_secs(),
        cluster_size: status.cluster_size,
        occupied_nodes: status.occupied_nodes,
        reservations: status.reservations as u64,
        quoted: status.stats.quoted,
        rejected: status.stats.rejected,
        accepted: status.stats.accepted,
        expired: status.stats.expired,
        cancelled: status.stats.cancelled,
        started: status.stats.started,
        completed: status.stats.completed,
        parity_checked: status.stats.parity_checked,
        parity_violations: status.stats.parity_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_core::config::SimConfig;
    use pqos_predict::api::NullPredictor;
    use pqos_telemetry::Telemetry;

    fn engine(nodes: u32, config: EngineConfig) -> (EngineHandle, JoinHandle<()>) {
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(nodes),
            NullPredictor,
            Telemetry::disabled(),
        )
        .verify_parity(config.verify_parity);
        spawn(session, config)
    }

    fn ask(handle: &EngineHandle, request: Request) -> Response {
        let (tx, rx) = std::sync::mpsc::channel();
        handle.submit(request, &tx).expect("engine accepts");
        rx.recv_timeout(Duration::from_secs(5)).expect("reply")
    }

    #[test]
    fn negotiate_accept_status_shutdown() {
        let (handle, join) = engine(16, EngineConfig::default());
        let Response::Quote { id, job, .. } = ask(
            &handle,
            Request::Negotiate {
                id: 1,
                size: 4,
                runtime_secs: 3600,
            },
        ) else {
            panic!("expected a quote");
        };
        assert_eq!(id, 1);
        assert_eq!(
            ask(&handle, Request::Accept { id: 2, job }),
            Response::Ok { id: 2 }
        );
        let Response::Status { body, .. } = ask(&handle, Request::Status { id: 3 }) else {
            panic!("expected status");
        };
        assert_eq!(body.quoted, 1);
        assert_eq!(body.accepted, 1);
        assert_eq!(body.parity_violations, 0);
        assert_eq!(
            ask(&handle, Request::Shutdown { id: 4 }),
            Response::Ok { id: 4 }
        );
        join.join().unwrap();
        // Post-drain submissions are refused, not queued.
        let (tx, _rx) = std::sync::mpsc::channel();
        let refused = handle.submit(Request::Status { id: 5 }, &tx).unwrap_err();
        assert!(matches!(
            refused,
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            }
        ));
    }

    #[test]
    fn a_full_queue_answers_overloaded() {
        // Hand-build a handle whose queue nobody drains.
        let (tx, _rx) = std::sync::mpsc::sync_channel(1);
        let handle = EngineHandle {
            tx,
            draining: Arc::new(AtomicBool::new(false)),
        };
        let (reply, _) = std::sync::mpsc::channel();
        assert!(handle.submit(Request::Status { id: 1 }, &reply).is_ok());
        let refused = handle
            .submit(Request::Status { id: 2 }, &reply)
            .unwrap_err();
        assert!(matches!(
            refused,
            Response::Error {
                id: 2,
                code: ErrorCode::Overloaded,
                ..
            }
        ));
    }

    #[test]
    fn pipelined_negotiates_coalesce_and_stay_consistent() {
        let (handle, join) = engine(32, EngineConfig::default());
        let (reply, rx) = std::sync::mpsc::channel();
        for k in 0..20u64 {
            handle
                .submit(
                    Request::Negotiate {
                        id: k,
                        size: 1 + (k % 4) as u32,
                        runtime_secs: 600,
                    },
                    &reply,
                )
                .unwrap();
        }
        let mut jobs = Vec::new();
        for _ in 0..20 {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Response::Quote { job, .. } => jobs.push(job),
                other => panic!("expected quotes, got {other:?}"),
            }
        }
        jobs.sort_unstable();
        jobs.dedup();
        assert_eq!(jobs.len(), 20, "job ids must be unique");
        let Response::Status { body, .. } = ask(&handle, Request::Status { id: 99 }) else {
            panic!();
        };
        assert_eq!(body.quoted, 20);
        assert_eq!(body.parity_violations, 0);
        ask(&handle, Request::Shutdown { id: 100 });
        join.join().unwrap();
    }
}
