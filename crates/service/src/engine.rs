//! The single-writer admission engine.
//!
//! One OS thread owns the whole mutable service state — the
//! [`NegotiationSession`] with its reservation book, predictor, virtual
//! clock, and telemetry journal. Connection threads never share it; they
//! enqueue ([`EngineHandle::submit`]) onto a *bounded* channel and receive
//! replies on their own per-connection channel. Backpressure is therefore
//! explicit: a full queue earns the client an `overloaded` response
//! immediately, instead of unbounded buffering or a lock convoy.
//!
//! The engine loop blocks on the queue, then drains everything already
//! waiting into one *tick*. Within a tick it:
//!
//! 1. advances virtual time (wall-clock elapsed × `time_scale`), firing
//!    due job starts/completions into the journal;
//! 2. expires requests that waited past their deadline (`timeout`);
//! 3. coalesces every `negotiate` into one
//!    [`negotiate_batch`](pqos_core::negotiate::negotiate_batch) call
//!    fanned across threads — quoting is read-only over the book, so the
//!    batch is exactly what serial calls against the same snapshot would
//!    produce (re-checked live when [`EngineConfig::verify_parity`] is
//!    on);
//! 4. applies accepts/cancels/status in arrival order;
//! 5. on `shutdown`, drains the queue with `shutting_down` replies,
//!    flushes the journal, and exits.
//!
//! There is no fixed tick interval: an idle engine wakes per request, a
//! busy one amortizes whole queue-fulls into one snapshot, which is what
//! keeps quote latency in microseconds at tens of thousands of requests
//! per second.

use crate::flight::{FlightRecorder, TraceCtx};
use crate::protocol::{ErrorCode, Request, Response, StatusBody};
use crate::record::TraceRecorder;
use crate::shard::ShardedCore;
use pqos_core::session::{AcceptError, CancelError, NegotiationSession, QuoteDecision};
use pqos_core::session::{AdmissionRequest, SessionStatus};
use pqos_predict::api::Predictor;
use pqos_sim_core::time::{SimDuration, SimTime};
use pqos_telemetry::{SinkHealth, SloAccum, SloEngine, SloRule, Telemetry, WindowStore};
use pqos_workload::job::JobId;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a reply travels once the engine has it: either a plain channel
/// (in-process callers — tests, replay, benches) or the net event
/// loop's completion lane, which tags the reply with its connection
/// token and wakes the loop to relay it onto the socket. Either way the
/// request's trace rides along, to be marked `write` and finished once
/// the bytes hit the wire.
#[derive(Clone)]
pub struct ReplySender {
    lane: ReplyLane,
}

#[derive(Clone)]
enum ReplyLane {
    Channel(Sender<(Response, Option<TraceCtx>)>),
    Net {
        tx: Sender<(pqos_net::Token, Response, Option<TraceCtx>)>,
        token: pqos_net::Token,
        waker: pqos_net::Waker,
    },
}

impl ReplySender {
    /// An in-process reply lane: the receiver sees `(response, trace)`
    /// pairs in engine order.
    pub fn channel() -> (ReplySender, Receiver<(Response, Option<TraceCtx>)>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            ReplySender {
                lane: ReplyLane::Channel(tx),
            },
            rx,
        )
    }

    /// The net server's lane: replies land on the shared completions
    /// queue tagged with `token`, and `waker` interrupts the event
    /// loop's sleep so it relays them promptly.
    pub(crate) fn net(
        tx: Sender<(pqos_net::Token, Response, Option<TraceCtx>)>,
        token: pqos_net::Token,
        waker: pqos_net::Waker,
    ) -> ReplySender {
        ReplySender {
            lane: ReplyLane::Net { tx, token, waker },
        }
    }

    /// Sends the reply. A gone receiver hands the payload back so the
    /// caller can abandon the trace instead of leaking it.
    #[allow(clippy::result_large_err)] // consumed immediately by the caller
    pub fn send(
        &self,
        response: Response,
        trace: Option<TraceCtx>,
    ) -> Result<(), (Response, Option<TraceCtx>)> {
        match &self.lane {
            ReplyLane::Channel(tx) => tx.send((response, trace)).map_err(|e| e.0),
            ReplyLane::Net { tx, token, waker } => {
                let sent = tx.send((*token, response, trace)).map_err(|e| {
                    let (_, response, trace) = e.0;
                    (response, trace)
                });
                waker.wake();
                sent
            }
        }
    }
}

/// Tuning for the engine thread.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded request-queue capacity; a full queue answers `overloaded`.
    pub queue_depth: usize,
    /// Fan-out width for batched quoting.
    pub batch_threads: usize,
    /// Virtual seconds that elapse per wall-clock second.
    pub time_scale: f64,
    /// Queue-wait budget per request; exceeded requests answer `timeout`.
    pub request_timeout: Duration,
    /// Most requests coalesced into one tick.
    pub max_batch: usize,
    /// Re-check every batched quote against a serial negotiation and
    /// count disagreements (surfaced via `status`).
    pub verify_parity: bool,
    /// Re-check only every Nth tick's batch (deterministic 1-in-N
    /// sampling; 1 = every batch). Tests, CI and replay keep the
    /// default of 1 so parity stays exhaustive where it matters;
    /// release serving dials it up to keep the re-check off the hot
    /// path (`pqos-qosd --parity-sample`).
    pub parity_sample: u64,
    /// Declarative SLO rules evaluated over virtual-time windows at each
    /// tick; fire/resolve transitions are journaled as `slo_alert`
    /// events. Only meaningful together with [`EngineConfig::slo_accum`].
    pub slo_rules: Vec<SloRule>,
    /// The window accumulator the SLO evaluator drains. The caller
    /// attaches a [`pqos_telemetry::SloSink`] over this same accumulator
    /// to every journal plane, so window counts fill as events are
    /// journaled; `None` disables SLO evaluation entirely.
    pub slo_accum: Option<Arc<SloAccum>>,
    /// Wall-clock windowed health history served by the `history` verb
    /// (sampled by the server's history thread, not by the engine).
    /// `None` answers `history` with an empty document.
    pub history: Option<Arc<WindowStore>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_depth: 1024,
            batch_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            time_scale: 1.0,
            request_timeout: Duration::from_secs(5),
            max_batch: 256,
            verify_parity: true,
            parity_sample: 1,
            slo_rules: Vec::new(),
            slo_accum: None,
            history: None,
        }
    }
}

/// One queued unit of work: the request plus the connection's reply lane
/// and its trace (if the flight recorder is on).
struct EngineRequest {
    request: Request,
    reply: ReplySender,
    enqueued: Instant,
    trace: Option<TraceCtx>,
    /// Connection id the request arrived on (0 for in-process callers);
    /// recorded in the request trace.
    conn: u64,
}

/// State shared between every handle, the engine thread, and the metrics
/// endpoint: cheap atomics that are meaningful even while the engine is
/// busy inside a tick.
struct EngineShared {
    draining: AtomicBool,
    /// Requests sitting in the bounded queue right now.
    queue_len: AtomicI64,
    /// Requests refused with `overloaded` since startup.
    overloaded: AtomicU64,
    /// When the engine started (uptime basis).
    epoch: Instant,
}

/// Cheap clonable front door to the engine thread. Dropping every handle
/// (and the queue emptying) stops the engine.
#[derive(Clone)]
pub struct EngineHandle {
    tx: SyncSender<EngineRequest>,
    shared: Arc<EngineShared>,
    telemetry: Telemetry,
}

impl EngineHandle {
    /// Enqueues `request`; its reply (and `trace`, marked and finished by
    /// the writer) will arrive on `reply`. When the engine cannot take it,
    /// the error response to send back — and the trace, returned so the
    /// caller can still finish it — comes back instead (`overloaded` on a
    /// full queue, `shutting_down` during drain).
    // The Err payload is large but is consumed immediately by the caller
    // to send the refusal; boxing it would put an allocation on the
    // overload path, which is exactly when we want to shed load cheaply.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &self,
        request: Request,
        reply: &ReplySender,
        trace: Option<TraceCtx>,
        conn: u64,
    ) -> Result<(), (Response, Option<TraceCtx>)> {
        let refusal = |code: ErrorCode| Response::Error {
            id: request.id(),
            code,
            detail: match code {
                ErrorCode::Overloaded => "engine queue full; retry".into(),
                _ => "daemon is draining".into(),
            },
        };
        if self.shared.draining.load(Ordering::Acquire) {
            return Err((refusal(ErrorCode::ShuttingDown), trace));
        }
        let item = EngineRequest {
            request,
            reply: reply.clone(),
            enqueued: Instant::now(),
            trace,
            conn,
        };
        match self.tx.try_send(item) {
            Ok(()) => {
                self.shared.queue_len.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(item)) => {
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                Err((refusal(ErrorCode::Overloaded), item.trace))
            }
            Err(TrySendError::Disconnected(item)) => {
                Err((refusal(ErrorCode::ShuttingDown), item.trace))
            }
        }
    }

    /// Whether a shutdown verb has been observed.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Requests waiting in the engine queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_len.load(Ordering::Relaxed).max(0) as usize
    }

    /// Requests refused with `overloaded` since startup.
    pub fn overloaded_total(&self) -> u64 {
        self.shared.overloaded.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the engine started.
    pub fn uptime(&self) -> Duration {
        self.shared.epoch.elapsed()
    }

    /// Pushes the live engine state into gauges, so a `/metrics` scrape
    /// of an idle daemon (no tick running) still reports fresh values.
    pub fn refresh_gauges(&self) {
        self.telemetry
            .gauge("engine.queue_depth")
            .set(self.queue_depth() as i64);
        self.telemetry
            .gauge("engine.overloaded_total")
            .set(self.overloaded_total() as i64);
        self.telemetry
            .gauge("process.uptime_seconds")
            .set(self.uptime().as_secs() as i64);
    }
}

/// Starts the engine thread around `session`. Returns the handle
/// connections submit through and the join handle to await drain.
/// `recorder` answers the `dump` verb (pass a disabled one to opt out);
/// `trace` captures every answered request for deterministic replay
/// (pass a disabled one to opt out).
pub fn spawn<P>(
    session: NegotiationSession<P>,
    config: EngineConfig,
    recorder: FlightRecorder,
    trace: TraceRecorder,
) -> (EngineHandle, JoinHandle<()>)
where
    P: Predictor + Send + Sync + 'static,
{
    spawn_core(ShardedCore::single(session), config, recorder, trace)
}

/// Starts the engine thread around a (possibly sharded) admission core.
/// The classic [`spawn`] is this with a single-plane core; `pqos-qosd
/// --shards N` builds an N-way core and comes in here directly. The
/// engine loop is identical either way — the core hides the routing.
pub fn spawn_core<P>(
    core: ShardedCore<P>,
    config: EngineConfig,
    recorder: FlightRecorder,
    trace: TraceRecorder,
) -> (EngineHandle, JoinHandle<()>)
where
    P: Predictor + Send + Sync + 'static,
{
    // The sampling cadence is engine policy, not session construction:
    // apply it here so every spawn path (daemon, tests, benches) gets
    // exactly what its EngineConfig says.
    let core = core.parity_sample(config.parity_sample);
    let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
    let shared = Arc::new(EngineShared {
        draining: AtomicBool::new(false),
        queue_len: AtomicI64::new(0),
        overloaded: AtomicU64::new(0),
        epoch: Instant::now(),
    });
    let handle = EngineHandle {
        tx,
        shared: Arc::clone(&shared),
        telemetry: core.telemetry().clone(),
    };
    let join = std::thread::Builder::new()
        .name("pqos-engine".into())
        .spawn(move || run(core, config, rx, shared, recorder, trace))
        .expect("spawn engine thread");
    (handle, join)
}

fn run<P: Predictor + Sync>(
    mut core: ShardedCore<P>,
    config: EngineConfig,
    rx: Receiver<EngineRequest>,
    shared: Arc<EngineShared>,
    recorder: FlightRecorder,
    trace_rec: TraceRecorder,
) {
    let core = &mut core;
    let telemetry = core.telemetry().clone();
    let tick_ns = telemetry.histogram("engine.tick_ns");
    let batch_size = telemetry.histogram("engine.batch_size");
    let ticks = telemetry.counter("engine.ticks");
    let timeouts = telemetry.counter("engine.timeouts");
    let queue_gauge = telemetry.gauge("engine.queue_depth");
    let live_jobs_gauge = telemetry.gauge("engine.live_jobs");
    let overloaded_gauge = telemetry.gauge("engine.overloaded_total");
    let uptime_gauge = telemetry.gauge("process.uptime_seconds");
    // Quote-cache counters are cumulative session-side; published as
    // gauges so a /metrics scrape reads the latest totals
    // (pqos_quote_cache_*).
    let cache_hits_gauge = telemetry.gauge("quote_cache.hits");
    let cache_misses_gauge = telemetry.gauge("quote_cache.misses");
    let cache_rebuilds_gauge = telemetry.gauge("quote_cache.profile_rebuilds");
    let cache_invalidated_gauge = telemetry.gauge("quote_cache.entries_invalidated");
    // Promise-ledger gauges (pqos_promise_*): cumulative accepted-quote
    // and resolution-verdict counts plus the worst per-bucket calibration
    // residual, in milli-units (observed − quoted, ×1000; negative =
    // overconfident). Refreshed at every tick end and once more on drain
    // so the final scrape agrees with the flushed journal
    // (`pqos-doctor crosscheck` holds us to that).
    let promise_made_gauge = telemetry.gauge("promise.made");
    let promise_kept_gauge = telemetry.gauge("promise.kept");
    let promise_broken_gauge = telemetry.gauge("promise.broken");
    let promise_cancelled_gauge = telemetry.gauge("promise.cancelled");
    let promise_residual_gauge = telemetry.gauge("promise.worst_residual_milli");
    let set_promise_gauges = |p: pqos_core::session::PromiseStats| {
        promise_made_gauge.set(p.made as i64);
        promise_kept_gauge.set(p.kept as i64);
        promise_broken_gauge.set(p.broken as i64);
        promise_cancelled_gauge.set(p.cancelled as i64);
        promise_residual_gauge.set(p.worst_residual_milli);
    };
    // The SLO plane: per-window counts accumulate via SloSinks on the
    // journal planes; the evaluator drains closed windows once per tick,
    // right after virtual time advances — the same point replay drains
    // at, which is what makes the journaled alerts byte-reproducible.
    let mut slo: Option<(Arc<SloAccum>, SloEngine)> = config
        .slo_accum
        .as_ref()
        .filter(|_| !config.slo_rules.is_empty())
        .map(|accum| (Arc::clone(accum), SloEngine::new(config.slo_rules.clone())));
    let slo_rules_gauge = telemetry.gauge("slo.rules");
    let slo_active_gauge = telemetry.gauge("slo.active_alerts");
    let slo_fired_gauge = telemetry.gauge("slo.alerts_fired_total");
    let slo_resolved_gauge = telemetry.gauge("slo.alerts_resolved_total");
    let slo_windows_gauge = telemetry.gauge("slo.windows_closed_total");
    let set_slo_gauges = |engine: &SloEngine| {
        slo_rules_gauge.set(engine.rules().len() as i64);
        slo_active_gauge.set(engine.active_alerts() as i64);
        slo_fired_gauge.set(engine.fired_total as i64);
        slo_resolved_gauge.set(engine.resolved_total as i64);
        slo_windows_gauge.set(engine.windows_closed as i64);
        let firing = engine.firing();
        for rule in engine.rules() {
            let labels = [("rule", rule.name.as_str())];
            telemetry
                .gauge(&pqos_telemetry::labeled("slo.rule_firing", &labels))
                .set(i64::from(firing.contains(&rule.name.as_str())));
        }
    };
    if let Some((_, engine)) = slo.as_ref() {
        set_slo_gauges(engine);
    }
    let epoch = shared.epoch;
    let mut next_job: u64 = 1;
    // Batch-epoch counter for the request trace: one per tick, starting
    // at 1, so replay can reconstruct exactly which requests shared a
    // book snapshot.
    let mut epoch_no: u64 = 0;
    // Journal-derived gauges (journal.*) are published on flush; flush at
    // most once a second so a mid-run /metrics scrape sees fresh session
    // counts without a sink flush on every tick.
    let mut last_flush = Instant::now();
    const FLUSH_EVERY: Duration = Duration::from_secs(1);
    let pop = |item: &mut EngineRequest| {
        shared.queue_len.fetch_sub(1, Ordering::Relaxed);
        if let Some(t) = item.trace.as_mut() {
            t.mark("queue");
        }
    };
    'serve: loop {
        let Ok(mut first) = rx.recv() else {
            break; // every handle dropped; nothing more can arrive
        };
        pop(&mut first);
        let tick_timer = tick_ns.start_timer();
        let mut tick = vec![first];
        while tick.len() < config.max_batch.max(1) {
            match rx.try_recv() {
                Ok(mut item) => {
                    pop(&mut item);
                    tick.push(item);
                }
                Err(_) => break,
            }
        }
        let virtual_now = (epoch.elapsed().as_secs_f64() * config.time_scale) as u64;
        core.advance_to(SimTime::from_secs(virtual_now));
        epoch_no += 1;
        if let Some((accum, slo_engine)) = slo.as_mut() {
            for alert in slo_engine.drain(accum, virtual_now) {
                core.alert_telemetry().emit(|| alert.clone());
            }
            set_slo_gauges(slo_engine);
        }

        let mut live = Vec::with_capacity(tick.len());
        for mut item in tick {
            if item.enqueued.elapsed() > config.request_timeout {
                timeouts.inc();
                let response = Response::Error {
                    id: item.request.id(),
                    code: ErrorCode::Timeout,
                    detail: "request waited past its deadline; retry".into(),
                };
                // Recorded with job:null — the request never reached the
                // session, and replay must skip it the same way.
                trace_rec.record(
                    epoch_no,
                    virtual_now,
                    item.conn,
                    &item.request,
                    &response,
                    None,
                );
                respond(&item.reply, response, item.trace.take());
            } else {
                live.push(item);
            }
        }

        // Pass 1: coalesce every negotiate into one batched quote call
        // against this tick's book snapshot.
        let quote_idx: Vec<usize> = live
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.request, Request::Negotiate { .. }))
            .map(|(k, _)| k)
            .collect();
        if !quote_idx.is_empty() {
            batch_size.observe(quote_idx.len() as f64);
            let batch: Vec<(JobId, AdmissionRequest)> = quote_idx
                .iter()
                .map(|&k| {
                    let Request::Negotiate {
                        size, runtime_secs, ..
                    } = live[k].request
                    else {
                        unreachable!("filtered above");
                    };
                    let id = JobId::new(next_job);
                    next_job += 1;
                    (
                        id,
                        AdmissionRequest {
                            size,
                            runtime: SimDuration::from_secs(runtime_secs),
                        },
                    )
                })
                .collect();
            for &k in &quote_idx {
                if let Some(t) = live[k].trace.as_mut() {
                    t.mark("batch");
                }
            }
            let decisions = core.quote_batch(&batch, config.batch_threads);
            for ((&k, (job, _)), decision) in quote_idx.iter().zip(&batch).zip(decisions) {
                let item = &mut live[k];
                let response = quote_response(item.request.id(), job.as_u64(), decision);
                if let Some(t) = item.trace.as_mut() {
                    t.mark("compute");
                }
                // Rejected negotiates carry their job id too: they
                // consumed one, and replay must consume it identically.
                trace_rec.record(
                    epoch_no,
                    virtual_now,
                    item.conn,
                    &item.request,
                    &response,
                    Some(job.as_u64()),
                );
                respond(&item.reply, response, item.trace.take());
            }
        }

        // Pass 2: mutations and queries in arrival order.
        for item in live.iter_mut() {
            let id = item.request.id();
            let response = match item.request {
                Request::Negotiate { .. } => continue, // answered in pass 1
                Request::Accept { job, .. } => accept_response(core, id, job),
                Request::Cancel { job, .. } => cancel_response(core, id, job),
                Request::Status { .. } => Response::Status {
                    id,
                    body: status_body(
                        &core.status(),
                        &shared,
                        core.live_jobs() as u64,
                        core.sink_health(),
                        core.shard_count() as u64,
                        core.routed_last().to_vec(),
                    ),
                },
                Request::Dump { .. } => Response::Dump {
                    id,
                    trace: recorder.dump_chrome(),
                },
                Request::History { .. } => Response::History {
                    id,
                    history: match config.history.as_ref() {
                        Some(store) => store.to_json(),
                        None => concat!(
                            r#"{"history":true,"window_ms":0,"#,
                            r#""windows":0,"families":[]}"#
                        )
                        .to_string(),
                    },
                },
                Request::Shutdown { .. } => {
                    shared.draining.store(true, Ordering::Release);
                    let response = Response::Ok { id };
                    trace_rec.record(
                        epoch_no,
                        virtual_now,
                        item.conn,
                        &item.request,
                        &response,
                        None,
                    );
                    respond(&item.reply, response, item.trace.take());
                    while let Ok(mut stale) = rx.try_recv() {
                        pop(&mut stale);
                        let refusal = Response::Error {
                            id: stale.request.id(),
                            code: ErrorCode::ShuttingDown,
                            detail: "daemon is draining".into(),
                        };
                        respond(&stale.reply, refusal, stale.trace.take());
                    }
                    break 'serve;
                }
            };
            if let Some(t) = item.trace.as_mut() {
                t.mark("compute");
            }
            trace_rec.record(
                epoch_no,
                virtual_now,
                item.conn,
                &item.request,
                &response,
                None,
            );
            respond(&item.reply, response, item.trace.take());
        }
        ticks.inc();
        tick_timer.stop();
        queue_gauge.set(shared.queue_len.load(Ordering::Relaxed).max(0));
        live_jobs_gauge.set(core.live_jobs() as i64);
        overloaded_gauge.set(shared.overloaded.load(Ordering::Relaxed) as i64);
        uptime_gauge.set(epoch.elapsed().as_secs() as i64);
        let cache = core.quote_cache_stats();
        cache_hits_gauge.set(cache.hits as i64);
        cache_misses_gauge.set(cache.misses as i64);
        cache_rebuilds_gauge.set(cache.profile_rebuilds as i64);
        cache_invalidated_gauge.set(cache.entries_invalidated as i64);
        set_promise_gauges(core.promise_stats());
        set_shard_gauges(&telemetry, core);
        if last_flush.elapsed() >= FLUSH_EVERY {
            core.flush();
            last_flush = Instant::now();
        }
    }
    uptime_gauge.set(epoch.elapsed().as_secs() as i64);
    // Shutdown breaks out before the tick-end gauge block; publish the
    // final promise tallies so the post-drain snapshot reconciles. No
    // extra SLO drain happens here: windows close only at recorded tick
    // times, so replay closes exactly the same set.
    set_promise_gauges(core.promise_stats());
    if let Some((_, slo_engine)) = slo.as_ref() {
        set_slo_gauges(slo_engine);
    }
    set_shard_gauges(&telemetry, core);
    core.flush();
    trace_rec.flush();
}

/// Replies are best-effort: a gone client (dropped receiver) is a clean
/// disconnect, not an engine error. The trace travels with the response
/// so the writer thread can mark the `write` stage and finish it.
fn respond(reply: &ReplySender, response: Response, trace: Option<TraceCtx>) {
    if let Err((_, Some(t))) = reply.send(response, trace) {
        // Receiver gone: nobody will write the reply or finish the trace,
        // so drop it from the in-flight table instead of leaking it.
        t.abandon();
    }
}

// The outcome→response mappings below are shared with `crate::replay`:
// replay must render a session outcome to the exact bytes the live
// engine would have sent, or response parity would diverge spuriously.

pub(crate) fn quote_response(id: u64, job: u64, decision: QuoteDecision) -> Response {
    match decision {
        QuoteDecision::Quoted(held) => Response::Quote {
            id,
            job,
            start_secs: held.quote.start.as_secs(),
            promised_secs: held.quote.deadline.as_secs(),
            deadline_secs: held.deadline.as_secs(),
            success_probability: held.quote.promised_success(),
            satisfied_threshold: held.satisfied_threshold,
        },
        QuoteDecision::Rejected => Response::Error {
            id,
            code: ErrorCode::Rejected,
            detail: "job cannot fit the cluster".into(),
        },
    }
}

pub(crate) fn accept_outcome_response(
    id: u64,
    outcome: &Result<pqos_core::session::HeldQuote, AcceptError>,
) -> Response {
    match outcome {
        Ok(_) => Response::Ok { id },
        Err(e) => Response::Error {
            id,
            code: match e {
                AcceptError::UnknownQuote => ErrorCode::UnknownQuote,
                AcceptError::QuoteExpired => ErrorCode::QuoteExpired,
            },
            detail: e.to_string(),
        },
    }
}

pub(crate) fn cancel_outcome_response(id: u64, outcome: &Result<(), CancelError>) -> Response {
    match outcome {
        Ok(()) => Response::Ok { id },
        Err(e) => Response::Error {
            id,
            code: match e {
                CancelError::UnknownJob => ErrorCode::UnknownJob,
                CancelError::AlreadyStarted => ErrorCode::AlreadyStarted,
            },
            detail: e.to_string(),
        },
    }
}

fn accept_response<P: Predictor + Sync>(core: &mut ShardedCore<P>, id: u64, job: u64) -> Response {
    accept_outcome_response(id, &core.accept(JobId::new(job)))
}

fn cancel_response<P: Predictor + Sync>(core: &mut ShardedCore<P>, id: u64, job: u64) -> Response {
    cancel_outcome_response(id, &core.cancel(JobId::new(job)))
}

/// Publishes per-shard gauges (`shard="k"` labels on the engine, queue
/// and quote-cache families) on multi-shard cores. The final label lane
/// in `engine.shard_routed_total` is the cross-shard coordinator. A
/// single-plane core publishes nothing — the unlabeled gauges already
/// tell the whole story.
fn set_shard_gauges<P: Predictor + Sync>(telemetry: &Telemetry, core: &ShardedCore<P>) {
    if core.shard_count() <= 1 {
        return;
    }
    let statuses = core.shard_statuses();
    let caches = core.shard_cache_stats();
    let routed = core.routed_total();
    for (k, status) in statuses.iter().enumerate() {
        let shard = k.to_string();
        let labels = [("shard", shard.as_str())];
        let set = |name: &str, v: i64| {
            telemetry
                .gauge(&pqos_telemetry::labeled(name, &labels))
                .set(v);
        };
        set(
            "engine.live_jobs",
            status.stats.accepted as i64 + status.stats.started as i64
                - status.stats.completed as i64
                - status.stats.cancelled as i64,
        );
        set("engine.shard_quoted", status.stats.quoted as i64);
        set(
            "engine.shard_occupied_nodes",
            i64::from(status.occupied_nodes),
        );
        set("engine.shard_reservations", status.reservations as i64);
        if let Some(cache) = caches.get(k) {
            set("quote_cache.hits", cache.hits as i64);
            set("quote_cache.misses", cache.misses as i64);
            set(
                "quote_cache.profile_rebuilds",
                cache.profile_rebuilds as i64,
            );
            set(
                "quote_cache.entries_invalidated",
                cache.entries_invalidated as i64,
            );
        }
    }
    for (k, &n) in routed.iter().enumerate() {
        let lane = if k == routed.len() - 1 {
            "wide".to_string()
        } else {
            k.to_string()
        };
        telemetry
            .gauge(&pqos_telemetry::labeled(
                "engine.shard_routed_total",
                &[("shard", lane.as_str())],
            ))
            .set(n as i64);
    }
}

fn status_body(
    status: &SessionStatus,
    shared: &EngineShared,
    live_jobs: u64,
    journal: SinkHealth,
    shards: u64,
    shard_queue: Vec<u64>,
) -> StatusBody {
    StatusBody {
        now_secs: status.now.as_secs(),
        cluster_size: status.cluster_size,
        occupied_nodes: status.occupied_nodes,
        reservations: status.reservations as u64,
        quoted: status.stats.quoted,
        rejected: status.stats.rejected,
        accepted: status.stats.accepted,
        expired: status.stats.expired,
        cancelled: status.stats.cancelled,
        started: status.stats.started,
        completed: status.stats.completed,
        parity_checked: status.stats.parity_checked,
        parity_violations: status.stats.parity_violations,
        parity_sample: status.parity_sample,
        promises_made: status.promises.made,
        promises_kept: status.promises.kept,
        promises_broken: status.promises.broken,
        promises_cancelled: status.promises.cancelled,
        worst_residual_milli: status.promises.worst_residual_milli,
        queue_depth: shared.queue_len.load(Ordering::Relaxed).max(0) as u64,
        uptime_secs: shared.epoch.elapsed().as_secs(),
        live_jobs,
        overloaded: shared.overloaded.load(Ordering::Relaxed),
        journal_events_written: journal.events_written,
        journal_ring_dropped: journal.ring_dropped,
        journal_write_errors: journal.write_errors,
        shards,
        shard_queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_core::config::SimConfig;
    use pqos_predict::api::NullPredictor;
    use pqos_telemetry::Telemetry;

    fn engine(nodes: u32, config: EngineConfig) -> (EngineHandle, JoinHandle<()>) {
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(nodes),
            NullPredictor,
            Telemetry::disabled(),
        )
        .verify_parity(config.verify_parity);
        spawn(
            session,
            config,
            FlightRecorder::disabled(),
            TraceRecorder::disabled(),
        )
    }

    fn ask(handle: &EngineHandle, request: Request) -> Response {
        let (tx, rx) = ReplySender::channel();
        handle
            .submit(request, &tx, None, 0)
            .expect("engine accepts");
        rx.recv_timeout(Duration::from_secs(5)).expect("reply").0
    }

    #[test]
    fn negotiate_accept_status_shutdown() {
        let (handle, join) = engine(16, EngineConfig::default());
        let Response::Quote { id, job, .. } = ask(
            &handle,
            Request::Negotiate {
                id: 1,
                size: 4,
                runtime_secs: 3600,
            },
        ) else {
            panic!("expected a quote");
        };
        assert_eq!(id, 1);
        assert_eq!(
            ask(&handle, Request::Accept { id: 2, job }),
            Response::Ok { id: 2 }
        );
        let Response::Status { body, .. } = ask(&handle, Request::Status { id: 3 }) else {
            panic!("expected status");
        };
        assert_eq!(body.quoted, 1);
        assert_eq!(body.accepted, 1);
        assert_eq!(body.parity_violations, 0);
        assert_eq!(
            ask(&handle, Request::Shutdown { id: 4 }),
            Response::Ok { id: 4 }
        );
        join.join().unwrap();
        // Post-drain submissions are refused, not queued.
        let (tx, _rx) = ReplySender::channel();
        let (refused, _) = handle
            .submit(Request::Status { id: 5 }, &tx, None, 0)
            .unwrap_err();
        assert!(matches!(
            refused,
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            }
        ));
    }

    #[test]
    fn a_full_queue_answers_overloaded_and_counts_it() {
        // Hand-build a handle whose queue nobody drains.
        let (tx, _rx) = std::sync::mpsc::sync_channel(1);
        let handle = EngineHandle {
            tx,
            shared: Arc::new(EngineShared {
                draining: AtomicBool::new(false),
                queue_len: AtomicI64::new(0),
                overloaded: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
            telemetry: Telemetry::disabled(),
        };
        let (reply, _rx) = ReplySender::channel();
        assert!(handle
            .submit(Request::Status { id: 1 }, &reply, None, 0)
            .is_ok());
        assert_eq!(handle.queue_depth(), 1);
        let (refused, _) = handle
            .submit(Request::Status { id: 2 }, &reply, None, 0)
            .unwrap_err();
        assert!(matches!(
            refused,
            Response::Error {
                id: 2,
                code: ErrorCode::Overloaded,
                ..
            }
        ));
        assert_eq!(handle.overloaded_total(), 1);
        assert_eq!(handle.queue_depth(), 1, "refused requests never count");
    }

    #[test]
    fn pipelined_negotiates_coalesce_and_stay_consistent() {
        let (handle, join) = engine(32, EngineConfig::default());
        let (reply, rx) = ReplySender::channel();
        for k in 0..20u64 {
            handle
                .submit(
                    Request::Negotiate {
                        id: k,
                        size: 1 + (k % 4) as u32,
                        runtime_secs: 600,
                    },
                    &reply,
                    None,
                    0,
                )
                .unwrap();
        }
        let mut jobs = Vec::new();
        for _ in 0..20 {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap().0 {
                Response::Quote { job, .. } => jobs.push(job),
                other => panic!("expected quotes, got {other:?}"),
            }
        }
        jobs.sort_unstable();
        jobs.dedup();
        assert_eq!(jobs.len(), 20, "job ids must be unique");
        let Response::Status { body, .. } = ask(&handle, Request::Status { id: 99 }) else {
            panic!();
        };
        assert_eq!(body.quoted, 20);
        assert_eq!(body.parity_violations, 0);
        ask(&handle, Request::Shutdown { id: 100 });
        join.join().unwrap();
    }

    #[test]
    fn status_reports_engine_observability_fields() {
        let (handle, join) = engine(16, EngineConfig::default());
        let Response::Quote { job, .. } = ask(
            &handle,
            Request::Negotiate {
                id: 1,
                size: 2,
                runtime_secs: 600,
            },
        ) else {
            panic!("expected a quote");
        };
        ask(&handle, Request::Accept { id: 2, job });
        let Response::Status { body, .. } = ask(&handle, Request::Status { id: 3 }) else {
            panic!("expected status");
        };
        // A quoted-and-accepted job is live; the queue drained to answer us.
        assert_eq!(body.live_jobs, 1);
        assert_eq!(body.queue_depth, 0);
        assert_eq!(body.overloaded, 0);
        // Accepting the quote made a promise; it is still pending.
        assert_eq!(body.promises_made, 1);
        assert_eq!(
            body.promises_kept + body.promises_broken + body.promises_cancelled,
            0
        );
        assert_eq!(body.parity_sample, 1, "tests re-check every batch");
        ask(&handle, Request::Shutdown { id: 4 });
        join.join().unwrap();
    }

    #[test]
    fn dump_answers_with_a_chrome_trace_and_the_writer_finishes_traces() {
        let telemetry = Telemetry::builder().ring_buffer(1).build();
        let recorder = FlightRecorder::new(16, telemetry.clone());
        let session = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(16),
            NullPredictor,
            Telemetry::disabled(),
        );
        let (handle, join) = spawn(
            session,
            EngineConfig::default(),
            recorder.clone(),
            TraceRecorder::disabled(),
        );
        let (tx, rx) = ReplySender::channel();

        // A traced negotiate: reader role (begin + parse mark) here,
        // writer role (write mark + finish) after the reply arrives.
        let mut trace = recorder
            .begin("negotiate", 7, Instant::now())
            .expect("recorder is enabled");
        trace.mark("parse");
        handle
            .submit(
                Request::Negotiate {
                    id: 1,
                    size: 2,
                    runtime_secs: 600,
                },
                &tx,
                Some(trace),
                0,
            )
            .unwrap();
        let (response, trace) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(response, Response::Quote { .. }));
        let mut trace = trace.expect("trace rides along with the reply");
        trace.mark("write");
        trace.finish();
        assert_eq!(recorder.depth(), (0, 1));

        // The dump verb returns the ring as a Chrome trace document.
        let Response::Dump { trace: doc, .. } = ask(&handle, Request::Dump { id: 2 }) else {
            panic!("expected dump");
        };
        let v = pqos_telemetry::json::Json::parse(doc.trim()).expect("dump is JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());

        // Engine stages landed in the per-verb histograms.
        let snap = telemetry.snapshot().unwrap();
        for stage in ["parse", "queue", "batch", "compute", "write"] {
            let key =
                pqos_telemetry::labeled("rpc.stage_ns", &[("stage", stage), ("verb", "negotiate")]);
            assert_eq!(snap.histogram(&key).unwrap().count, 1, "{key}");
        }
        ask(&handle, Request::Shutdown { id: 3 });
        join.join().unwrap();
    }
}
