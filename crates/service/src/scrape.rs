//! Minimal HTTP client for the daemon's `/metrics` endpoint.
//!
//! `pqos-top` and `pqos-loadgen` both need to pull the exposition text
//! over a plain TCP socket without an HTTP library; this module is that
//! one shared GET. It speaks just enough HTTP/1.0 for the
//! [`metrics_http`](crate::metrics_http) server (and any real exporter
//! endpoint): send a request line + `Connection: close`, read to EOF,
//! split on the blank line, check the status code.

use pqos_telemetry::expo::{self, Sample};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Fetches `path` from `addr` and returns the response body, failing on
/// connect errors, timeouts, or non-200 statuses.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let target = addr
        .parse::<std::net::SocketAddr>()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let mut stream = TcpStream::connect_timeout(&target, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(std::io::Error::other(format!("HTTP status {status}")));
    }
    Ok(body.to_string())
}

/// Scrapes `GET /metrics` from `addr` and parses the exposition into
/// samples. Errors if the body is not valid Prometheus text format.
pub fn scrape_metrics(addr: &str, timeout: Duration) -> std::io::Result<Vec<Sample>> {
    let body = http_get(addr, "/metrics", timeout)?;
    expo::parse(&body).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response is not valid Prometheus exposition text",
        )
    })
}
