//! TCP front end: accept loop and per-connection relay threads.
//!
//! Each connection gets a *reader* thread (parses request lines, opens a
//! trace, submits to the engine) and a *writer* thread (drains the
//! connection's reply channel back onto the socket, then marks and
//! finishes each reply's trace). Neither touches shared state; the
//! engine's bounded queue is the only coupling, so a slow client can
//! stall only itself.
//!
//! Disconnect handling mirrors `pqos-doctor`'s broken-pipe policy: a peer
//! that closes its socket mid-stream is a *clean* disconnect — the writer
//! stops, the reader sees EOF (or an error) and stops, pending replies
//! are dropped. Malformed request lines (bad JSON, unknown verbs, invalid
//! UTF-8) earn a `bad_request` reply and the connection stays open.
//!
//! Shutdown is graceful: the `shutdown` verb makes the engine drain and
//! flush its journal, readers notice within one poll interval and stop,
//! a waker connection unblocks the accept loop, and [`serve`] writes the
//! configured exit artifacts (flight-recorder Chrome trace, final metrics
//! snapshot) before returning.

use crate::engine::{self, EngineConfig, EngineHandle, ReplySender};
use crate::flight::FlightRecorder;
use crate::metrics_http;
use crate::protocol::{ErrorCode, Request, Response};
use crate::record::TraceRecorder;
use pqos_core::session::NegotiationSession;
use pqos_predict::api::Predictor;
use pqos_telemetry::reqtrace::TraceMeta;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// How often parked readers check whether the daemon is draining.
const DRAIN_POLL: Duration = Duration::from_millis(200);

/// Everything [`serve`] needs beyond the protocol listener: engine
/// tuning plus the observability plane.
#[derive(Debug)]
pub struct ServerConfig {
    /// Engine-thread tuning.
    pub engine: EngineConfig,
    /// Pre-bound listener for the `/metrics` endpoint (`None` disables
    /// HTTP exposition; the registry still fills).
    pub metrics: Option<TcpListener>,
    /// Completed traces the flight recorder retains; `0` disables
    /// request tracing entirely.
    pub flight_capacity: usize,
    /// Where to write the flight recorder's Chrome trace when the daemon
    /// drains.
    pub flight_dump: Option<PathBuf>,
    /// Where to write the final metrics snapshot (JSON) when the daemon
    /// drains.
    pub metrics_dump: Option<PathBuf>,
    /// Record every answered request as a replayable trace (`--record`).
    pub record: Option<RecordConfig>,
}

/// Where and how to record a request trace: the destination path plus the
/// [`TraceMeta`] header describing the session (the daemon binary knows
/// the predictor and horizon; `serve` does not).
#[derive(Debug, Clone)]
pub struct RecordConfig {
    /// Trace destination (JSONL).
    pub path: PathBuf,
    /// Header describing the recording session's configuration.
    pub meta: TraceMeta,
}

/// Default ring size: enough to hold a full engine tick's worth of
/// requests plus context around it.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            metrics: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_dump: None,
            metrics_dump: None,
            record: None,
        }
    }
}

impl From<EngineConfig> for ServerConfig {
    fn from(engine: EngineConfig) -> Self {
        ServerConfig {
            engine,
            ..ServerConfig::default()
        }
    }
}

/// Serves `session` on `listener` until a client sends `shutdown`.
///
/// Blocks the calling thread for the daemon's lifetime. On return the
/// engine has drained, the telemetry journal is flushed, every connection
/// thread has been joined, and any configured exit dumps are on disk.
///
/// # Errors
///
/// Only binding-level failures (accepting on a dead listener) surface as
/// `Err`; per-connection I/O errors are handled as clean disconnects.
pub fn serve<P>(
    listener: TcpListener,
    session: NegotiationSession<P>,
    config: ServerConfig,
) -> std::io::Result<()>
where
    P: Predictor + Send + Sync + 'static,
{
    let local_addr = listener.local_addr()?;
    let telemetry = session.telemetry().clone();
    let recorder = if config.flight_capacity > 0 {
        FlightRecorder::new(config.flight_capacity, telemetry.clone())
    } else {
        FlightRecorder::disabled()
    };
    let trace_rec = match &config.record {
        Some(rec) => TraceRecorder::to_path(&rec.path, &rec.meta)?,
        None => TraceRecorder::disabled(),
    };
    // A panicking daemon must still leave a complete journal and flight
    // ring behind — those artifacts are the incident capture.
    pqos_telemetry::panichook::flush_on_panic(&telemetry);
    if let Some(path) = config.flight_dump.clone() {
        let panic_recorder = recorder.clone();
        pqos_telemetry::panichook::on_panic(move || {
            let _ = std::fs::write(&path, panic_recorder.dump_chrome());
        });
    }
    let (handle, engine_join) = engine::spawn(session, config.engine, recorder.clone(), trace_rec);
    let metrics_join = config.metrics.map(|metrics_listener| {
        metrics_http::spawn(metrics_listener, telemetry.clone(), handle.clone())
    });
    // The accept loop blocks in `accept`; once the engine drains, this
    // waker connection is what knocks it loose.
    let waker = std::thread::spawn(move || {
        let _ = engine_join.join();
        let _ = TcpStream::connect(local_addr);
    });
    let mut connections = Vec::new();
    let mut next_conn: u64 = 1;
    for stream in listener.incoming() {
        if handle.is_draining() {
            break;
        }
        let Ok(stream) = stream else {
            continue; // transient accept error; keep serving
        };
        let engine = handle.clone();
        let recorder = recorder.clone();
        let conn = next_conn;
        next_conn += 1;
        connections.push(std::thread::spawn(move || {
            serve_connection(stream, engine, recorder, conn)
        }));
    }
    for conn in connections {
        let _ = conn.join();
    }
    waker.join().expect("waker thread");
    if let Some(join) = metrics_join {
        let _ = join.join();
    }
    if let Some(path) = &config.flight_dump {
        std::fs::write(path, recorder.dump_chrome())?;
    }
    if let Some(path) = &config.metrics_dump {
        handle.refresh_gauges();
        if let Some(snapshot) = telemetry.snapshot() {
            std::fs::write(path, snapshot.to_json())?;
        }
    }
    Ok(())
}

/// Runs one connection to completion (EOF, error, or daemon drain).
fn serve_connection(stream: TcpStream, engine: EngineHandle, recorder: FlightRecorder, conn: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    let writer = std::thread::spawn(move || write_replies(write_half, &reply_rx));
    // A timeout, not blocking reads, so an idle connection still notices
    // the daemon draining and lets `serve` join it.
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    read_requests(stream, &engine, &reply_tx, &recorder, conn);
    drop(reply_tx); // writer exits once the engine's clones are gone too
    let _ = writer.join();
}

fn read_requests(
    stream: TcpStream,
    engine: &EngineHandle,
    reply: &ReplySender,
    recorder: &FlightRecorder,
    conn: u64,
) {
    let mut reader = BufReader::new(stream);
    // Raw bytes, not `read_line`: invalid UTF-8 must earn `bad_request`,
    // not kill the connection.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF: client is done
            Ok(_) if !line.ends_with(b"\n") => {
                // Partial line at a timeout boundary; keep accumulating.
                if engine.is_draining() {
                    break;
                }
            }
            Ok(_) => {
                dispatch_line(&line, engine, reply, recorder, conn);
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if engine.is_draining() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // peer reset or similar: clean disconnect
        }
    }
}

fn dispatch_line(
    raw: &[u8],
    engine: &EngineHandle,
    reply: &ReplySender,
    recorder: &FlightRecorder,
    conn: u64,
) {
    let arrived = Instant::now();
    let text = String::from_utf8_lossy(raw);
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    match Request::parse(text) {
        Ok(request) => {
            let mut trace = recorder.begin(request.verb(), conn, arrived);
            if let Some(t) = trace.as_mut() {
                t.mark("parse");
            }
            if let Err((refusal, trace)) = engine.submit(request, reply, trace, conn) {
                // Refusals still flow through the writer so the trace gets
                // its write stage and lands in the ring like any reply.
                if let Err(returned) = reply.send((refusal, trace)) {
                    if let Some(t) = returned.0 .1 {
                        t.abandon();
                    }
                }
            }
        }
        Err(parse_error) => {
            let _ = reply.send((
                Response::Error {
                    id: parse_error.id.unwrap_or(0),
                    code: ErrorCode::BadRequest,
                    detail: parse_error.detail.into(),
                },
                None,
            ));
        }
    }
}

fn write_replies(
    stream: TcpStream,
    replies: &Receiver<(Response, Option<crate::flight::TraceCtx>)>,
) {
    let mut out = BufWriter::new(stream);
    // Traces written since the last flush; their replies only count as
    // delivered (write stage ends) once the flush lands.
    let mut written = Vec::new();
    'relay: while let Ok(first) = replies.recv() {
        // A closed peer is a clean disconnect; stop relaying. Everything
        // already queued goes out under one flush — at high request rates
        // the engine answers in batches, and one syscall per batch instead
        // of one per response is a large share of the throughput budget.
        let mut batch = vec![first];
        while let Ok(next) = replies.try_recv() {
            batch.push(next);
        }
        for (response, trace) in batch {
            if writeln!(out, "{}", response.encode()).is_err() {
                if let Some(t) = trace {
                    t.abandon();
                }
                break 'relay;
            }
            if let Some(t) = trace {
                written.push(t);
            }
        }
        if out.flush().is_err() {
            break;
        }
        for mut trace in written.drain(..) {
            trace.mark("write");
            trace.finish();
        }
    }
    // Replies that never reached the socket: drop their traces from the
    // in-flight table instead of leaking them.
    for trace in written.drain(..) {
        trace.abandon();
    }
}
