//! TCP front end: accept loop and per-connection relay threads.
//!
//! Each connection gets a *reader* thread (parses request lines, submits
//! to the engine) and a *writer* thread (drains the connection's reply
//! channel back onto the socket). Neither touches shared state; the
//! engine's bounded queue is the only coupling, so a slow client can
//! stall only itself.
//!
//! Disconnect handling mirrors `pqos-doctor`'s broken-pipe policy: a peer
//! that closes its socket mid-stream is a *clean* disconnect — the writer
//! stops, the reader sees EOF (or an error) and stops, pending replies
//! are dropped. Malformed request lines (bad JSON, unknown verbs, invalid
//! UTF-8) earn a `bad_request` reply and the connection stays open.
//!
//! Shutdown is graceful: the `shutdown` verb makes the engine drain and
//! flush its journal, readers notice within one poll interval and stop,
//! and a waker connection unblocks the accept loop so [`serve`] returns.

use crate::engine::{self, EngineConfig, EngineHandle};
use crate::protocol::{ErrorCode, Request, Response};
use pqos_core::session::NegotiationSession;
use pqos_predict::api::Predictor;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// How often parked readers check whether the daemon is draining.
const DRAIN_POLL: Duration = Duration::from_millis(200);

/// Serves `session` on `listener` until a client sends `shutdown`.
///
/// Blocks the calling thread for the daemon's lifetime. On return the
/// engine has drained, the telemetry journal is flushed, and every
/// connection thread has been joined.
///
/// # Errors
///
/// Only binding-level failures (accepting on a dead listener) surface as
/// `Err`; per-connection I/O errors are handled as clean disconnects.
pub fn serve<P>(
    listener: TcpListener,
    session: NegotiationSession<P>,
    config: EngineConfig,
) -> std::io::Result<()>
where
    P: Predictor + Send + Sync + 'static,
{
    let local_addr = listener.local_addr()?;
    let (handle, engine_join) = engine::spawn(session, config);
    // The accept loop blocks in `accept`; once the engine drains, this
    // waker connection is what knocks it loose.
    let waker = std::thread::spawn(move || {
        let _ = engine_join.join();
        let _ = TcpStream::connect(local_addr);
    });
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if handle.is_draining() {
            break;
        }
        let Ok(stream) = stream else {
            continue; // transient accept error; keep serving
        };
        let engine = handle.clone();
        connections.push(std::thread::spawn(move || serve_connection(stream, engine)));
    }
    for conn in connections {
        let _ = conn.join();
    }
    waker.join().expect("waker thread");
    Ok(())
}

/// Runs one connection to completion (EOF, error, or daemon drain).
fn serve_connection(stream: TcpStream, engine: EngineHandle) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || write_replies(write_half, &reply_rx));
    // A timeout, not blocking reads, so an idle connection still notices
    // the daemon draining and lets `serve` join it.
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    read_requests(stream, &engine, &reply_tx);
    drop(reply_tx); // writer exits once the engine's clones are gone too
    let _ = writer.join();
}

fn read_requests(stream: TcpStream, engine: &EngineHandle, reply: &Sender<Response>) {
    let mut reader = BufReader::new(stream);
    // Raw bytes, not `read_line`: invalid UTF-8 must earn `bad_request`,
    // not kill the connection.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF: client is done
            Ok(_) if !line.ends_with(b"\n") => {
                // Partial line at a timeout boundary; keep accumulating.
                if engine.is_draining() {
                    break;
                }
            }
            Ok(_) => {
                dispatch_line(&line, engine, reply);
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if engine.is_draining() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // peer reset or similar: clean disconnect
        }
    }
}

fn dispatch_line(raw: &[u8], engine: &EngineHandle, reply: &Sender<Response>) {
    let text = String::from_utf8_lossy(raw);
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    match Request::parse(text) {
        Ok(request) => {
            if let Err(refusal) = engine.submit(request, reply) {
                let _ = reply.send(refusal);
            }
        }
        Err(parse_error) => {
            let _ = reply.send(Response::Error {
                id: parse_error.id.unwrap_or(0),
                code: ErrorCode::BadRequest,
                detail: parse_error.detail.into(),
            });
        }
    }
}

fn write_replies(stream: TcpStream, replies: &Receiver<Response>) {
    let mut out = BufWriter::new(stream);
    while let Ok(response) = replies.recv() {
        // A closed peer is a clean disconnect; stop relaying. Everything
        // already queued goes out under one flush — at high request rates
        // the engine answers in batches, and one syscall per batch instead
        // of one per response is a large share of the throughput budget.
        if writeln!(out, "{}", response.encode()).is_err() {
            break;
        }
        let mut more = true;
        while more {
            match replies.try_recv() {
                Ok(next) => {
                    if writeln!(out, "{}", next.encode()).is_err() {
                        return;
                    }
                }
                Err(_) => more = false,
            }
        }
        if out.flush().is_err() {
            break;
        }
    }
}
