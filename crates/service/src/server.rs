//! TCP front end: one nonblocking event loop owns every socket.
//!
//! The `pqos-net` loop accepts connections, frames JSON lines, and
//! enforces write backpressure; this module is its callback. A request
//! line is parsed, traced, and submitted to the engine with a
//! [`ReplySender`] that tags the reply with the connection's token and
//! wakes the loop; the loop relays completed replies onto their sockets
//! and finishes each request's trace once the bytes are flushed (the
//! watermark returned by `Ctx::send` pairs with `NetEvent::Flushed`).
//! No thread is spawned per connection — the old two-threads-per-client
//! relay needed ~200 threads for 100 clients; this plane needs one,
//! which is what makes six-figure request rates approachable.
//!
//! Disconnect handling mirrors `pqos-doctor`'s broken-pipe policy: a
//! peer that closes its socket mid-stream is a *clean* disconnect — its
//! unflushed replies and traces are abandoned, nothing else notices.
//! Malformed request lines (bad JSON, unknown verbs, invalid UTF-8)
//! earn a `bad_request` reply and the connection stays open. A peer
//! that stops reading is paused at the loop's high-water mark and
//! dropped at its hard cap, so one slow client cannot pin reply memory.
//!
//! Shutdown is graceful: the `shutdown` verb makes the engine drain and
//! flush its journal; a watcher thread wakes the loop when the engine
//! exits; the loop stops accepting, flushes every queued reply, and
//! [`serve`] writes the configured exit artifacts (flight-recorder
//! Chrome trace, final metrics snapshot) before returning.

use crate::engine::{self, EngineConfig, EngineHandle, ReplySender};
use crate::flight::{FlightRecorder, TraceCtx};
use crate::metrics_http;
use crate::protocol::{ErrorCode, Request, Response};
use crate::record::TraceRecorder;
use crate::shard::ShardedCore;
use pqos_core::session::NegotiationSession;
use pqos_net::{Ctx, EventLoop, NetConfig, NetEvent, Token};
use pqos_predict::api::Predictor;
use pqos_telemetry::reqtrace::TraceMeta;
use pqos_telemetry::{WindowStore, DEFAULT_WINDOW_CAPACITY};
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything [`serve`] needs beyond the protocol listener: engine
/// tuning plus the observability plane.
#[derive(Debug)]
pub struct ServerConfig {
    /// Engine-thread tuning.
    pub engine: EngineConfig,
    /// Pre-bound listener for the `/metrics` endpoint (`None` disables
    /// HTTP exposition; the registry still fills).
    pub metrics: Option<TcpListener>,
    /// Completed traces the flight recorder retains; `0` disables
    /// request tracing entirely.
    pub flight_capacity: usize,
    /// Where to write the flight recorder's Chrome trace when the daemon
    /// drains.
    pub flight_dump: Option<PathBuf>,
    /// Where to write the final metrics snapshot (JSON) when the daemon
    /// drains.
    pub metrics_dump: Option<PathBuf>,
    /// Record every answered request as a replayable trace (`--record`).
    pub record: Option<RecordConfig>,
    /// Width of one windowed-health-history sample in wall milliseconds
    /// (`0` disables the history plane: no sampler thread, and the
    /// `history` verb and `/history` route answer an empty document).
    pub history_window_ms: u64,
}

/// Where and how to record a request trace: the destination path plus the
/// [`TraceMeta`] header describing the session (the daemon binary knows
/// the predictor and horizon; `serve` does not).
#[derive(Debug, Clone)]
pub struct RecordConfig {
    /// Trace destination (JSONL).
    pub path: PathBuf,
    /// Header describing the recording session's configuration.
    pub meta: TraceMeta,
}

/// Default ring size: enough to hold a full engine tick's worth of
/// requests plus context around it.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Default health-history window width: one second per point, two
/// minutes of ring (`DEFAULT_WINDOW_CAPACITY` windows).
pub const DEFAULT_HISTORY_WINDOW_MS: u64 = 1000;

/// How often the history sampler rechecks the draining flag between
/// samples, so shutdown never waits out a wide window.
const HISTORY_POLL: Duration = Duration::from_millis(50);

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            metrics: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_dump: None,
            metrics_dump: None,
            record: None,
            history_window_ms: DEFAULT_HISTORY_WINDOW_MS,
        }
    }
}

impl From<EngineConfig> for ServerConfig {
    fn from(engine: EngineConfig) -> Self {
        ServerConfig {
            engine,
            ..ServerConfig::default()
        }
    }
}

/// Serves `session` on `listener` until a client sends `shutdown`.
///
/// Blocks the calling thread for the daemon's lifetime. On return the
/// engine has drained, the telemetry journal is flushed, the event loop
/// has flushed every queued reply, and any configured exit dumps are on
/// disk.
///
/// # Errors
///
/// Only listener-level failures (registering it with the readiness
/// driver) surface as `Err`; per-connection I/O errors are handled as
/// clean disconnects.
pub fn serve<P>(
    listener: TcpListener,
    session: NegotiationSession<P>,
    config: ServerConfig,
) -> std::io::Result<()>
where
    P: Predictor + Send + Sync + 'static,
{
    serve_core(listener, ShardedCore::single(session), config)
}

/// [`serve`] over a (possibly sharded) admission core — `pqos-qosd
/// --shards N` comes in here with an N-way core; the front end is
/// identical either way.
pub fn serve_core<P>(
    listener: TcpListener,
    core: ShardedCore<P>,
    mut config: ServerConfig,
) -> std::io::Result<()>
where
    P: Predictor + Send + Sync + 'static,
{
    let telemetry = core.telemetry().clone();
    // The windowed health history: one store shared by the sampler
    // thread (below), the engine's `history` verb, and the `/history`
    // HTTP route.
    let history = (config.history_window_ms > 0).then(|| {
        Arc::new(WindowStore::new(
            DEFAULT_WINDOW_CAPACITY,
            config.history_window_ms,
        ))
    });
    config.engine.history = history.clone();
    let recorder = if config.flight_capacity > 0 {
        FlightRecorder::new(config.flight_capacity, telemetry.clone())
    } else {
        FlightRecorder::disabled()
    };
    let trace_rec = match &config.record {
        Some(rec) => TraceRecorder::to_path(&rec.path, &rec.meta)?,
        None => TraceRecorder::disabled(),
    };
    // A panicking daemon must still leave a complete journal and flight
    // ring behind — those artifacts are the incident capture.
    pqos_telemetry::panichook::flush_on_panic(&telemetry);
    if let Some(path) = config.flight_dump.clone() {
        let panic_recorder = recorder.clone();
        pqos_telemetry::panichook::on_panic(move || {
            let _ = std::fs::write(&path, panic_recorder.dump_chrome());
        });
    }
    let event_loop = EventLoop::bind(listener, NetConfig::default())?;
    let waker = event_loop.waker();
    let engine_config = std::mem::take(&mut config.engine);
    let (handle, engine_join) =
        engine::spawn_core(core, engine_config, recorder.clone(), trace_rec);
    let metrics_join = config.metrics.take().map(|metrics_listener| {
        metrics_http::spawn(
            metrics_listener,
            telemetry.clone(),
            handle.clone(),
            history.clone(),
        )
    });
    // Wall-clock sampler: folds the registry into the window ring once
    // per window until the engine drains.
    let sampler_join = history.map(|store| {
        let sampler_telemetry = telemetry.clone();
        let sampler_handle = handle.clone();
        std::thread::Builder::new()
            .name("pqos-history".into())
            .spawn(move || {
                let period = Duration::from_millis(store.window_ms());
                let mut slept = Duration::ZERO;
                while !sampler_handle.is_draining() {
                    std::thread::sleep(HISTORY_POLL);
                    slept += HISTORY_POLL;
                    if slept >= period {
                        slept = Duration::ZERO;
                        sampler_handle.refresh_gauges();
                        store.sample(&sampler_telemetry);
                    }
                }
            })
            .expect("spawn history sampler thread")
    });
    // The loop sleeps in the readiness driver; when the engine drains
    // (shutdown verb served, journal flushed) this watcher is what
    // knocks it loose so it can stop accepting and flush out.
    let drain_waker = waker.clone();
    let drain_watch = std::thread::spawn(move || {
        let _ = engine_join.join();
        drain_waker.wake();
    });

    // Engine replies for every connection land here, tagged by token;
    // each send wakes the loop, whose Wake handler relays them.
    let (done_tx, completions) = std::sync::mpsc::channel::<(Token, Response, Option<TraceCtx>)>();
    let mut conns: HashMap<Token, ConnState> = HashMap::new();
    let loop_result = event_loop.run(|event, ctx| match event {
        NetEvent::Opened(token) => {
            conns.insert(
                token,
                ConnState {
                    reply: ReplySender::net(done_tx.clone(), token, waker.clone()),
                    pending: Vec::new(),
                },
            );
        }
        NetEvent::Line(token, line) => {
            dispatch_line(line, token, &handle, &recorder, &mut conns, ctx);
        }
        NetEvent::Wake | NetEvent::Tick => {
            relay_completions(&completions, &mut conns, ctx);
            if handle.is_draining() && !ctx.is_draining() {
                ctx.shutdown();
            }
        }
        NetEvent::Flushed(token, flushed_total) => {
            if let Some(state) = conns.get_mut(&token) {
                // Watermarks are monotonic per connection: everything
                // at or under the flushed total is on the wire now.
                let delivered = state.pending.partition_point(|(w, _)| *w <= flushed_total);
                for (_, mut trace) in state.pending.drain(..delivered) {
                    trace.mark("write");
                    trace.finish();
                }
            }
        }
        NetEvent::Closed(token) => {
            if let Some(state) = conns.remove(&token) {
                for (_, trace) in state.pending {
                    trace.abandon();
                }
            }
        }
    });
    // The loop is gone: replies still queued can never reach a socket,
    // so drop their traces from the in-flight table.
    while let Ok((_, _, trace)) = completions.try_recv() {
        if let Some(t) = trace {
            t.abandon();
        }
    }
    let _ = drain_watch.join();
    if let Some(join) = metrics_join {
        let _ = join.join();
    }
    if let Some(join) = sampler_join {
        let _ = join.join();
    }
    if let Some(path) = &config.flight_dump {
        std::fs::write(path, recorder.dump_chrome())?;
    }
    if let Some(path) = &config.metrics_dump {
        handle.refresh_gauges();
        if let Some(snapshot) = telemetry.snapshot() {
            std::fs::write(path, snapshot.to_json())?;
        }
    }
    loop_result
}

/// Per-connection bookkeeping the callback keeps alongside the loop's
/// own socket state.
struct ConnState {
    /// The reply lane requests from this connection carry into the
    /// engine.
    reply: ReplySender,
    /// Replies written to the socket buffer but not yet flushed:
    /// `(watermark, trace)`, in watermark order. Their traces finish
    /// when `NetEvent::Flushed` passes the watermark.
    pending: Vec<(u64, TraceCtx)>,
}

/// Parses one request line and routes it into the engine; refusals and
/// parse errors are answered inline (we are already on the loop thread).
fn dispatch_line(
    raw: &[u8],
    token: Token,
    engine: &EngineHandle,
    recorder: &FlightRecorder,
    conns: &mut HashMap<Token, ConnState>,
    ctx: &mut Ctx<'_>,
) {
    let arrived = Instant::now();
    let text = String::from_utf8_lossy(raw);
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    match Request::parse(text) {
        Ok(request) => {
            let mut trace = recorder.begin(request.verb(), token, arrived);
            if let Some(t) = trace.as_mut() {
                t.mark("parse");
            }
            let Some(state) = conns.get(&token) else {
                if let Some(t) = trace {
                    t.abandon();
                }
                return;
            };
            let reply = state.reply.clone();
            if let Err((refusal, trace)) = engine.submit(request, &reply, trace, token) {
                deliver(ctx, conns, token, &refusal, trace);
            }
        }
        Err(parse_error) => {
            let refusal = Response::Error {
                id: parse_error.id.unwrap_or(0),
                code: ErrorCode::BadRequest,
                detail: parse_error.detail.into(),
            };
            deliver(ctx, conns, token, &refusal, None);
        }
    }
}

/// Drains the completion queue, writing each reply to its connection.
fn relay_completions(
    completions: &Receiver<(Token, Response, Option<TraceCtx>)>,
    conns: &mut HashMap<Token, ConnState>,
    ctx: &mut Ctx<'_>,
) {
    while let Ok((token, response, trace)) = completions.try_recv() {
        deliver(ctx, conns, token, &response, trace);
    }
}

/// Queues one encoded reply on the connection. If the bytes were
/// accepted, the trace parks against the returned watermark until the
/// flush notification; a gone connection abandons it.
fn deliver(
    ctx: &mut Ctx<'_>,
    conns: &mut HashMap<Token, ConnState>,
    token: Token,
    response: &Response,
    trace: Option<TraceCtx>,
) {
    let mut line = response.encode();
    line.push('\n');
    match ctx.send(token, line.as_bytes()) {
        Some(watermark) => {
            if let Some(t) = trace {
                match conns.get_mut(&token) {
                    Some(state) => state.pending.push((watermark, t)),
                    None => t.abandon(),
                }
            }
        }
        None => {
            if let Some(t) = trace {
                t.abandon();
            }
        }
    }
}
