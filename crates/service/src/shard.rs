//! The sharded admission plane: N single-writer engine shards behind one
//! deterministic router.
//!
//! A [`ShardedCore`] owns N [`NegotiationSession`]s, each holding a
//! contiguous slice of the cluster's nodes in its own
//! [`CachedReservationBook`]. Every book is both narrower (fewer mask
//! words) and shallower (fewer reservations) than the single-plane book,
//! so per-quote probe cost drops roughly by the shard count — that is the
//! whole scaling story, and it needs no extra threads.
//!
//! Routing is deterministic, which is what keeps sharded runs replayable:
//!
//! - **Narrow jobs** (`size` ≤ the widest shard) probe shard book
//!   snapshots in rotation from their anchor shard (`job mod N`),
//!   read-only and cache-warming ([`NegotiationSession::probe_batch`]).
//!   A shard that can start the job *immediately* wins on the spot — no
//!   shard can start earlier — so a lightly loaded cluster pays one probe
//!   of one small book per quote, and anchored rotation keeps held
//!   quotes spread across the books. Only when no shard can start now
//!   does the job pay the full rotation and take the earliest start seen.
//!   The winning probe's outcome then *becomes* the real quote
//!   ([`NegotiationSession::quote_batch_precomputed`]): the shard
//!   journals, samples parity, and records the promise from the outcome
//!   the probe already negotiated, never re-walking its book — the book
//!   cannot have moved between a probe and its quote inside one batch.
//!   If every shard rejects, the anchor shard journals the rejection so
//!   the merged journal still shows one verdict per submission.
//! - **Wide jobs** (`size` wider than any shard) are negotiated by the
//!   cross-shard coordinator against a [`MergedAvailabilityView`] — a
//!   read-only composition of every shard book under one global node
//!   namespace. Accepting a wide quote is *two-phase*: the coordinator
//!   slices the quoted partition along shard boundaries and reserves each
//!   slice in its shard's book ([`NegotiationSession::reserve_slice`]);
//!   any conflict releases the slices already taken and expires the quote
//!   (see DESIGN.md, "Two-phase cross-shard admission").
//!
//! Each shard journals through its own telemetry with a global
//! `node_base` offset; the coordinator journals wide-job lifecycles
//! through its own. `pqos_telemetry::merge::merge_journals` recombines
//! them into the one journal `pqos-doctor check`, the promise audit and
//! replay parity consume.

use pqos_cluster::node::NodeId;
use pqos_cluster::partition::Partition;
use pqos_core::config::SimConfig;
use pqos_core::negotiate::{negotiate_batch, NegotiationOutcome, NegotiationRequest};
use pqos_core::session::{
    AcceptError, AdmissionRequest, CancelError, HeldQuote, NegotiationSession, PromiseLedger,
    PromiseStats, QuoteDecision, SessionOp, SessionOpOutcome, SessionStats, SessionStatus,
};
use pqos_predict::api::Predictor;
use pqos_sched::cache::QuoteCacheStats;
use pqos_sched::reservation::{AvailabilityView, ReservationId, Slot};
use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
use pqos_telemetry::{PromiseVerdict, SinkHealth, Telemetry, TelemetryEvent};
use pqos_workload::job::JobId;
use std::collections::{BTreeSet, HashMap};

/// The node span one shard owns: global indices `[base, base + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpan {
    /// Global index of the shard's first node.
    pub base: u32,
    /// Nodes in the shard.
    pub width: u32,
}

/// Splits `cluster_size` nodes into `shards` contiguous spans whose
/// widths differ by at most one (the first `cluster_size % shards` spans
/// get the extra node). Every layer that builds or replays a sharded
/// deployment derives the partitioning from this one function, so a
/// recorded `(cluster_size, shards)` pair always reconstructs the same
/// machine.
///
/// # Panics
///
/// When `shards` is zero or exceeds `cluster_size` (a shard must own at
/// least one node).
pub fn partition_spans(cluster_size: u32, shards: u32) -> Vec<ShardSpan> {
    assert!(shards >= 1, "need at least one shard");
    assert!(
        shards <= cluster_size,
        "every shard must own at least one node"
    );
    let width = cluster_size / shards;
    let extra = cluster_size % shards;
    let mut spans = Vec::with_capacity(shards as usize);
    let mut base = 0;
    for k in 0..shards {
        let w = width + u32::from(k < extra);
        spans.push(ShardSpan { base, width: w });
        base += w;
    }
    spans
}

/// A read-only [`AvailabilityView`] over every shard book at once, under
/// the global node namespace (shard-local index + shard base). The wide-
/// job coordinator negotiates against this exactly as a session
/// negotiates against its own book, so wide quotes are real quotes:
/// earliest-slot enumeration, placement scoring and failure-probability
/// pricing all run unchanged.
pub struct MergedAvailabilityView<'a> {
    books: Vec<&'a (dyn AvailabilityView + Sync)>,
    bases: Vec<u32>,
    widths: Vec<u32>,
    total: u32,
}

impl<'a> MergedAvailabilityView<'a> {
    /// Composes `books` (in shard order) into one view; `bases` are the
    /// global indices of each book's first node.
    pub fn new(books: Vec<&'a (dyn AvailabilityView + Sync)>, bases: Vec<u32>) -> Self {
        let widths: Vec<u32> = books.iter().map(|b| b.cluster_size()).collect();
        let total = widths.iter().sum();
        MergedAvailabilityView {
            books,
            bases,
            widths,
            total,
        }
    }
}

impl AvailabilityView for MergedAvailabilityView<'_> {
    fn cluster_size(&self) -> u32 {
        self.total
    }

    fn free_nodes_during(&self, window: TimeWindow, exclude: &[NodeId]) -> Vec<NodeId> {
        // Shards are contiguous and ascending, and each book returns its
        // free nodes sorted, so concatenation is already globally sorted.
        let mut free = Vec::new();
        for ((book, &base), &width) in self.books.iter().zip(&self.bases).zip(&self.widths) {
            let local: Vec<NodeId> = exclude
                .iter()
                .filter(|n| {
                    let i = n.as_u32();
                    i >= base && i < base + width
                })
                .map(|n| NodeId::new(n.as_u32() - base))
                .collect();
            free.extend(
                book.free_nodes_during(window, &local)
                    .into_iter()
                    .map(|n| NodeId::new(n.as_u32() + base)),
            );
        }
        free
    }

    fn change_points(&self, from: SimTime) -> Vec<SimTime> {
        let mut points: Vec<SimTime> = self
            .books
            .iter()
            .flat_map(|b| b.change_points(from))
            .collect();
        points.sort_unstable();
        points.dedup();
        points
    }

    fn earliest_slots(
        &self,
        size: u32,
        duration: SimDuration,
        from: SimTime,
        exclude: &[NodeId],
        max_slots: usize,
    ) -> Vec<Slot> {
        let mut slots = Vec::new();
        if size > self.total || max_slots == 0 {
            return slots;
        }
        for start in self.change_points(from) {
            let window = TimeWindow::new(start, start + duration);
            let free = self.free_nodes_during(window, exclude);
            if free.len() as u32 >= size {
                slots.push(Slot { start, free });
                if slots.len() >= max_slots {
                    break;
                }
            }
        }
        slots
    }
}

/// One routed entry of a quote batch: original batch index, the request,
/// and — for freshly probed jobs — the outcome the winning probe already
/// negotiated (`Some(None)` means every shard rejected it). Sticky
/// renegotiations carry `None` and negotiate fresh on their shard.
type RoutedQuote = (
    usize,
    (JobId, AdmissionRequest),
    Option<Option<NegotiationOutcome>>,
);

/// Where a job's lifecycle lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Owned end-to-end by one shard's session.
    Shard(usize),
    /// Owned by the cross-shard wide-job coordinator.
    Wide,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WidePhase {
    Quoted,
    Accepted,
    Running,
    Done,
    Cancelled,
}

#[derive(Debug, Clone)]
struct WideJob {
    phase: WidePhase,
    held: HeldQuote,
    /// One booked slice per shard the partition touches.
    slices: Vec<(usize, ReservationId)>,
}

/// The cross-shard coordinator: owns the lifecycle of jobs wider than any
/// shard. It mirrors the session's bookkeeping — its own journal, timer
/// set, promise ledger and counters — but books capacity as per-shard
/// slices instead of one reservation.
struct Wide<P> {
    predictor: P,
    telemetry: Telemetry,
    /// The single-plane config with `cluster_size` set to the full
    /// machine; wide negotiation parameters come from here.
    config: SimConfig,
    jobs: HashMap<JobId, WideJob>,
    /// (instant, class, job): class 0 = completion, 1 = start, matching
    /// the session's release-before-claim ordering at an instant.
    timers: BTreeSet<(SimTime, u8, JobId)>,
    stats: SessionStats,
    promises: PromiseLedger,
    now: SimTime,
    quote_horizon: Option<SimDuration>,
}

struct Shard<P> {
    session: NegotiationSession<P>,
    base: u32,
    width: u32,
}

struct Sharded<P> {
    shards: Vec<Shard<P>>,
    wide: Wide<P>,
    routes: HashMap<JobId, Route>,
    max_width: u32,
    total: u32,
    main: Telemetry,
    /// Requests routed per lane in the most recent `quote_batch` (index
    /// N = the wide lane); the engine reports these as per-shard depth.
    routed_last: Vec<u64>,
    /// Cumulative requests routed per lane since startup.
    routed_total: Vec<u64>,
}

enum Plane<P> {
    /// One session, zero routing overhead: the exact single-plane path.
    Single(Box<NegotiationSession<P>>),
    Sharded(Box<Sharded<P>>),
}

/// The admission core the engine thread drives: either one
/// [`NegotiationSession`] (pure delegation — the single-shard hot path is
/// untouched) or N shard sessions plus the wide-job coordinator. The
/// public surface mirrors the session's, so the engine and the replay
/// driver are plane-agnostic.
pub struct ShardedCore<P> {
    plane: Plane<P>,
}

impl<P: Predictor + Sync> ShardedCore<P> {
    /// Wraps one session: the single-plane core. Every call delegates
    /// directly, so this is byte-for-byte the pre-sharding behaviour.
    pub fn single(session: NegotiationSession<P>) -> Self {
        ShardedCore {
            plane: Plane::Single(Box::new(session)),
        }
    }

    /// Builds an N-shard core. `sessions` are the per-shard sessions in
    /// shard order; each must have been constructed over its
    /// [`partition_spans`] width with the matching
    /// [`NegotiationSession::node_base`], journaling into its own
    /// telemetry. `wide_predictor` scores wide-job quotes over the full
    /// cluster; `coordinator` is the wide-job journal; `main` is the
    /// metrics registry the engine publishes into.
    ///
    /// # Panics
    ///
    /// When `sessions` is empty.
    pub fn sharded(
        sessions: Vec<NegotiationSession<P>>,
        wide_predictor: P,
        coordinator: Telemetry,
        main: Telemetry,
    ) -> Self {
        assert!(!sessions.is_empty(), "need at least one shard");
        let mut shards = Vec::with_capacity(sessions.len());
        let mut base = 0u32;
        for session in sessions {
            let width = session.book().cluster_size();
            shards.push(Shard {
                session,
                base,
                width,
            });
            base += width;
        }
        let total = base;
        let max_width = shards.iter().map(|s| s.width).max().unwrap_or(0);
        let mut config = shards[0].session.config().clone();
        config.cluster_size = total;
        let lanes = shards.len() + 1;
        ShardedCore {
            plane: Plane::Sharded(Box::new(Sharded {
                shards,
                wide: Wide {
                    predictor: wide_predictor,
                    telemetry: coordinator,
                    config,
                    jobs: HashMap::new(),
                    timers: BTreeSet::new(),
                    stats: SessionStats::default(),
                    promises: PromiseLedger::default(),
                    now: SimTime::ZERO,
                    quote_horizon: None,
                },
                routes: HashMap::new(),
                max_width,
                total,
                main,
                routed_last: vec![0; lanes],
                routed_total: vec![0; lanes],
            })),
        }
    }

    /// Applies the parity re-check sampling cadence to every shard (the
    /// engine sets this from its own config, exactly as it does for a
    /// single session).
    pub fn parity_sample(self, every: u64) -> Self {
        match self.plane {
            Plane::Single(s) => ShardedCore::single(s.parity_sample(every)),
            Plane::Sharded(mut inner) => {
                inner.shards = inner
                    .shards
                    .into_iter()
                    .map(|s| Shard {
                        session: s.session.parity_sample(every),
                        base: s.base,
                        width: s.width,
                    })
                    .collect();
                ShardedCore {
                    plane: Plane::Sharded(inner),
                }
            }
        }
    }

    /// Applies a quote horizon to every shard and to the wide-job
    /// coordinator (see [`NegotiationSession::quote_horizon`]).
    pub fn quote_horizon(self, horizon: SimDuration) -> Self {
        match self.plane {
            Plane::Single(s) => ShardedCore::single(s.quote_horizon(horizon)),
            Plane::Sharded(mut inner) => {
                inner.shards = inner
                    .shards
                    .into_iter()
                    .map(|s| Shard {
                        session: s.session.quote_horizon(horizon),
                        base: s.base,
                        width: s.width,
                    })
                    .collect();
                inner.wide.quote_horizon = Some(horizon);
                ShardedCore {
                    plane: Plane::Sharded(inner),
                }
            }
        }
    }

    /// Number of engine shards (1 for the single plane).
    pub fn shard_count(&self) -> usize {
        match &self.plane {
            Plane::Single(_) => 1,
            Plane::Sharded(inner) => inner.shards.len(),
        }
    }

    /// The telemetry handle the engine publishes metrics through: the
    /// session's own for the single plane, the dedicated metrics registry
    /// for the sharded plane (shard journals are journal-only).
    pub fn telemetry(&self) -> &Telemetry {
        match &self.plane {
            Plane::Single(s) => s.telemetry(),
            Plane::Sharded(inner) => &inner.main,
        }
    }

    /// The telemetry handle SLO alerts are journaled through: the
    /// session's own for the single plane, the wide-job coordinator's
    /// for the sharded plane (the coordinator journal is part of the
    /// merged journal, so alert lines survive `merge_journals`; the
    /// metrics registry is journal-less and would drop them).
    pub fn alert_telemetry(&self) -> &Telemetry {
        match &self.plane {
            Plane::Single(s) => s.telemetry(),
            Plane::Sharded(inner) => &inner.wide.telemetry,
        }
    }

    /// Journal sink health aggregated across every plane's telemetry:
    /// the single session's own, or the N shard journals plus the
    /// wide-job coordinator's. `status` reports these totals, so a
    /// sharded daemon's event counts mean the same thing a single
    /// plane's do.
    pub fn sink_health(&self) -> SinkHealth {
        match &self.plane {
            Plane::Single(s) => s.telemetry().sink_health(),
            Plane::Sharded(inner) => {
                let mut total = SinkHealth::default();
                let healths = inner
                    .shards
                    .iter()
                    .map(|s| s.session.telemetry().sink_health())
                    .chain([inner.wide.telemetry.sink_health()]);
                for h in healths {
                    total.events_written += h.events_written;
                    total.ring_dropped += h.ring_dropped;
                    total.write_errors += h.write_errors;
                }
                total
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        match &self.plane {
            Plane::Single(s) => s.now(),
            Plane::Sharded(inner) => inner.wide.now,
        }
    }

    /// Advances virtual time on every shard and the wide coordinator,
    /// firing due starts and completions into their journals. Wide
    /// timers fire first so a completing wide job's slices are released
    /// before any later bookkeeping at the same instant.
    pub fn advance_to(&mut self, to: SimTime) {
        match &mut self.plane {
            Plane::Single(s) => s.advance_to(to),
            Plane::Sharded(inner) => inner.advance_to(to),
        }
    }

    /// Quotes a batch of admission requests (ids engine-assigned and
    /// fresh), returning decisions in request order. See the module docs
    /// for the routing rules.
    pub fn quote_batch(
        &mut self,
        requests: &[(JobId, AdmissionRequest)],
        threads: usize,
    ) -> Vec<QuoteDecision> {
        match &mut self.plane {
            Plane::Single(s) => s.quote_batch(requests, threads),
            Plane::Sharded(inner) => inner.quote_batch(requests, threads),
        }
    }

    /// Commits a held quote (two-phase for wide jobs).
    pub fn accept(&mut self, id: JobId) -> Result<HeldQuote, AcceptError> {
        match &mut self.plane {
            Plane::Single(s) => s.accept(id),
            Plane::Sharded(inner) => inner.accept(id),
        }
    }

    /// Withdraws a quoted or accepted (not yet started) job.
    pub fn cancel(&mut self, id: JobId) -> Result<(), CancelError> {
        match &mut self.plane {
            Plane::Single(s) => s.cancel(id),
            Plane::Sharded(inner) => inner.cancel(id),
        }
    }

    /// Aggregated status across every shard and the coordinator.
    /// `occupied_nodes` and `reservations` sum shard books (wide slices
    /// live there); a wide job therefore counts one reservation per shard
    /// it spans. `worst_residual_milli` is the worst residual across the
    /// per-lane ledgers.
    pub fn status(&self) -> SessionStatus {
        match &self.plane {
            Plane::Single(s) => s.status(),
            Plane::Sharded(inner) => inner.status(),
        }
    }

    /// Per-shard status snapshots (one entry for the single plane).
    pub fn shard_statuses(&self) -> Vec<SessionStatus> {
        match &self.plane {
            Plane::Single(s) => vec![s.status()],
            Plane::Sharded(inner) => inner.shards.iter().map(|s| s.session.status()).collect(),
        }
    }

    /// Per-shard quote-cache counters (one entry for the single plane).
    pub fn shard_cache_stats(&self) -> Vec<QuoteCacheStats> {
        match &self.plane {
            Plane::Single(s) => vec![s.quote_cache_stats()],
            Plane::Sharded(inner) => inner
                .shards
                .iter()
                .map(|s| s.session.quote_cache_stats())
                .collect(),
        }
    }

    /// Requests routed per lane in the most recent quote batch; index
    /// `shard_count()` is the wide-coordinator lane. Empty for the single
    /// plane.
    pub fn routed_last(&self) -> &[u64] {
        match &self.plane {
            Plane::Single(_) => &[],
            Plane::Sharded(inner) => &inner.routed_last,
        }
    }

    /// Cumulative requests routed per lane since startup (wide lane
    /// last). Empty for the single plane.
    pub fn routed_total(&self) -> &[u64] {
        match &self.plane {
            Plane::Single(_) => &[],
            Plane::Sharded(inner) => &inner.routed_total,
        }
    }

    /// Jobs currently quoted, accepted or running across all lanes.
    pub fn live_jobs(&self) -> usize {
        match &self.plane {
            Plane::Single(s) => s.live_jobs(),
            Plane::Sharded(inner) => {
                let shard_live: usize = inner.shards.iter().map(|s| s.session.live_jobs()).sum();
                let wide_live = inner
                    .wide
                    .jobs
                    .values()
                    .filter(|j| {
                        matches!(
                            j.phase,
                            WidePhase::Quoted | WidePhase::Accepted | WidePhase::Running
                        )
                    })
                    .count();
                shard_live + wide_live
            }
        }
    }

    /// Aggregated promise-calibration counters.
    pub fn promise_stats(&self) -> PromiseStats {
        match &self.plane {
            Plane::Single(s) => s.promise_stats(),
            Plane::Sharded(inner) => {
                let mut lanes: Vec<PromiseStats> = inner
                    .shards
                    .iter()
                    .map(|s| s.session.promise_stats())
                    .collect();
                lanes.push(inner.wide.promises.stats());
                sum_promises(&lanes)
            }
        }
    }

    /// Aggregated quote-cache counters across every shard book.
    pub fn quote_cache_stats(&self) -> QuoteCacheStats {
        match &self.plane {
            Plane::Single(s) => s.quote_cache_stats(),
            Plane::Sharded(inner) => {
                let mut sum = QuoteCacheStats::default();
                for s in &inner.shards {
                    let c = s.session.quote_cache_stats();
                    sum.hits += c.hits;
                    sum.misses += c.misses;
                    sum.profile_rebuilds += c.profile_rebuilds;
                    sum.entries_invalidated += c.entries_invalidated;
                }
                sum
            }
        }
    }

    /// Flushes every journal (shards, coordinator, metrics registry).
    pub fn flush(&self) {
        match &self.plane {
            Plane::Single(s) => s.flush(),
            Plane::Sharded(inner) => {
                for s in &inner.shards {
                    s.session.flush();
                }
                inner.wide.telemetry.flush();
                inner.main.flush();
            }
        }
    }

    /// Applies one replayable [`SessionOp`], exactly as
    /// [`NegotiationSession::apply`] does for a single session; replaying
    /// a sharded recording drives the same plane shape through this.
    pub fn apply(&mut self, op: &SessionOp, threads: usize) -> SessionOpOutcome {
        match op {
            SessionOp::AdvanceTo(to) => {
                self.advance_to(*to);
                SessionOpOutcome::Advanced(self.now())
            }
            SessionOp::QuoteBatch(requests) => {
                SessionOpOutcome::Quotes(self.quote_batch(requests, threads))
            }
            SessionOp::Accept(id) => SessionOpOutcome::Accepted(self.accept(*id)),
            SessionOp::Cancel(id) => SessionOpOutcome::Cancelled(self.cancel(*id)),
        }
    }
}

/// Fieldwise sum of per-lane lifecycle counters.
fn sum_stats(lanes: &[SessionStats]) -> SessionStats {
    let mut sum = SessionStats::default();
    for s in lanes {
        sum.quoted += s.quoted;
        sum.rejected += s.rejected;
        sum.accepted += s.accepted;
        sum.expired += s.expired;
        sum.cancelled += s.cancelled;
        sum.started += s.started;
        sum.completed += s.completed;
        sum.parity_checked += s.parity_checked;
        sum.parity_violations += s.parity_violations;
    }
    sum
}

/// Sums promise counters; the worst residual is the residual of largest
/// magnitude across the lanes (each lane bins its own promises, so this
/// is the worst calibration error any lane observed).
fn sum_promises(lanes: &[PromiseStats]) -> PromiseStats {
    let mut sum = PromiseStats::default();
    for p in lanes {
        sum.made += p.made;
        sum.kept += p.kept;
        sum.broken += p.broken;
        sum.cancelled += p.cancelled;
        if p.worst_residual_milli.abs() > sum.worst_residual_milli.abs() {
            sum.worst_residual_milli = p.worst_residual_milli;
        }
    }
    sum
}

impl<P: Predictor + Sync> Sharded<P> {
    fn advance_to(&mut self, to: SimTime) {
        while let Some(&(when, class, job)) = self.wide.timers.iter().next() {
            if when > to {
                break;
            }
            self.wide.timers.remove(&(when, class, job));
            match class {
                0 => self.complete_wide(job, when),
                _ => self.start_wide(job, when),
            }
        }
        self.wide.now = self.wide.now.max(to);
        for shard in &mut self.shards {
            shard.session.advance_to(to);
        }
    }

    fn quote_batch(
        &mut self,
        requests: &[(JobId, AdmissionRequest)],
        threads: usize,
    ) -> Vec<QuoteDecision> {
        let lanes = self.shards.len() + 1;
        self.routed_last = vec![0; lanes];
        let mut decisions: Vec<Option<QuoteDecision>> = vec![None; requests.len()];

        // Split the batch into lanes. Jobs with a known route stay on it
        // (renegotiation must reach the journal already holding the id's
        // lifecycle); new narrow jobs are probed below; new wide jobs go
        // to the coordinator. Probed entries carry the winning probe's
        // outcome so the shard admits it without negotiating again;
        // sticky entries (`None`) negotiate fresh on their shard.
        let mut per_shard: Vec<Vec<RoutedQuote>> = vec![Vec::new(); self.shards.len()];
        let mut wide_lane: Vec<(usize, (JobId, AdmissionRequest))> = Vec::new();
        let mut to_probe: Vec<(usize, (JobId, AdmissionRequest))> = Vec::new();
        for (i, &(id, req)) in requests.iter().enumerate() {
            match self.routes.get(&id) {
                Some(Route::Shard(k)) => per_shard[*k].push((i, (id, req), None)),
                Some(Route::Wide) => wide_lane.push((i, (id, req))),
                None if req.size > self.max_width => {
                    self.routes.insert(id, Route::Wide);
                    wide_lane.push((i, (id, req)));
                }
                None => to_probe.push((i, (id, req))),
            }
        }

        // Probe shards in rotation from each job's anchor (`id mod N`)
        // with the still-unrouted subset of the batch. A request some
        // shard can start *right now* stops probing there — no shard can
        // start earlier — so under light load one probe of one small
        // book replaces a scan of every shard; that is where the
        // per-quote cost drops by the shard count. Starting the rotation
        // at the anchor instead of shard 0 spreads held quotes across
        // the books, so no shard becomes the hot one every other probe
        // must wade through. Requests no shard can start immediately
        // take the earliest start seen over the full rotation (ties to
        // the first shard probed). Probes are read-only and warm the
        // winner's quote cache.
        if !to_probe.is_empty() {
            let n = self.shards.len();
            let mut resolved: Vec<Option<(usize, Option<NegotiationOutcome>)>> =
                (0..to_probe.len()).map(|_| None).collect();
            let mut best: Vec<Option<(SimTime, usize, NegotiationOutcome)>> =
                (0..to_probe.len()).map(|_| None).collect();
            let mut unresolved: Vec<usize> = (0..to_probe.len()).collect();
            for pass in 0..n {
                if unresolved.is_empty() {
                    break;
                }
                let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
                for &j in &unresolved {
                    let id = to_probe[j].1 .0;
                    by_shard[(id.as_u64() as usize + pass) % n].push(j);
                }
                let mut still = Vec::with_capacity(unresolved.len());
                for (k, group) in by_shard.iter().enumerate() {
                    if group.is_empty() {
                        continue;
                    }
                    let now = self.shards[k].session.now();
                    let probe_reqs: Vec<AdmissionRequest> =
                        group.iter().map(|&j| to_probe[j].1 .1).collect();
                    let outcomes = self.shards[k].session.probe_outcomes(&probe_reqs, threads);
                    for (&j, outcome) in group.iter().zip(outcomes) {
                        match outcome {
                            Some(o) if o.accepted.start <= now => {
                                resolved[j] = Some((k, Some(o)));
                            }
                            Some(o) => {
                                let t = o.accepted.start;
                                if best[j].as_ref().is_none_or(|(bt, _, _)| t < *bt) {
                                    best[j] = Some((t, k, o));
                                }
                                still.push(j);
                            }
                            None => still.push(j),
                        }
                    }
                }
                unresolved = still;
            }
            // Routes land in batch order regardless of which pass
            // resolved them, so each shard journals its submissions in
            // the same order the full scan would have.
            for (j, &(i, (id, req))) in to_probe.iter().enumerate() {
                let (k, outcome) = match (resolved[j].take(), best[j].take()) {
                    (Some((k, o)), _) => (k, o),
                    (None, Some((_, k, o))) => (k, Some(o)),
                    // Every shard rejects: the anchor shard journals the
                    // submission + rejection so the verdict exists once.
                    (None, None) => ((id.as_u64() % n as u64) as usize, None),
                };
                self.routes.insert(id, Route::Shard(k));
                per_shard[k].push((i, (id, req), Some(outcome)));
            }
        }

        // One real quote batch per shard, in shard order; each journals
        // its own submissions and rejections. Probed entries reuse the
        // outcome their winning probe already negotiated — the book has
        // not moved since the probe, so re-deriving it would only repeat
        // the same walk; sticky renegotiations negotiate fresh here.
        for (k, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.routed_last[k] += group.len() as u64;
            self.routed_total[k] += group.len() as u64;
            let fresh: Vec<AdmissionRequest> = group
                .iter()
                .filter(|(_, _, outcome)| outcome.is_none())
                .map(|&(_, (_, req), _)| req)
                .collect();
            let mut fresh_outcomes = if fresh.is_empty() {
                Vec::new()
            } else {
                self.shards[k].session.probe_outcomes(&fresh, threads)
            }
            .into_iter();
            let mut batch = Vec::with_capacity(group.len());
            let mut outcomes = Vec::with_capacity(group.len());
            let mut slots = Vec::with_capacity(group.len());
            for (i, pair, outcome) in group {
                slots.push(i);
                batch.push(pair);
                outcomes.push(match outcome {
                    Some(o) => o,
                    None => fresh_outcomes
                        .next()
                        .expect("one fresh outcome per sticky request"),
                });
            }
            let shard_decisions = self.shards[k]
                .session
                .quote_batch_precomputed(&batch, outcomes, threads);
            for (i, decision) in slots.into_iter().zip(shard_decisions) {
                decisions[i] = Some(decision);
            }
        }

        // Wide lane: negotiate against the merged view of every book.
        if !wide_lane.is_empty() {
            self.routed_last[lanes - 1] += wide_lane.len() as u64;
            self.routed_total[lanes - 1] += wide_lane.len() as u64;
            let wide_decisions = self.quote_wide(&wide_lane, threads);
            for (&(i, _), decision) in wide_lane.iter().zip(wide_decisions) {
                decisions[i] = Some(decision);
            }
        }

        decisions
            .into_iter()
            .map(|d| d.expect("every request was routed to exactly one lane"))
            .collect()
    }

    /// Negotiates the wide lane of one batch: journals submissions,
    /// negotiates every request against the merged book snapshot, records
    /// decisions in the coordinator's table. Mirrors
    /// `NegotiationSession::quote_batch` step for step.
    fn quote_wide(
        &mut self,
        lane: &[(usize, (JobId, AdmissionRequest))],
        threads: usize,
    ) -> Vec<QuoteDecision> {
        let wide = &mut self.wide;
        for &(_, (id, req)) in lane {
            wide.telemetry.emit(|| TelemetryEvent::JobSubmitted {
                at: wide.now,
                job: id.as_u64(),
                size: req.size,
                runtime_secs: req.runtime.as_secs(),
            });
        }
        let planned: Vec<SimDuration> = lane
            .iter()
            .map(|&(_, (_, req))| self.shards[0].session.planned_total(req.runtime))
            .collect();
        let negotiation_requests: Vec<NegotiationRequest<'_>> = lane
            .iter()
            .zip(&planned)
            .map(|(&(_, (_, req)), &duration)| NegotiationRequest {
                size: req.size,
                duration,
                now: wide.now,
                down: &[],
                recovery_horizon: SimTime::ZERO,
                pre_start_risk: wide.config.node_downtime,
            })
            .collect();
        let books: Vec<&(dyn AvailabilityView + Sync)> = self
            .shards
            .iter()
            .map(|s| s.session.book() as &(dyn AvailabilityView + Sync))
            .collect();
        let bases: Vec<u32> = self.shards.iter().map(|s| s.base).collect();
        let merged = MergedAvailabilityView::new(books, bases);
        let outcomes = negotiate_batch(
            &merged,
            wide.config.topology,
            wide.config.placement,
            &wide.predictor,
            &negotiation_requests,
            &wide.config.user,
            wide.config.max_negotiation_slots,
            wide.config.max_probe_steps,
            threads,
        );
        lane.iter()
            .zip(&planned)
            .zip(outcomes)
            .map(|((&(_, (id, _)), &planned_total), outcome)| {
                record_wide_decision(wide, id, planned_total, outcome)
            })
            .collect()
    }

    fn accept(&mut self, id: JobId) -> Result<HeldQuote, AcceptError> {
        match self.routes.get(&id) {
            None => Err(AcceptError::UnknownQuote),
            Some(Route::Shard(k)) => self.shards[*k].session.accept(id),
            Some(Route::Wide) => self.accept_wide(id),
        }
    }

    /// The two-phase commit of a wide quote: revalidate, then reserve
    /// one slice per shard the quoted partition touches; any conflict
    /// releases the slices already taken and expires the quote. Only
    /// after every slice is booked does the coordinator journal the
    /// accepted quote and placement.
    fn accept_wide(&mut self, id: JobId) -> Result<HeldQuote, AcceptError> {
        let job = self
            .wide
            .jobs
            .get(&id)
            .filter(|j| j.phase == WidePhase::Quoted)
            .ok_or(AcceptError::UnknownQuote)?;
        let held = job.held.clone();
        if self.wide.now >= held.quote.deadline {
            self.wide.jobs.remove(&id);
            self.wide.stats.expired += 1;
            return Err(AcceptError::QuoteExpired);
        }
        let window = TimeWindow::new(held.quote.start, held.quote.deadline);
        // Phase 1: reserve the partition's slice in every shard book, in
        // shard order. A conflict means a shard-local commitment landed
        // in the hole since the quote — release and expire.
        let mut slices: Vec<(usize, ReservationId)> = Vec::new();
        let mut conflicted = false;
        for k in 0..self.shards.len() {
            let (base, width) = (self.shards[k].base, self.shards[k].width);
            let local: Vec<NodeId> = held
                .quote
                .partition
                .iter()
                .filter(|n| {
                    let i = n.as_u32();
                    i >= base && i < base + width
                })
                .map(|n| NodeId::new(n.as_u32() - base))
                .collect();
            if local.is_empty() {
                continue;
            }
            let slice = Partition::new(local).expect("nonempty slice");
            match self.shards[k].session.reserve_slice(id, slice, window) {
                Some(reservation) => slices.push((k, reservation)),
                None => {
                    conflicted = true;
                    break;
                }
            }
        }
        if conflicted {
            for (taken, reservation) in slices {
                self.shards[taken].session.release_slice(reservation);
            }
            self.wide.jobs.remove(&id);
            self.wide.stats.expired += 1;
            return Err(AcceptError::QuoteExpired);
        }
        // Phase 2: every slice held — commit the lifecycle.
        let wide = &mut self.wide;
        wide.telemetry.emit(|| TelemetryEvent::QuoteNegotiated {
            at: wide.now,
            job: id.as_u64(),
            start_secs: held.quote.start.as_secs(),
            promised_secs: held.quote.deadline.as_secs(),
            deadline_secs: held.deadline.as_secs(),
            success_probability: held.quote.promised_success(),
        });
        wide.telemetry.emit(|| TelemetryEvent::JobPlaced {
            at: wide.now,
            job: id.as_u64(),
            nodes: held
                .quote
                .partition
                .iter()
                .map(|n| n.index() as u64)
                .collect(),
            failure_probability: held.quote.failure_probability,
        });
        let job = wide.jobs.get_mut(&id).expect("checked above");
        job.phase = WidePhase::Accepted;
        job.slices = slices;
        wide.timers.insert((held.quote.start.max(wide.now), 1, id));
        wide.stats.accepted += 1;
        wide.promises.promise_made();
        Ok(held)
    }

    fn cancel(&mut self, id: JobId) -> Result<(), CancelError> {
        match self.routes.get(&id) {
            None => Err(CancelError::UnknownJob),
            Some(Route::Shard(k)) => self.shards[*k].session.cancel(id),
            Some(Route::Wide) => self.cancel_wide(id),
        }
    }

    fn cancel_wide(&mut self, id: JobId) -> Result<(), CancelError> {
        let wide = &mut self.wide;
        let job = wide.jobs.get(&id).ok_or(CancelError::UnknownJob)?;
        match job.phase {
            WidePhase::Quoted | WidePhase::Accepted => {}
            WidePhase::Running | WidePhase::Done => return Err(CancelError::AlreadyStarted),
            WidePhase::Cancelled => return Err(CancelError::UnknownJob),
        }
        let job = wide.jobs.get_mut(&id).expect("present");
        let was_accepted = job.phase == WidePhase::Accepted;
        job.phase = WidePhase::Cancelled;
        let slices = std::mem::take(&mut job.slices);
        for (k, reservation) in slices {
            self.shards[k].session.release_slice(reservation);
        }
        if was_accepted {
            let start = wide.jobs[&id].held.quote.start.max(wide.now);
            wide.timers.remove(&(start, 1, id));
        }
        wide.telemetry.emit(|| TelemetryEvent::JobCancelled {
            at: wide.now,
            job: id.as_u64(),
        });
        if was_accepted {
            let quoted = wide.jobs[&id].held.quote.promised_success();
            let deadline_secs = wide.jobs[&id].held.deadline.as_secs();
            wide.telemetry.emit(|| TelemetryEvent::PromiseResolved {
                at: wide.now,
                job: id.as_u64(),
                success_probability: quoted,
                deadline_secs,
                verdict: PromiseVerdict::Cancelled,
            });
            wide.promises.resolve(quoted, PromiseVerdict::Cancelled);
        }
        wide.stats.cancelled += 1;
        Ok(())
    }

    fn start_wide(&mut self, id: JobId, at: SimTime) {
        let wide = &mut self.wide;
        let Some(job) = wide.jobs.get_mut(&id) else {
            return;
        };
        if job.phase != WidePhase::Accepted {
            return;
        }
        job.phase = WidePhase::Running;
        let end = job.held.quote.deadline.max(at);
        wide.telemetry.emit(|| TelemetryEvent::JobStarted {
            at,
            job: id.as_u64(),
            restarts: 0,
        });
        wide.timers.insert((end, 0, id));
        wide.stats.started += 1;
    }

    fn complete_wide(&mut self, id: JobId, at: SimTime) {
        let wide = &mut self.wide;
        let Some(job) = wide.jobs.get_mut(&id) else {
            return;
        };
        if job.phase != WidePhase::Running {
            return;
        }
        job.phase = WidePhase::Done;
        let met_deadline = at <= job.held.deadline;
        let slices = std::mem::take(&mut job.slices);
        for (k, reservation) in slices {
            self.shards[k].session.release_slice(reservation);
        }
        let wide = &mut self.wide;
        let job = &wide.jobs[&id];
        wide.telemetry.emit(|| TelemetryEvent::JobCompleted {
            at,
            job: id.as_u64(),
            met_deadline,
        });
        if !met_deadline {
            let late_by = at.as_secs().saturating_sub(job.held.deadline.as_secs());
            wide.telemetry.emit(|| TelemetryEvent::DeadlineMissed {
                at,
                job: id.as_u64(),
                late_by_secs: late_by,
            });
        }
        let quoted = job.held.quote.promised_success();
        let deadline_secs = job.held.deadline.as_secs();
        let verdict = if met_deadline {
            PromiseVerdict::Kept
        } else {
            PromiseVerdict::Broken
        };
        wide.telemetry.emit(|| TelemetryEvent::PromiseResolved {
            at,
            job: id.as_u64(),
            success_probability: quoted,
            deadline_secs,
            verdict,
        });
        wide.promises.resolve(quoted, verdict);
        wide.stats.completed += 1;
    }

    fn status(&self) -> SessionStatus {
        let shard_statuses: Vec<SessionStatus> =
            self.shards.iter().map(|s| s.session.status()).collect();
        let mut stats_lanes: Vec<SessionStats> = shard_statuses.iter().map(|s| s.stats).collect();
        stats_lanes.push(self.wide.stats);
        let mut promise_lanes: Vec<PromiseStats> =
            shard_statuses.iter().map(|s| s.promises).collect();
        promise_lanes.push(self.wide.promises.stats());
        SessionStatus {
            now: self.wide.now,
            cluster_size: self.total,
            occupied_nodes: shard_statuses.iter().map(|s| s.occupied_nodes).sum(),
            reservations: shard_statuses.iter().map(|s| s.reservations).sum(),
            stats: sum_stats(&stats_lanes),
            promises: sum_promises(&promise_lanes),
            parity_sample: shard_statuses[0].parity_sample,
        }
    }
}

/// Mirrors `NegotiationSession::record_decision` for the wide table:
/// journal rejections, apply the horizon, hold replaceable quotes.
fn record_wide_decision<P>(
    wide: &mut Wide<P>,
    id: JobId,
    planned_total: SimDuration,
    outcome: Option<NegotiationOutcome>,
) -> QuoteDecision {
    let Some(outcome) = outcome else {
        wide.telemetry.emit(|| TelemetryEvent::JobRejected {
            at: wide.now,
            job: id.as_u64(),
        });
        wide.stats.rejected += 1;
        return QuoteDecision::Rejected;
    };
    if let Some(horizon) = wide.quote_horizon {
        if outcome.accepted.start > wide.now.saturating_add(horizon) {
            wide.telemetry.emit(|| TelemetryEvent::JobRejected {
                at: wide.now,
                job: id.as_u64(),
            });
            wide.stats.rejected += 1;
            return QuoteDecision::Rejected;
        }
    }
    let slack = SimDuration::from_secs(
        (planned_total.as_secs() as f64 * wide.config.deadline_slack) as u64,
    );
    let held = HeldQuote {
        deadline: outcome.accepted.deadline + slack,
        quote: outcome.accepted,
        satisfied_threshold: outcome.satisfied_threshold,
    };
    let replaceable = wide
        .jobs
        .get(&id)
        .is_none_or(|existing| existing.phase == WidePhase::Quoted);
    if !replaceable {
        wide.stats.rejected += 1;
        return QuoteDecision::Rejected;
    }
    wide.jobs.insert(
        id,
        WideJob {
            phase: WidePhase::Quoted,
            held: held.clone(),
            slices: Vec::new(),
        },
    );
    wide.stats.quoted += 1;
    QuoteDecision::Quoted(held)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_predict::api::NullPredictor;

    fn session_over(
        width: u32,
        base: u32,
        telemetry: Telemetry,
    ) -> NegotiationSession<NullPredictor> {
        NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(width),
            NullPredictor,
            telemetry,
        )
        .node_base(base as u64)
    }

    fn sharded(cluster: u32, n: u32) -> (ShardedCore<NullPredictor>, Vec<Telemetry>, Telemetry) {
        let spans = partition_spans(cluster, n);
        let mut telemetries = Vec::new();
        let mut sessions = Vec::new();
        for span in &spans {
            let t = Telemetry::builder().ring_buffer(4096).build();
            telemetries.push(t.clone());
            sessions.push(session_over(span.width, span.base, t));
        }
        let coord = Telemetry::builder().ring_buffer(4096).build();
        let core = ShardedCore::sharded(
            sessions,
            NullPredictor,
            coord.clone(),
            Telemetry::disabled(),
        );
        (core, telemetries, coord)
    }

    fn req(size: u32, runtime: u64) -> AdmissionRequest {
        AdmissionRequest {
            size,
            runtime: SimDuration::from_secs(runtime),
        }
    }

    fn events(t: &Telemetry) -> Vec<String> {
        t.ring_events().iter().map(|e| e.to_jsonl()).collect()
    }

    #[test]
    fn spans_cover_the_cluster_contiguously() {
        let spans = partition_spans(10, 3);
        assert_eq!(
            spans,
            vec![
                ShardSpan { base: 0, width: 4 },
                ShardSpan { base: 4, width: 3 },
                ShardSpan { base: 7, width: 3 },
            ]
        );
        let spans = partition_spans(8, 8);
        assert!(spans.iter().all(|s| s.width == 1));
    }

    #[test]
    fn one_shard_journals_identically_to_a_raw_session() {
        // The sharded machinery with N=1 must be invisible: same
        // decisions, same journal bytes as driving the session directly.
        let raw_t = Telemetry::builder().ring_buffer(4096).build();
        let mut raw = session_over(64, 0, raw_t.clone());
        let raw_d = raw.quote_batch(&[(JobId::new(1), req(4, 3600))], 1);
        raw.accept(JobId::new(1)).unwrap();
        raw.advance_to(SimTime::from_secs(100_000));

        let (mut core, shard_ts, _) = sharded(64, 1);
        let d = core.quote_batch(&[(JobId::new(1), req(4, 3600))], 1);
        core.accept(JobId::new(1)).unwrap();
        core.advance_to(SimTime::from_secs(100_000));

        assert_eq!(raw_d, d);
        assert_eq!(events(&raw_t), events(&shard_ts[0]));
    }

    #[test]
    fn narrow_jobs_route_to_the_earliest_quoting_shard() {
        let (mut core, _, _) = sharded(8, 2);
        // Fill shard 0 (nodes 0..4) completely.
        let d = core.quote_batch(&[(JobId::new(1), req(4, 3600))], 1);
        assert!(matches!(d[0], QuoteDecision::Quoted(_)));
        core.accept(JobId::new(1)).unwrap();
        // The next 4-node job must land on shard 1 at t=0, not queue
        // behind shard 0's booking.
        let d = core.quote_batch(&[(JobId::new(2), req(4, 3600))], 1);
        let QuoteDecision::Quoted(held) = &d[0] else {
            panic!("expected a quote");
        };
        assert_eq!(held.quote.start, SimTime::ZERO);
        core.accept(JobId::new(2)).unwrap();
        assert_eq!(core.status().occupied_nodes, 8);
        assert_eq!(core.routed_total(), &[1, 1, 0]);
    }

    #[test]
    fn wide_jobs_span_shards_and_run_to_completion() {
        let (mut core, _, coord) = sharded(8, 2);
        // 6 nodes > max shard width 4: the coordinator owns it.
        let d = core.quote_batch(&[(JobId::new(1), req(6, 3600))], 1);
        let QuoteDecision::Quoted(held) = &d[0] else {
            panic!("expected a wide quote");
        };
        assert_eq!(held.quote.start, SimTime::ZERO);
        assert_eq!(held.quote.partition.len(), 6);
        core.accept(JobId::new(1)).unwrap();
        // Slices landed in both shard books.
        assert_eq!(core.status().occupied_nodes, 6);
        assert_eq!(core.status().reservations, 2, "one slice per shard");
        assert_eq!(core.live_jobs(), 1);
        core.advance_to(held.quote.deadline);
        let status = core.status();
        assert_eq!(status.stats.started, 1);
        assert_eq!(status.stats.completed, 1);
        assert_eq!(status.occupied_nodes, 0);
        assert_eq!(status.reservations, 0);
        assert_eq!(status.promises.made, 1);
        assert_eq!(status.promises.kept, 1);
        // The coordinator journaled the whole lifecycle with global ids.
        let lines = events(&coord);
        assert!(lines.iter().any(|l| l.contains("job_submitted")));
        assert!(lines.iter().any(|l| l.contains("job_placed")));
        assert!(lines.iter().any(|l| l.contains("job_completed")));
    }

    #[test]
    fn wide_accept_is_two_phase_and_expires_on_a_stolen_slice() {
        let (mut core, _, _) = sharded(8, 2);
        // Quote the wide job first (6 nodes at t=0)...
        let d = core.quote_batch(&[(JobId::new(1), req(6, 3600))], 1);
        assert!(matches!(d[0], QuoteDecision::Quoted(_)));
        // ...then let narrow jobs commit both shards' capacity at t=0.
        // (Separate batches: within one batch both would probe to the
        // same earliest shard and the second accept would expire, exactly
        // as competing quotes do on a single plane.)
        let d = core.quote_batch(&[(JobId::new(2), req(4, 3600))], 1);
        assert!(matches!(d[0], QuoteDecision::Quoted(_)));
        core.accept(JobId::new(2)).unwrap();
        let d = core.quote_batch(&[(JobId::new(3), req(4, 3600))], 1);
        assert!(matches!(d[0], QuoteDecision::Quoted(_)));
        core.accept(JobId::new(3)).unwrap();
        // The wide quote's hole is gone; phase 1 must fail and release
        // whatever it briefly took.
        assert_eq!(core.accept(JobId::new(1)), Err(AcceptError::QuoteExpired));
        let status = core.status();
        assert_eq!(status.occupied_nodes, 8, "only the narrow jobs");
        assert_eq!(status.reservations, 2, "no leaked wide slices");
        assert_eq!(status.stats.expired, 1);
    }

    #[test]
    fn wide_cancel_releases_every_slice() {
        let (mut core, _, _) = sharded(8, 2);
        core.quote_batch(&[(JobId::new(1), req(6, 3600))], 1);
        core.accept(JobId::new(1)).unwrap();
        assert_eq!(core.status().reservations, 2);
        core.cancel(JobId::new(1)).unwrap();
        let status = core.status();
        assert_eq!(status.reservations, 0);
        assert_eq!(status.stats.cancelled, 1);
        assert_eq!(status.promises.cancelled, 1);
        // The freed capacity is immediately quotable again.
        let d = core.quote_batch(&[(JobId::new(2), req(6, 3600))], 1);
        let QuoteDecision::Quoted(held) = &d[0] else {
            panic!("capacity must be free again");
        };
        assert_eq!(held.quote.start, SimTime::ZERO);
    }

    #[test]
    fn merged_view_speaks_the_global_namespace() {
        let (mut core, _, _) = sharded(8, 2);
        // Occupy shard 0 fully; a wide quote must start after it frees or
        // use shard 1 + wait — either way its partition is global.
        core.quote_batch(&[(JobId::new(1), req(4, 3600))], 1);
        core.accept(JobId::new(1)).unwrap();
        let d = core.quote_batch(&[(JobId::new(2), req(8, 600))], 1);
        let QuoteDecision::Quoted(held) = &d[0] else {
            panic!("expected a quote");
        };
        // All 8 nodes quoted: indices 0..8 in the global namespace.
        let mut nodes: Vec<u32> = held.quote.partition.iter().map(|n| n.as_u32()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..8).collect::<Vec<_>>());
        assert!(held.quote.start > SimTime::ZERO, "waits for shard 0");
    }

    #[test]
    fn all_shards_rejecting_journals_one_rejection_on_the_anchor() {
        let (core, shard_ts, _) = sharded(8, 2);
        let mut core = core.quote_horizon(SimDuration::from_secs(10));
        // Saturate both shards far past the horizon (one batch per
        // commit so the second quote routes to the still-free shard).
        core.quote_batch(&[(JobId::new(1), req(4, 36000))], 1);
        core.accept(JobId::new(1)).unwrap();
        core.quote_batch(&[(JobId::new(2), req(4, 36000))], 1);
        core.accept(JobId::new(2)).unwrap();
        // A narrow job that cannot start within the horizon anywhere.
        let d = core.quote_batch(&[(JobId::new(7), req(4, 600))], 1);
        assert_eq!(d[0], QuoteDecision::Rejected);
        // Exactly one shard journaled the rejection (anchor = 7 % 2 = 1).
        let rejected: usize = shard_ts
            .iter()
            .map(|t| {
                events(t)
                    .iter()
                    .filter(|l| l.contains("job_rejected"))
                    .count()
            })
            .sum();
        assert_eq!(rejected, 1);
        assert!(events(&shard_ts[1])
            .iter()
            .any(|l| l.contains("job_rejected")));
    }
}
