//! Closed-loop load generator for `pqos-qosd`.
//!
//! N client threads each open one connection and replay a synthetic
//! arrival stream (the same NASA iPSC/860 or SDSC SP2 models the trace
//! simulator uses), keeping a fixed number of requests in flight
//! (pipelining) so the engine's batching actually gets exercised. Each
//! quote is followed — with seeded probabilities — by an `accept` and
//! occasionally a `cancel`, so the daemon's whole verb surface sees load.
//!
//! `overloaded` and `timeout` replies are retried (they are the protocol's
//! backpressure, not failures); `rejected` and `quote_expired` are
//! terminal outcomes and counted. Per-quote latency is measured from the
//! last (re)send to the reply, collected exactly (no histogram buckets),
//! and reported as p50/p90/p99 along with sustained throughput — the
//! numbers that land in `BENCH_service.json`.
//!
//! A server that goes away mid-run (EOF, reset, broken pipe) is a clean
//! disconnect: the worker keeps its partial counts and the run reports
//! what it measured.

use crate::protocol::{ErrorCode, Request, Response};
use crate::record::TraceRecorder;
use crate::{flight, scrape};
use pqos_sim_core::rng::DetRng;
use pqos_telemetry::expo;
use pqos_telemetry::reqtrace::{TraceMeta, TRACE_FORMAT_VERSION};
use pqos_workload::synthetic::{LogModel, SyntheticLog};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What to throw at the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7464`.
    pub addr: String,
    /// Client threads, one connection each.
    pub threads: usize,
    /// Total negotiate requests across all threads.
    pub requests: u64,
    /// In-flight requests per connection. The default of 1 makes the
    /// default profile latency-representative: each thread waits for
    /// its reply before sending the next request, so the reported
    /// latency is the service's, not the client's own pipeline
    /// queueing (at depth `d` a closed loop self-inflicts roughly
    /// `threads * d / throughput` of waiting per request by Little's
    /// law, which at depth 16 dwarfs the sub-millisecond quote path).
    /// Raise `--depth` to measure saturated throughput instead.
    pub pipeline_depth: usize,
    /// Arrival model for job sizes and runtimes.
    pub model: LogModel,
    /// Seed for job streams and accept/cancel coin flips.
    pub seed: u64,
    /// Probability a quote is accepted.
    pub accept_probability: f64,
    /// Probability an accepted job is then cancelled.
    pub cancel_probability: f64,
    /// Send `shutdown` when done (and wait for the ok).
    pub shutdown: bool,
    /// How long to keep retrying the initial connect (the daemon may
    /// still be binding when the generator starts).
    pub connect_timeout: Duration,
    /// The daemon's `/metrics` address; when set, the run ends with a
    /// scrape and the report embeds the server-side stage latencies and
    /// overload counts next to the client-side numbers.
    pub metrics_addr: Option<String>,
    /// Throughput of a reference run (tracing off); when set, the report
    /// embeds the tracing overhead this run paid relative to it.
    pub baseline_rps: Option<f64>,
    /// Record every request/response pair this client sees to a trace
    /// file (`--record`). Client-side traces carry `source: "loadgen"` —
    /// they document what the client observed (no engine epochs), so
    /// `pqos-replay` refuses them; record on the daemon for replayable
    /// captures.
    pub record: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::from("127.0.0.1:7464"),
            threads: 4,
            requests: 20_000,
            pipeline_depth: 1,
            model: LogModel::NasaIpsc,
            seed: 0xD5_2005,
            accept_probability: 0.7,
            cancel_probability: 0.1,
            shutdown: false,
            connect_timeout: Duration::from_secs(10),
            metrics_addr: None,
            baseline_rps: None,
            record: None,
        }
    }
}

/// Server-side numbers scraped from `/metrics` at the end of a run: the
/// decomposition of quote latency the client cannot see from outside.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetrics {
    /// Requests the engine refused with `overloaded`.
    pub overloaded: u64,
    /// Requests completed across all verbs (`rpc.requests_total`).
    pub requests_total: u64,
    /// Per-stage `(p50_us, p99_us)` for the `negotiate` verb, in
    /// [`flight::STAGES`] order; stages with no observations are omitted.
    pub stages_us: Vec<(String, f64, f64)>,
}

impl ServerMetrics {
    /// Extracts the report-relevant numbers from a parsed scrape.
    pub fn from_samples(samples: &[expo::Sample]) -> ServerMetrics {
        let overloaded = expo::find(samples, "pqos_engine_overloaded_total", &[])
            .map(|v| v as u64)
            .unwrap_or(0);
        let requests_total = samples
            .iter()
            .filter(|s| s.name == "pqos_rpc_requests_total")
            .map(|s| s.value as u64)
            .sum();
        let mut stages_us = Vec::new();
        for stage in flight::STAGES {
            let buckets: Vec<(f64, u64)> = samples
                .iter()
                .filter(|s| {
                    s.name == "pqos_rpc_stage_ns_bucket"
                        && s.labels.iter().any(|(k, v)| k == "stage" && v == stage)
                        && s.labels
                            .iter()
                            .any(|(k, v)| k == "verb" && v == "negotiate")
                })
                .map(|s| {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| {
                            if v == "+Inf" {
                                f64::INFINITY
                            } else {
                                v.parse().unwrap_or(f64::INFINITY)
                            }
                        })
                        .unwrap_or(f64::INFINITY);
                    (le, s.value as u64)
                })
                .collect();
            let (Some(p50), Some(p99)) = (
                expo::quantile_from_buckets(&buckets, 0.50),
                expo::quantile_from_buckets(&buckets, 0.99),
            ) else {
                continue;
            };
            stages_us.push((stage.to_string(), p50 / 1_000.0, p99 / 1_000.0));
        }
        ServerMetrics {
            overloaded,
            requests_total,
            stages_us,
        }
    }
}

/// What one run measured. Serializes to the `BENCH_service.json` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Client threads used.
    pub threads: usize,
    /// Negotiate requests that reached a terminal outcome.
    pub requests: u64,
    /// Quotes received.
    pub quoted: u64,
    /// `rejected` outcomes.
    pub rejected: u64,
    /// Accepts acknowledged.
    pub accepted: u64,
    /// Accepts refused as `quote_expired`.
    pub expired: u64,
    /// Cancels acknowledged.
    pub cancelled: u64,
    /// `overloaded`/`timeout` replies retried.
    pub retried: u64,
    /// Replies that were neither success nor a recognized outcome.
    pub errors: u64,
    /// Wall-clock seconds over the request phase.
    pub elapsed_secs: f64,
    /// Terminal negotiate outcomes per wall second.
    pub throughput_rps: f64,
    /// Median quote latency, microseconds.
    pub p50_latency_us: u64,
    /// 90th percentile quote latency, microseconds.
    pub p90_latency_us: u64,
    /// 99th percentile quote latency, microseconds.
    pub p99_latency_us: u64,
    /// Engine-side parity re-checks (from the final `status`).
    pub parity_checked: u64,
    /// Engine-side parity disagreements; must be zero.
    pub parity_violations: u64,
    /// Parity re-check cadence the daemon ran with (1 = every batch).
    pub parity_sample: u64,
    /// Promises made (quotes accepted) per the final `status`.
    pub promises_made: u64,
    /// Promises kept (deadline met).
    pub promises_kept: u64,
    /// Promises broken (deadline missed).
    pub promises_broken: u64,
    /// Worst per-bucket calibration residual in milli-units (observed −
    /// quoted, ×1000; negative = overconfident).
    pub worst_residual_milli: i64,
    /// Server-side numbers from the end-of-run `/metrics` scrape, when
    /// [`LoadgenConfig::metrics_addr`] was set and the scrape succeeded.
    pub server: Option<ServerMetrics>,
    /// Reference throughput (tracing off) this run is compared against.
    pub baseline_rps: Option<f64>,
    /// Shard-scaling sweep rows (`--shards` mode): one per engine shard
    /// count tried, in sweep order. Empty for a plain single-daemon run.
    pub shard_scaling: Vec<ShardScalingRow>,
}

/// One measured point of a shard-scaling sweep: the same workload thrown
/// at a fresh in-process daemon running with `shards` engine shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardScalingRow {
    /// Engine shards the daemon ran with.
    pub shards: u32,
    /// Terminal negotiate outcomes per wall second.
    pub throughput_rps: f64,
    /// 99th percentile quote latency, microseconds.
    pub p99_latency_us: u64,
    /// Throughput relative to the sweep's first (baseline) point.
    pub speedup: f64,
}

impl LoadgenReport {
    /// Renders the report as the `BENCH_service.json` document.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"service\",\n",
                "  \"threads\": {},\n",
                "  \"requests\": {},\n",
                "  \"quoted\": {},\n",
                "  \"rejected\": {},\n",
                "  \"accepted\": {},\n",
                "  \"expired\": {},\n",
                "  \"cancelled\": {},\n",
                "  \"retried\": {},\n",
                "  \"errors\": {},\n",
                "  \"elapsed_secs\": {:.6},\n",
                "  \"throughput_rps\": {:.1},\n",
                "  \"quote_latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }},\n",
                "  \"parity_checked\": {},\n",
                "  \"parity_violations\": {},\n",
                "  \"parity_sample\": {},\n",
                "  \"promises\": {{ \"made\": {}, \"kept\": {}, \"broken\": {}, \"worst_residual_milli\": {} }},\n",
                "  \"server\": {},\n",
                "  \"tracing_overhead\": {},\n",
                "  \"shard_scaling\": {}\n",
                "}}\n"
            ),
            self.threads,
            self.requests,
            self.quoted,
            self.rejected,
            self.accepted,
            self.expired,
            self.cancelled,
            self.retried,
            self.errors,
            self.elapsed_secs,
            self.throughput_rps,
            self.p50_latency_us,
            self.p90_latency_us,
            self.p99_latency_us,
            self.parity_checked,
            self.parity_violations,
            self.parity_sample,
            self.promises_made,
            self.promises_kept,
            self.promises_broken,
            self.worst_residual_milli,
            self.server_json(),
            self.overhead_json(),
            self.shard_scaling_json(),
        )
    }

    fn shard_scaling_json(&self) -> String {
        if self.shard_scaling.is_empty() {
            return String::from("null");
        }
        let rows: Vec<String> = self
            .shard_scaling
            .iter()
            .map(|row| {
                format!(
                    "{{ \"shards\": {}, \"throughput_rps\": {:.1}, \"p99_latency_us\": {}, \"speedup\": {:.2} }}",
                    row.shards, row.throughput_rps, row.p99_latency_us, row.speedup,
                )
            })
            .collect();
        format!("[ {} ]", rows.join(", "))
    }

    fn server_json(&self) -> String {
        let Some(server) = &self.server else {
            return String::from("null");
        };
        let stages: Vec<String> = server
            .stages_us
            .iter()
            .map(|(stage, p50, p99)| {
                format!("\"{stage}\": {{ \"p50\": {p50:.1}, \"p99\": {p99:.1} }}")
            })
            .collect();
        format!(
            "{{ \"overloaded\": {}, \"requests_total\": {}, \"stages_us\": {{ {} }} }}",
            server.overloaded,
            server.requests_total,
            stages.join(", "),
        )
    }

    fn overhead_json(&self) -> String {
        let Some(baseline) = self.baseline_rps else {
            return String::from("null");
        };
        let overhead_pct = if baseline > 0.0 {
            (baseline - self.throughput_rps) / baseline * 100.0
        } else {
            0.0
        };
        format!(
            "{{ \"baseline_rps\": {:.1}, \"traced_rps\": {:.1}, \"overhead_pct\": {:.2} }}",
            baseline, self.throughput_rps, overhead_pct,
        )
    }

    /// One-line human summary for the terminal (two lines when the
    /// server-side scrape is present).
    pub fn render(&self) -> String {
        let mut out = self.render_client();
        if !self.shard_scaling.is_empty() {
            let rows: Vec<String> = self
                .shard_scaling
                .iter()
                .map(|row| {
                    format!(
                        "{} shard{}: {:.0} req/s p99 {}us ({:.2}x)",
                        row.shards,
                        if row.shards == 1 { "" } else { "s" },
                        row.throughput_rps,
                        row.p99_latency_us,
                        row.speedup,
                    )
                })
                .collect();
            out.push_str(&format!("\nshard scaling: {}", rows.join(" | ")));
        }
        if let Some(server) = &self.server {
            let stages: Vec<String> = server
                .stages_us
                .iter()
                .map(|(stage, p50, p99)| format!("{stage} {p50:.0}/{p99:.0}us"))
                .collect();
            out.push_str(&format!(
                "\nserver: {} requests, {} overloaded | stage p50/p99: {}",
                server.requests_total,
                server.overloaded,
                stages.join(" "),
            ));
        }
        out
    }

    fn render_client(&self) -> String {
        format!(
            "{} requests in {:.2}s = {:.0} req/s | quote latency p50 {}us p90 {}us p99 {}us | \
             quoted {} rejected {} accepted {} expired {} cancelled {} retried {} | \
             parity {}/{} (1-in-{}) | promises made {} kept {} broken {} worst residual {:+.3}",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.p50_latency_us,
            self.p90_latency_us,
            self.p99_latency_us,
            self.quoted,
            self.rejected,
            self.accepted,
            self.expired,
            self.cancelled,
            self.retried,
            self.parity_checked - self.parity_violations,
            self.parity_checked,
            self.parity_sample,
            self.promises_made,
            self.promises_kept,
            self.promises_broken,
            self.worst_residual_milli as f64 / 1000.0,
        )
    }
}

#[derive(Debug, Default)]
struct WorkerStats {
    terminal: u64,
    quoted: u64,
    rejected: u64,
    accepted: u64,
    expired: u64,
    cancelled: u64,
    retried: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// Connects with retry until `deadline` allows no more attempts.
fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let give_up = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= give_up => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Sends one request and waits for its (matching) reply on a dedicated
/// control connection.
fn control_roundtrip(addr: &str, timeout: Duration, request: &Request) -> Option<Response> {
    let stream = connect(addr, timeout).ok()?;
    let mut writer = BufWriter::new(stream.try_clone().ok()?);
    writeln!(writer, "{}", request.encode()).ok()?;
    writer.flush().ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while reader.read_line(&mut line).ok()? > 0 {
        if let Some(response) = Response::parse(&line) {
            if response.id() == request.id() {
                return Some(response);
            }
        }
        line.clear();
    }
    None
}

/// Runs the full load: spawn workers, drive the request phase, then fetch
/// the daemon's final counters (and optionally shut it down).
///
/// # Errors
///
/// Fails only when the daemon is unreachable within
/// [`LoadgenConfig::connect_timeout`]; mid-run disconnects degrade to
/// partial counts instead.
pub fn run(config: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let threads = config.threads.max(1);
    // One probe connection up front: fail fast if the daemon is absent,
    // and learn the cluster size so job sizes fit it.
    let status = control_roundtrip(
        &config.addr,
        config.connect_timeout,
        &Request::Status { id: 1 },
    );
    let cluster_size = match status {
        Some(Response::Status { body, .. }) => body.cluster_size,
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("no pqos-qosd answering at {}", config.addr),
            ))
        }
    };
    // Client-side capture: one shared trace, each worker stamping its own
    // connection id. Epoch/tick are zero — the client cannot see engine
    // batching; this trace documents what the wire carried, not how the
    // engine grouped it.
    let trace = match &config.record {
        Some(path) => TraceRecorder::to_path(
            path,
            &TraceMeta {
                version: TRACE_FORMAT_VERSION,
                source: "loadgen".into(),
                cluster_size,
                time_scale: 0.0,
                batch_threads: 0,
                quote_horizon_secs: None,
                predictor: "unknown".into(),
                shards: 1,
                slo: Vec::new(),
                slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
            },
        )?,
        None => TraceRecorder::disabled(),
    };
    let per_thread = config.requests.div_ceil(threads as u64);
    let started = Instant::now();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|tid| {
                let trace = trace.clone();
                scope.spawn(move || worker(config, tid, per_thread, cluster_size, &trace))
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker thread"))
            .collect()
    });
    trace.flush();
    let elapsed = started.elapsed();

    let mut merged = WorkerStats::default();
    for s in stats {
        merged.terminal += s.terminal;
        merged.quoted += s.quoted;
        merged.rejected += s.rejected;
        merged.accepted += s.accepted;
        merged.expired += s.expired;
        merged.cancelled += s.cancelled;
        merged.retried += s.retried;
        merged.errors += s.errors;
        merged.latencies_us.extend(s.latencies_us);
    }
    merged.latencies_us.sort_unstable();
    let percentile = |q: f64| -> u64 {
        match merged.latencies_us.len() {
            0 => 0,
            n => merged.latencies_us[((n - 1) as f64 * q).round() as usize],
        }
    };

    let final_status = control_roundtrip(
        &config.addr,
        config.connect_timeout,
        &Request::Status { id: 2 },
    );
    let final_body = match final_status {
        Some(Response::Status { body, .. }) => Some(body),
        _ => None,
    };
    let (parity_checked, parity_violations) = final_body
        .as_ref()
        .map_or((0, 0), |b| (b.parity_checked, b.parity_violations));
    // Scrape while the daemon is still up; a failed scrape degrades to a
    // report without server-side numbers, not a failed run.
    let server = config.metrics_addr.as_deref().and_then(|addr| {
        scrape::scrape_metrics(addr, config.connect_timeout)
            .ok()
            .map(|samples| ServerMetrics::from_samples(&samples))
    });
    if config.shutdown {
        control_roundtrip(
            &config.addr,
            config.connect_timeout,
            &Request::Shutdown { id: 3 },
        );
    }

    let elapsed_secs = elapsed.as_secs_f64().max(1e-9);
    Ok(LoadgenReport {
        threads,
        requests: merged.terminal,
        quoted: merged.quoted,
        rejected: merged.rejected,
        accepted: merged.accepted,
        expired: merged.expired,
        cancelled: merged.cancelled,
        retried: merged.retried,
        errors: merged.errors,
        elapsed_secs,
        throughput_rps: merged.terminal as f64 / elapsed_secs,
        p50_latency_us: percentile(0.50),
        p90_latency_us: percentile(0.90),
        p99_latency_us: percentile(0.99),
        parity_checked,
        parity_violations,
        parity_sample: final_body.as_ref().map_or(1, |b| b.parity_sample),
        promises_made: final_body.as_ref().map_or(0, |b| b.promises_made),
        promises_kept: final_body.as_ref().map_or(0, |b| b.promises_kept),
        promises_broken: final_body.as_ref().map_or(0, |b| b.promises_broken),
        worst_residual_milli: final_body.as_ref().map_or(0, |b| b.worst_residual_milli),
        server,
        baseline_rps: config.baseline_rps,
        shard_scaling: Vec::new(),
    })
}

/// What we are waiting on for an in-flight request id.
struct Pending {
    request: Request,
    sent: Instant,
}

fn worker(
    config: &LoadgenConfig,
    tid: usize,
    quota: u64,
    cluster_size: u32,
    trace: &TraceRecorder,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let Ok(stream) = connect(&config.addr, config.connect_timeout) else {
        return stats;
    };
    let Ok(write_half) = stream.try_clone() else {
        return stats;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut rng = DetRng::seed_from(config.seed).fork(&format!("loadgen-worker-{tid}"));
    let jobs = SyntheticLog::new(config.model)
        .jobs(quota as usize)
        .seed(config.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .cluster_size(cluster_size)
        .build();
    let jobs = jobs.jobs();

    let depth = config.pipeline_depth.max(1);
    let mut outstanding: HashMap<u64, Pending> = HashMap::new();
    let mut followups: VecDeque<Request> = VecDeque::new();
    let mut next_job = 0usize;
    let mut next_id = 1u64;
    let mut line = String::new();

    while stats.terminal < quota || !outstanding.is_empty() || !followups.is_empty() {
        // Fill the pipeline: follow-ups first (they unblock engine state),
        // then fresh negotiates from the job stream.
        let mut wrote = false;
        while outstanding.len() < depth {
            let request = if let Some(f) = followups.pop_front() {
                f
            } else if next_job < jobs.len() {
                let job = &jobs[next_job];
                next_job += 1;
                let request = Request::Negotiate {
                    id: next_id,
                    size: job.nodes().max(1),
                    runtime_secs: job.runtime().as_secs().max(60),
                };
                next_id += 1;
                request
            } else {
                break;
            };
            if writeln!(writer, "{}", request.encode()).is_err() {
                return stats; // peer gone: clean disconnect, keep counts
            }
            outstanding.insert(
                request.id(),
                Pending {
                    request,
                    sent: Instant::now(),
                },
            );
            wrote = true;
        }
        if wrote && writer.flush().is_err() {
            return stats;
        }
        if outstanding.is_empty() {
            break;
        }

        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return stats, // EOF/reset: clean disconnect
            Ok(_) => {}
        }
        let Some(response) = Response::parse(&line) else {
            stats.errors += 1;
            continue;
        };
        let Some(pending) = outstanding.remove(&response.id()) else {
            stats.errors += 1;
            continue;
        };
        if trace.is_enabled() {
            let job = match (&pending.request, &response) {
                (Request::Negotiate { .. }, Response::Quote { job, .. }) => Some(*job),
                _ => None,
            };
            trace.record(0, 0, tid as u64 + 1, &pending.request, &response, job);
        }
        let retry = |stats: &mut WorkerStats, followups: &mut VecDeque<Request>| {
            stats.retried += 1;
            followups.push_back(pending.request);
        };
        match (&pending.request, &response) {
            (Request::Negotiate { .. }, Response::Quote { job, .. }) => {
                stats.terminal += 1;
                stats.quoted += 1;
                stats
                    .latencies_us
                    .push(pending.sent.elapsed().as_micros() as u64);
                if rng.chance(config.accept_probability) {
                    followups.push_back(Request::Accept {
                        id: next_id,
                        job: *job,
                    });
                    next_id += 1;
                }
            }
            (Request::Negotiate { .. }, Response::Error { code, .. }) => match code {
                ErrorCode::Rejected => {
                    stats.terminal += 1;
                    stats.rejected += 1;
                }
                c if c.is_retryable() => retry(&mut stats, &mut followups),
                _ => {
                    stats.terminal += 1;
                    stats.errors += 1;
                }
            },
            (Request::Accept { job, .. }, Response::Ok { .. }) => {
                stats.accepted += 1;
                if rng.chance(config.cancel_probability) {
                    followups.push_back(Request::Cancel {
                        id: next_id,
                        job: *job,
                    });
                    next_id += 1;
                }
            }
            (Request::Accept { .. }, Response::Error { code, .. }) => match code {
                ErrorCode::QuoteExpired => stats.expired += 1,
                c if c.is_retryable() => retry(&mut stats, &mut followups),
                _ => stats.errors += 1,
            },
            (Request::Cancel { .. }, Response::Ok { .. }) => stats.cancelled += 1,
            (Request::Cancel { .. }, Response::Error { code, .. }) => {
                if code.is_retryable() {
                    retry(&mut stats, &mut followups);
                } else {
                    // Racing a cancel against the job's own start losing
                    // (`already_started`) is expected under time scaling.
                    stats.errors += u64::from(!matches!(code, ErrorCode::AlreadyStarted));
                }
            }
            _ => stats.errors += 1,
        }
    }
    stats
}
