//! Hand-rolled Prometheus `/metrics` exposition endpoint.
//!
//! A second listener (separate from the negotiation port, so scrapes
//! never compete with request traffic for the protocol accept loop)
//! serves HTTP/1.0 with `Connection: close` semantics:
//!
//! * `GET /metrics` — the full registry rendered in Prometheus text
//!   format v0.0.4 ([`pqos_telemetry::expo::render`]).
//! * `GET /healthz` — `ok` while the engine is accepting work,
//!   `draining` (HTTP 503) once shutdown has begun.
//! * `GET /history` — the windowed health history as JSON
//!   ([`WindowStore::to_json`]); an empty document when the history
//!   plane is disabled (`--history-window-ms 0`).
//!
//! The endpoint answers anything that speaks enough HTTP to send a
//! request line; there is deliberately no keep-alive, chunking, or TLS —
//! one socket, one scrape, one close, which is all `curl`, Prometheus,
//! and `pqos-top` need. Scrape-time freshness: immediately before
//! rendering, the handler refreshes the gauges that only the engine
//! would otherwise update per tick (queue depth, overload total,
//! process uptime), so an idle daemon still reports live values.

use crate::engine::EngineHandle;
use pqos_telemetry::{expo, Telemetry, WindowStore};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How often the accept loop rechecks the draining flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(50);
/// Per-connection socket timeout: a scraper that stalls mid-request is
/// dropped rather than wedging the (single-threaded) metrics loop.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(500);

/// Serves `/metrics` until the engine starts draining. Returns the
/// thread handle; join it after the engine exits.
pub fn spawn(
    listener: TcpListener,
    telemetry: Telemetry,
    engine: EngineHandle,
    history: Option<Arc<WindowStore>>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("pqos-metrics".into())
        .spawn(move || serve_metrics(listener, telemetry, engine, history))
        .expect("spawn metrics thread")
}

fn serve_metrics(
    listener: TcpListener,
    telemetry: Telemetry,
    engine: EngineHandle,
    history: Option<Arc<WindowStore>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are cheap (one registry snapshot + render);
                // handle inline so the thread count stays fixed.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
                let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
                handle_client(stream, &telemetry, &engine, history.as_deref());
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                if engine.is_draining() {
                    return;
                }
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    }
}

fn handle_client(
    mut stream: std::net::TcpStream,
    telemetry: &Telemetry,
    engine: &EngineHandle,
    history: Option<&WindowStore>,
) {
    let mut buf = [0u8; 1024];
    let mut line = Vec::new();
    // Read until the end of the request line; ignore headers entirely.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                line.extend_from_slice(&buf[..n]);
                if line.contains(&b'\n') || line.len() >= 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&line);
    let path = request
        .split_whitespace()
        .nth(1)
        .unwrap_or("")
        .split('?')
        .next()
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" | "/" => {
            engine.refresh_gauges();
            let body = telemetry
                .snapshot()
                .map(|snap| expo::render(&snap))
                .unwrap_or_default();
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/history" => {
            let body = match history {
                Some(store) => store.to_json(),
                None => concat!(
                    r#"{"history":true,"window_ms":0,"#,
                    r#""windows":0,"families":[]}"#
                )
                .to_string(),
            };
            ("200 OK", "application/json", body)
        }
        "/healthz" => {
            if engine.is_draining() {
                ("503 Service Unavailable", "text/plain", "draining\n".into())
            } else {
                ("200 OK", "text/plain", "ok\n".into())
            }
        }
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
