//! `pqos-loadgen`: drive a running `pqos-qosd` with synthetic load.
//!
//! ```text
//! pqos-loadgen --addr HOST:PORT [--threads N] [--requests N] [--depth N]
//!              [--model nasa|sdsc] [--seed N] [--accept-prob F]
//!              [--cancel-prob F] [--out BENCH_service.json] [--shutdown]
//!              [--metrics HOST:PORT] [--baseline-rps F] [--record PATH]
//! pqos-loadgen --shards 1,2,4 [--cluster N] [client options] [--out PATH]
//! ```
//!
//! `--shards` switches to sweep mode: instead of targeting a running
//! daemon, the generator boots its own in-process daemon per listed
//! shard count (over `--cluster` nodes, default 4096) and throws the
//! identical workload at each, writing a `shard_scaling` table into the
//! report alongside the baseline (first count) run's numbers.
//!
//! With `--metrics`, the run ends with a `/metrics` scrape and the report
//! embeds the daemon's own stage-latency decomposition and overload
//! counts next to the client-side percentiles. `--baseline-rps` (the
//! throughput of a reference run with tracing off) makes the report also
//! state the tracing overhead this run paid.
//!
//! Exit status is nonzero when the daemon reports any batched-vs-serial
//! parity violation — the load generator doubles as the online parity
//! assertion.

use pqos_service::loadgen::{self, LoadgenConfig};
use pqos_service::sweep::{shard_sweep, SweepConfig};
use pqos_workload::synthetic::LogModel;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: pqos-loadgen --addr HOST:PORT [options]
  --threads N       client threads, one connection each (default 4)
  --requests N      total negotiate requests (default 20000)
  --depth N         pipelined requests per connection (default 1; raise
                    for throughput runs -- deep pipelines measure the
                    client's own queueing, not service latency)
  --model NAME      arrival model: nasa | sdsc (default nasa)
  --seed N          deterministic seed (default 13967365)
  --accept-prob F   probability a quote is accepted (default 0.7)
  --cancel-prob F   probability an accepted job is cancelled (default 0.1)
  --out PATH        write the JSON report here (BENCH_service.json schema)
  --shutdown        send the shutdown verb when done
  --metrics HOST:PORT  scrape the daemon's /metrics endpoint at the end of
                    the run and embed server-side numbers in the report
  --baseline-rps F  reference throughput (tracing off); embeds the tracing
                    overhead in the report
  --record PATH     capture every request/response this client sees as a
                    JSONL trace (client-side view; for replayable captures
                    record on the daemon with pqos-qosd --record)
  --shards LIST     sweep mode: boot an in-process daemon per comma-separated
                    engine shard count (e.g. 1,2,4) and table the scaling
                    instead of targeting --addr
  --cluster N       cluster size the sweep's daemons run with (default 4096)
";

fn die(msg: &str) -> ExitCode {
    eprintln!("pqos-loadgen: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadgenConfig::default();
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut shard_counts: Option<Vec<u32>> = None;
    let mut cluster_size: u32 = 4096;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--addr" => value("--addr").map(|v| addr = Some(v)),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|n| config.threads = n)
                    .map_err(|_| "--threads: not a count".into())
            }),
            "--requests" => value("--requests").and_then(|v| {
                v.parse()
                    .map(|n| config.requests = n)
                    .map_err(|_| "--requests: not a count".into())
            }),
            "--depth" => value("--depth").and_then(|v| {
                v.parse()
                    .map(|n| config.pipeline_depth = n)
                    .map_err(|_| "--depth: not a count".into())
            }),
            "--model" => value("--model").and_then(|v| match v.as_str() {
                "nasa" => {
                    config.model = LogModel::NasaIpsc;
                    Ok(())
                }
                "sdsc" => {
                    config.model = LogModel::SdscSp2;
                    Ok(())
                }
                other => Err(format!("--model: unknown model {other} (nasa|sdsc)")),
            }),
            "--seed" => value("--seed").and_then(|v| {
                v.parse()
                    .map(|n| config.seed = n)
                    .map_err(|_| "--seed: not a number".into())
            }),
            "--accept-prob" => value("--accept-prob").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|p: &f64| (0.0..=1.0).contains(p))
                    .map(|p| config.accept_probability = p)
                    .ok_or_else(|| "--accept-prob: need a probability".into())
            }),
            "--cancel-prob" => value("--cancel-prob").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|p: &f64| (0.0..=1.0).contains(p))
                    .map(|p| config.cancel_probability = p)
                    .ok_or_else(|| "--cancel-prob: need a probability".into())
            }),
            "--shutdown" => {
                config.shutdown = true;
                Ok(())
            }
            "--out" => value("--out").map(|v| out = Some(v)),
            "--shards" => value("--shards").and_then(|v| {
                v.split(',')
                    .map(|part| part.trim().parse::<u32>().ok().filter(|&n| n > 0))
                    .collect::<Option<Vec<u32>>>()
                    .filter(|counts| !counts.is_empty())
                    .map(|counts| shard_counts = Some(counts))
                    .ok_or_else(|| "--shards: need comma-separated positive counts".into())
            }),
            "--cluster" => value("--cluster").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|&n: &u32| n > 0)
                    .map(|n| cluster_size = n)
                    .ok_or_else(|| "--cluster: not a count".into())
            }),
            "--record" => value("--record").map(|v| config.record = Some(v)),
            "--metrics" => value("--metrics").map(|v| config.metrics_addr = Some(v)),
            "--baseline-rps" => value("--baseline-rps").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|r: &f64| r.is_finite() && *r > 0.0)
                    .map(|r| config.baseline_rps = Some(r))
                    .ok_or_else(|| "--baseline-rps: need a positive rate".into())
            }),
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag: {other}")),
        };
        if let Err(msg) = result {
            return die(&msg);
        }
    }
    let run_result = if let Some(counts) = shard_counts {
        if counts.iter().any(|&n| n > cluster_size) {
            return die("--shards: a shard count exceeds --cluster");
        }
        let sweep = SweepConfig {
            shard_counts: counts,
            cluster_size,
            ..SweepConfig::default()
        };
        shard_sweep(&config, &sweep)
    } else {
        let Some(addr) = addr else {
            return die("--addr is required (or use --shards for sweep mode)");
        };
        config.addr = addr;
        loadgen::run(&config)
    };
    let report = match run_result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pqos-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("pqos-loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Downstream closing the pipe (`pqos-loadgen ... | head`) is a normal
    // way to consume the summary, not an error.
    match writeln!(std::io::stdout().lock(), "{}", report.render()) {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => {
            eprintln!("pqos-loadgen: stdout: {e}");
            return ExitCode::FAILURE;
        }
        _ => {}
    }
    if report.parity_violations > 0 {
        eprintln!(
            "pqos-loadgen: PARITY VIOLATION: {} of {} batched quotes differ from serial negotiation",
            report.parity_violations, report.parity_checked
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
