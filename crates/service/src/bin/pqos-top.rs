//! `pqos-top`: one-screen live status for a running `pqos-qosd`.
//!
//! ```text
//! pqos-top --metrics HOST:PORT [--interval-ms N] [--once] [--no-history]
//! ```
//!
//! Polls the daemon's `/metrics` endpoint and renders the scrape as a
//! terminal dashboard: request rates per verb (from counter deltas
//! between polls), per-verb p50/p99 latency (interpolated from the
//! exported histogram buckets), engine queue depth, live jobs, session
//! counters, the promise-calibration ledger (`pqos_promise_*`), and the
//! overload rate. Against a daemon running `--shards N` a per-shard
//! table (live jobs, quoted, occupied nodes, reservations, routed) is
//! appended from the `shard="k"`-labeled gauge families. `--once`
//! prints a single snapshot without clearing the screen — the mode CI
//! and scripts use.
//!
//! Two panels ride on the SLO plane: `/history` (the daemon's windowed
//! health ring) renders as sparklines, and when the daemon declares
//! `--slo` rules, an alert panel lists each rule FIRING/ok from the
//! `pqos_slo_*` gauges.
//!
//! A daemon that stops answering does not blank the screen: the last
//! good frame stays up under a STALE banner showing the data's age, and
//! reconnect attempts back off exponentially (interval .. 16x interval)
//! until the scrape succeeds again.
//!
//! No raw-terminal games: the repaint is ANSI clear-home
//! (`ESC[2J ESC[H`), so any terminal (or `watch`-style pager) works, and
//! piping to a file degrades to one frame per poll.

use pqos_service::scrape;
use pqos_telemetry::expo::{self, Sample};
use pqos_telemetry::json::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: pqos-top --metrics HOST:PORT [options]
  --interval-ms N   poll interval (default 1000)
  --once            print one snapshot and exit (no screen clearing)
  --no-history      skip the /history sparkline panel
";

/// Reconnect backoff cap, as a multiple of the poll interval.
const MAX_BACKOFF_MULT: u32 = 16;

const VERBS: [&str; 6] = [
    "negotiate",
    "accept",
    "cancel",
    "status",
    "dump",
    "shutdown",
];

fn die(msg: &str) -> ExitCode {
    eprintln!("pqos-top: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut no_history = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--metrics" => value("--metrics").map(|v| metrics = Some(v)),
            "--interval-ms" => value("--interval-ms").and_then(|v| {
                v.parse()
                    .map(|ms: u64| interval = Duration::from_millis(ms.max(100)))
                    .map_err(|_| "--interval-ms: not a duration".into())
            }),
            "--once" => {
                once = true;
                Ok(())
            }
            "--no-history" => {
                no_history = true;
                Ok(())
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag: {other}")),
        };
        if let Err(msg) = result {
            return die(&msg);
        }
    }
    let Some(addr) = metrics else {
        return die("--metrics is required");
    };

    let timeout = Duration::from_secs(5);
    let mut previous: Option<(Instant, BTreeMap<String, f64>)> = None;
    // The stale-data plane: the last frame that rendered from a live
    // scrape, kept on screen (under a banner) while the daemon is away.
    let mut last_good: Option<(Instant, String)> = None;
    let mut failures: u32 = 0;
    loop {
        let emit = |payload: &str| -> bool {
            let mut stdout = std::io::stdout().lock();
            write!(stdout, "{payload}")
                .and_then(|()| stdout.flush())
                .is_ok()
        };
        match scrape::scrape_metrics(&addr, timeout) {
            Ok(samples) => {
                failures = 0;
                let now = Instant::now();
                let counters = verb_counters(&samples);
                let history = (!no_history)
                    .then(|| scrape::http_get(&addr, "/history", timeout).ok())
                    .flatten();
                let mut frame = render_frame(&addr, &samples, &counters, previous.as_ref(), now);
                frame.push_str(&render_slo(&samples));
                if let Some(body) = &history {
                    frame.push_str(&render_history(body));
                }
                let payload = if once {
                    frame.clone()
                } else {
                    format!("\x1b[2J\x1b[H{frame}")
                };
                if !emit(&payload) {
                    return ExitCode::SUCCESS; // pipe closed: done
                }
                if once {
                    return ExitCode::SUCCESS;
                }
                previous = Some((now, counters));
                last_good = Some((now, frame));
                std::thread::sleep(interval);
            }
            Err(e) => {
                if once {
                    eprintln!("pqos-top: {addr}: {e}");
                    return ExitCode::FAILURE;
                }
                failures = failures.saturating_add(1);
                let backoff = interval * 2u32.pow((failures - 1).min(MAX_BACKOFF_MULT.ilog2()));
                let payload = match &last_good {
                    Some((at, frame)) => format!(
                        "\x1b[2J\x1b[HSTALE: {addr} unreachable ({e}); data is {}s old; \
                         retry {failures} in {:.1}s\n\n{frame}",
                        at.elapsed().as_secs(),
                        backoff.as_secs_f64(),
                    ),
                    None => format!(
                        "\x1b[2J\x1b[Hpqos-top: {addr}: {e}; retry {failures} in {:.1}s\n",
                        backoff.as_secs_f64(),
                    ),
                };
                if !emit(&payload) {
                    return ExitCode::SUCCESS;
                }
                std::thread::sleep(backoff);
            }
        }
    }
}

/// Completed-request counters per verb, for rate deltas between polls.
fn verb_counters(samples: &[Sample]) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for s in samples {
        if s.name != "pqos_rpc_requests_total" {
            continue;
        }
        if let Some((_, verb)) = s.labels.iter().find(|(k, _)| k == "verb") {
            map.insert(verb.clone(), s.value);
        }
    }
    map
}

/// Cumulative buckets for one verb's total-latency histogram.
fn latency_buckets(samples: &[Sample], verb: &str) -> Vec<(f64, u64)> {
    samples
        .iter()
        .filter(|s| {
            s.name == "pqos_rpc_request_ns_bucket"
                && s.labels.iter().any(|(k, v)| k == "verb" && v == verb)
        })
        .map(|s| {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| {
                    if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse().unwrap_or(f64::INFINITY)
                    }
                })
                .unwrap_or(f64::INFINITY);
            (le, s.value as u64)
        })
        .collect()
}

fn fmt_us(ns: Option<f64>) -> String {
    match ns {
        Some(ns) if ns >= 1e9 => format!("{:.1}s", ns / 1e9),
        Some(ns) if ns >= 1e6 => format!("{:.1}ms", ns / 1e6),
        Some(ns) => format!("{:.0}us", ns / 1e3),
        None => String::from("-"),
    }
}

fn render_frame(
    addr: &str,
    samples: &[Sample],
    counters: &BTreeMap<String, f64>,
    previous: Option<&(Instant, BTreeMap<String, f64>)>,
    now: Instant,
) -> String {
    let gauge = |name: &str| expo::find(samples, name, &[]).unwrap_or(0.0);
    let uptime = gauge("pqos_process_uptime_seconds") as u64;
    let queue = gauge("pqos_engine_queue_depth") as u64;
    let live = gauge("pqos_engine_live_jobs") as u64;
    let overloaded = gauge("pqos_engine_overloaded_total") as u64;
    let total_requests: f64 = counters.values().sum();

    let mut out = String::new();
    out.push_str(&format!(
        "pqos-qosd @ {addr} | up {}h{:02}m{:02}s | queue {queue} | live jobs {live} | overloaded {overloaded}\n",
        uptime / 3600,
        (uptime % 3600) / 60,
        uptime % 60,
    ));
    let rate_window = previous.map(|(t, _)| now.duration_since(*t).as_secs_f64());
    let total_rate: Option<f64> = rate_window.map(|dt| {
        let prev_total: f64 = previous.map(|(_, c)| c.values().sum()).unwrap_or(0.0);
        ((total_requests - prev_total) / dt.max(1e-9)).max(0.0)
    });
    match total_rate {
        Some(rate) => out.push_str(&format!(
            "{total_requests:.0} requests served | {rate:.0} req/s\n\n"
        )),
        None => out.push_str(&format!("{total_requests:.0} requests served\n\n")),
    }

    out.push_str(&format!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}\n",
        "verb", "total", "req/s", "p50", "p99"
    ));
    for verb in VERBS {
        let Some(&total) = counters.get(verb) else {
            continue;
        };
        let rate = match (rate_window, previous) {
            (Some(dt), Some((_, prev))) => {
                let before = prev.get(verb).copied().unwrap_or(0.0);
                format!("{:.0}", ((total - before) / dt.max(1e-9)).max(0.0))
            }
            _ => String::from("-"),
        };
        let buckets = latency_buckets(samples, verb);
        let p50 = expo::quantile_from_buckets(&buckets, 0.50);
        let p99 = expo::quantile_from_buckets(&buckets, 0.99);
        out.push_str(&format!(
            "{verb:<10} {total:>12.0} {rate:>10} {:>10} {:>10}\n",
            fmt_us(p50),
            fmt_us(p99),
        ));
    }

    out.push_str(&format!(
        "\nsessions: quoted {} placed {} started {} completed {} rejected {} cancelled {}\n",
        gauge("pqos_journal_quote_negotiated") as u64,
        gauge("pqos_journal_job_placed") as u64,
        gauge("pqos_journal_job_started") as u64,
        gauge("pqos_journal_job_completed") as u64,
        gauge("pqos_journal_job_rejected") as u64,
        gauge("pqos_journal_job_cancelled") as u64,
    ));
    // Calibration panel: the promise ledger plus the worst per-bucket
    // residual (observed − quoted; negative = overconfident), exported
    // in milli-units.
    let made = gauge("pqos_promise_made") as u64;
    let resolved = gauge("pqos_promise_kept") as u64
        + gauge("pqos_promise_broken") as u64
        + gauge("pqos_promise_cancelled") as u64;
    out.push_str(&format!(
        "promises: made {made} kept {} broken {} cancelled {} pending {} | worst residual {:+.3}\n",
        gauge("pqos_promise_kept") as u64,
        gauge("pqos_promise_broken") as u64,
        gauge("pqos_promise_cancelled") as u64,
        made.saturating_sub(resolved),
        gauge("pqos_promise_worst_residual_milli") / 1000.0,
    ));
    let overload_rate = if total_requests + overloaded as f64 > 0.0 {
        overloaded as f64 / (total_requests + overloaded as f64) * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "engine: ticks {} timeouts {} | overload rate {overload_rate:.2}%\n",
        gauge("pqos_engine_ticks") as u64,
        gauge("pqos_engine_timeouts") as u64,
    ));
    out.push_str(&render_shards(samples));
    out
}

/// Per-shard panel, present only against multi-shard daemons — a
/// single-plane core exports no `shard="k"` label families, and the
/// panel collapses to nothing. The `wide` lane is the cross-shard
/// coordinator: it routes wide jobs but owns no nodes of its own.
fn render_shards(samples: &[Sample]) -> String {
    let shards = shard_labels(samples);
    if shards.is_empty() {
        return String::new();
    }
    let cell = |name: &str, shard: &str| {
        shard_value(samples, name, shard).map_or(String::from("-"), |v| format!("{v:.0}"))
    };
    let mut out = format!(
        "\n{:<6} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
        "shard", "live", "quoted", "occupied", "resv", "routed"
    );
    for shard in &shards {
        out.push_str(&format!(
            "{shard:<6} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
            cell("pqos_engine_live_jobs", shard),
            cell("pqos_engine_shard_quoted", shard),
            cell("pqos_engine_shard_occupied_nodes", shard),
            cell("pqos_engine_shard_reservations", shard),
            cell("pqos_engine_shard_routed_total", shard),
        ));
    }
    if let Some(wide) = shard_value(samples, "pqos_engine_shard_routed_total", "wide") {
        out.push_str(&format!(
            "{:<6} {:>8} {:>8} {:>10} {:>8} {:>8.0}\n",
            "wide", "-", "-", "-", "-", wide
        ));
    }
    out
}

/// SLO alert panel, present only against daemons that declared `--slo`
/// rules (`pqos_slo_rules` is 0 or absent otherwise).
fn render_slo(samples: &[Sample]) -> String {
    let gauge = |name: &str| expo::find(samples, name, &[]).unwrap_or(0.0);
    let rules = gauge("pqos_slo_rules") as u64;
    if rules == 0 {
        return String::new();
    }
    let mut out = format!(
        "\nslo: {rules} rule(s) | active {} | fired {} resolved {} | windows closed {}\n",
        gauge("pqos_slo_active_alerts") as u64,
        gauge("pqos_slo_alerts_fired_total") as u64,
        gauge("pqos_slo_alerts_resolved_total") as u64,
        gauge("pqos_slo_windows_closed_total") as u64,
    );
    for s in samples {
        if s.name != "pqos_slo_rule_firing" {
            continue;
        }
        if let Some((_, rule)) = s.labels.iter().find(|(k, _)| k == "rule") {
            out.push_str(&format!(
                "  {:<7} {rule}\n",
                if s.value >= 1.0 { "FIRING" } else { "ok" }
            ));
        }
    }
    out
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Windows of history drawn per sparkline row.
const SPARK_WIDTH: usize = 48;
/// Sparkline rows shown before the panel truncates.
const HISTORY_ROWS: usize = 8;

/// The last [`SPARK_WIDTH`] windows as one row of block characters,
/// scaled against the row's own peak; a window with no data is a blank.
fn sparkline(points: &[Option<f64>]) -> String {
    let tail = &points[points.len().saturating_sub(SPARK_WIDTH)..];
    let peak = tail.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
    tail.iter()
        .map(|p| match p {
            None => ' ',
            Some(_) if peak <= 0.0 => SPARK[0],
            Some(v) => SPARK[((v.max(0.0) / peak * 7.0).round() as usize).min(7)],
        })
        .collect()
}

/// `/history` sparkline panel: a handful of load-bearing families
/// (pinned ones first, then the busiest per-window rates), each drawn
/// against its own peak with its latest value alongside.
fn render_history(body: &str) -> String {
    const PREFERRED: [&str; 5] = [
        "engine.queue_depth",
        "journal.quote_negotiated",
        "journal.job_completed",
        "journal.job_rejected",
        "slo.active_alerts",
    ];
    let Some(doc) = Json::parse(body) else {
        return String::new();
    };
    let window_ms = doc.get("window_ms").and_then(Json::as_u64).unwrap_or(0);
    let windows = doc.get("windows").and_then(Json::as_u64).unwrap_or(0);
    let Some(families) = doc.get("families").and_then(Json::as_arr) else {
        return String::new();
    };
    if windows == 0 || families.is_empty() {
        return String::new();
    }
    let mut rows: Vec<(i64, String, String, Vec<Option<f64>>)> = Vec::new();
    for f in families {
        let (Some(name), Some(kind), Some(points)) = (
            f.get("name").and_then(Json::as_str),
            f.get("kind").and_then(Json::as_str),
            f.get("points").and_then(Json::as_arr),
        ) else {
            continue;
        };
        let pts: Vec<Option<f64>> = points.iter().map(Json::as_f64).collect();
        let peak = pts.iter().flatten().fold(0.0f64, |a, &b| a.max(b.abs()));
        let score = match PREFERRED.iter().position(|p| *p == name) {
            Some(i) => i64::MIN + i as i64, // pinned to the top, in order
            None if kind == "rate" && peak > 0.0 => -(peak as i64),
            None => continue, // idle unpinned family: not worth a row
        };
        rows.push((score, name.into(), kind.into(), pts));
    }
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    rows.truncate(HISTORY_ROWS);
    let mut out = format!("\nhistory ({window_ms}ms windows, {windows} sampled):\n");
    for (_, name, kind, pts) in &rows {
        let last = pts.iter().rev().flatten().next().copied();
        out.push_str(&format!(
            "  {name:<34} {} {:>9} {kind}\n",
            sparkline(pts),
            last.map_or(String::from("-"), |v| format!("{v:.1}")),
        ));
    }
    out
}

/// The numeric `shard="k"` labels exported by the daemon, sorted by
/// shard index (the non-numeric `wide` lane is handled separately).
fn shard_labels(samples: &[Sample]) -> Vec<String> {
    let mut labels: Vec<String> = samples
        .iter()
        .filter(|s| s.name == "pqos_engine_shard_quoted")
        .filter_map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
        })
        .collect();
    labels.sort_by_key(|v| v.parse::<u64>().unwrap_or(u64::MAX));
    labels.dedup();
    labels
}

fn shard_value(samples: &[Sample], name: &str, shard: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "shard" && v == shard))
        .map(|s| s.value)
}
