//! `pqos-top`: one-screen live status for a running `pqos-qosd`.
//!
//! ```text
//! pqos-top --metrics HOST:PORT [--interval-ms N] [--once]
//! ```
//!
//! Polls the daemon's `/metrics` endpoint and renders the scrape as a
//! terminal dashboard: request rates per verb (from counter deltas
//! between polls), per-verb p50/p99 latency (interpolated from the
//! exported histogram buckets), engine queue depth, live jobs, session
//! counters, the promise-calibration ledger (`pqos_promise_*`), and the
//! overload rate. Against a daemon running `--shards N` a per-shard
//! table (live jobs, quoted, occupied nodes, reservations, routed) is
//! appended from the `shard="k"`-labeled gauge families. `--once`
//! prints a single snapshot without clearing the screen — the mode CI
//! and scripts use.
//!
//! No raw-terminal games: the repaint is ANSI clear-home
//! (`ESC[2J ESC[H`), so any terminal (or `watch`-style pager) works, and
//! piping to a file degrades to one frame per poll.

use pqos_service::scrape;
use pqos_telemetry::expo::{self, Sample};
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: pqos-top --metrics HOST:PORT [options]
  --interval-ms N   poll interval (default 1000)
  --once            print one snapshot and exit (no screen clearing)
";

const VERBS: [&str; 6] = [
    "negotiate",
    "accept",
    "cancel",
    "status",
    "dump",
    "shutdown",
];

fn die(msg: &str) -> ExitCode {
    eprintln!("pqos-top: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--metrics" => value("--metrics").map(|v| metrics = Some(v)),
            "--interval-ms" => value("--interval-ms").and_then(|v| {
                v.parse()
                    .map(|ms: u64| interval = Duration::from_millis(ms.max(100)))
                    .map_err(|_| "--interval-ms: not a duration".into())
            }),
            "--once" => {
                once = true;
                Ok(())
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag: {other}")),
        };
        if let Err(msg) = result {
            return die(&msg);
        }
    }
    let Some(addr) = metrics else {
        return die("--metrics is required");
    };

    let timeout = Duration::from_secs(5);
    let mut previous: Option<(Instant, BTreeMap<String, f64>)> = None;
    loop {
        let samples = match scrape::scrape_metrics(&addr, timeout) {
            Ok(samples) => samples,
            Err(e) => {
                if once {
                    eprintln!("pqos-top: {addr}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("pqos-top: {addr}: {e} (retrying)");
                std::thread::sleep(interval);
                continue;
            }
        };
        let now = Instant::now();
        let counters = verb_counters(&samples);
        let frame = render_frame(&addr, &samples, &counters, previous.as_ref(), now);
        let mut stdout = std::io::stdout().lock();
        let payload = if once {
            frame
        } else {
            format!("\x1b[2J\x1b[H{frame}")
        };
        if write!(stdout, "{payload}")
            .and_then(|()| stdout.flush())
            .is_err()
        {
            return ExitCode::SUCCESS; // pipe closed: done
        }
        if once {
            return ExitCode::SUCCESS;
        }
        previous = Some((now, counters));
        std::thread::sleep(interval);
    }
}

/// Completed-request counters per verb, for rate deltas between polls.
fn verb_counters(samples: &[Sample]) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for s in samples {
        if s.name != "pqos_rpc_requests_total" {
            continue;
        }
        if let Some((_, verb)) = s.labels.iter().find(|(k, _)| k == "verb") {
            map.insert(verb.clone(), s.value);
        }
    }
    map
}

/// Cumulative buckets for one verb's total-latency histogram.
fn latency_buckets(samples: &[Sample], verb: &str) -> Vec<(f64, u64)> {
    samples
        .iter()
        .filter(|s| {
            s.name == "pqos_rpc_request_ns_bucket"
                && s.labels.iter().any(|(k, v)| k == "verb" && v == verb)
        })
        .map(|s| {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| {
                    if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse().unwrap_or(f64::INFINITY)
                    }
                })
                .unwrap_or(f64::INFINITY);
            (le, s.value as u64)
        })
        .collect()
}

fn fmt_us(ns: Option<f64>) -> String {
    match ns {
        Some(ns) if ns >= 1e9 => format!("{:.1}s", ns / 1e9),
        Some(ns) if ns >= 1e6 => format!("{:.1}ms", ns / 1e6),
        Some(ns) => format!("{:.0}us", ns / 1e3),
        None => String::from("-"),
    }
}

fn render_frame(
    addr: &str,
    samples: &[Sample],
    counters: &BTreeMap<String, f64>,
    previous: Option<&(Instant, BTreeMap<String, f64>)>,
    now: Instant,
) -> String {
    let gauge = |name: &str| expo::find(samples, name, &[]).unwrap_or(0.0);
    let uptime = gauge("pqos_process_uptime_seconds") as u64;
    let queue = gauge("pqos_engine_queue_depth") as u64;
    let live = gauge("pqos_engine_live_jobs") as u64;
    let overloaded = gauge("pqos_engine_overloaded_total") as u64;
    let total_requests: f64 = counters.values().sum();

    let mut out = String::new();
    out.push_str(&format!(
        "pqos-qosd @ {addr} | up {}h{:02}m{:02}s | queue {queue} | live jobs {live} | overloaded {overloaded}\n",
        uptime / 3600,
        (uptime % 3600) / 60,
        uptime % 60,
    ));
    let rate_window = previous.map(|(t, _)| now.duration_since(*t).as_secs_f64());
    let total_rate: Option<f64> = rate_window.map(|dt| {
        let prev_total: f64 = previous.map(|(_, c)| c.values().sum()).unwrap_or(0.0);
        ((total_requests - prev_total) / dt.max(1e-9)).max(0.0)
    });
    match total_rate {
        Some(rate) => out.push_str(&format!(
            "{total_requests:.0} requests served | {rate:.0} req/s\n\n"
        )),
        None => out.push_str(&format!("{total_requests:.0} requests served\n\n")),
    }

    out.push_str(&format!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}\n",
        "verb", "total", "req/s", "p50", "p99"
    ));
    for verb in VERBS {
        let Some(&total) = counters.get(verb) else {
            continue;
        };
        let rate = match (rate_window, previous) {
            (Some(dt), Some((_, prev))) => {
                let before = prev.get(verb).copied().unwrap_or(0.0);
                format!("{:.0}", ((total - before) / dt.max(1e-9)).max(0.0))
            }
            _ => String::from("-"),
        };
        let buckets = latency_buckets(samples, verb);
        let p50 = expo::quantile_from_buckets(&buckets, 0.50);
        let p99 = expo::quantile_from_buckets(&buckets, 0.99);
        out.push_str(&format!(
            "{verb:<10} {total:>12.0} {rate:>10} {:>10} {:>10}\n",
            fmt_us(p50),
            fmt_us(p99),
        ));
    }

    out.push_str(&format!(
        "\nsessions: quoted {} placed {} started {} completed {} rejected {} cancelled {}\n",
        gauge("pqos_journal_quote_negotiated") as u64,
        gauge("pqos_journal_job_placed") as u64,
        gauge("pqos_journal_job_started") as u64,
        gauge("pqos_journal_job_completed") as u64,
        gauge("pqos_journal_job_rejected") as u64,
        gauge("pqos_journal_job_cancelled") as u64,
    ));
    // Calibration panel: the promise ledger plus the worst per-bucket
    // residual (observed − quoted; negative = overconfident), exported
    // in milli-units.
    let made = gauge("pqos_promise_made") as u64;
    let resolved = gauge("pqos_promise_kept") as u64
        + gauge("pqos_promise_broken") as u64
        + gauge("pqos_promise_cancelled") as u64;
    out.push_str(&format!(
        "promises: made {made} kept {} broken {} cancelled {} pending {} | worst residual {:+.3}\n",
        gauge("pqos_promise_kept") as u64,
        gauge("pqos_promise_broken") as u64,
        gauge("pqos_promise_cancelled") as u64,
        made.saturating_sub(resolved),
        gauge("pqos_promise_worst_residual_milli") / 1000.0,
    ));
    let overload_rate = if total_requests + overloaded as f64 > 0.0 {
        overloaded as f64 / (total_requests + overloaded as f64) * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "engine: ticks {} timeouts {} | overload rate {overload_rate:.2}%\n",
        gauge("pqos_engine_ticks") as u64,
        gauge("pqos_engine_timeouts") as u64,
    ));
    out.push_str(&render_shards(samples));
    out
}

/// Per-shard panel, present only against multi-shard daemons — a
/// single-plane core exports no `shard="k"` label families, and the
/// panel collapses to nothing. The `wide` lane is the cross-shard
/// coordinator: it routes wide jobs but owns no nodes of its own.
fn render_shards(samples: &[Sample]) -> String {
    let shards = shard_labels(samples);
    if shards.is_empty() {
        return String::new();
    }
    let cell = |name: &str, shard: &str| {
        shard_value(samples, name, shard).map_or(String::from("-"), |v| format!("{v:.0}"))
    };
    let mut out = format!(
        "\n{:<6} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
        "shard", "live", "quoted", "occupied", "resv", "routed"
    );
    for shard in &shards {
        out.push_str(&format!(
            "{shard:<6} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
            cell("pqos_engine_live_jobs", shard),
            cell("pqos_engine_shard_quoted", shard),
            cell("pqos_engine_shard_occupied_nodes", shard),
            cell("pqos_engine_shard_reservations", shard),
            cell("pqos_engine_shard_routed_total", shard),
        ));
    }
    if let Some(wide) = shard_value(samples, "pqos_engine_shard_routed_total", "wide") {
        out.push_str(&format!(
            "{:<6} {:>8} {:>8} {:>10} {:>8} {:>8.0}\n",
            "wide", "-", "-", "-", "-", wide
        ));
    }
    out
}

/// The numeric `shard="k"` labels exported by the daemon, sorted by
/// shard index (the non-numeric `wide` lane is handled separately).
fn shard_labels(samples: &[Sample]) -> Vec<String> {
    let mut labels: Vec<String> = samples
        .iter()
        .filter(|s| s.name == "pqos_engine_shard_quoted")
        .filter_map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
        })
        .collect();
    labels.sort_by_key(|v| v.parse::<u64>().unwrap_or(u64::MAX));
    labels.dedup();
    labels
}

fn shard_value(samples: &[Sample], name: &str, shard: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "shard" && v == shard))
        .map(|s| s.value)
}
