//! `pqos-qosd`: the online QoS negotiation daemon.
//!
//! ```text
//! pqos-qosd [--addr HOST:PORT] [--metrics-addr HOST:PORT]
//!           [--cluster-size N] [--shards N] [--journal PATH]
//!           [--time-scale F] [--queue-depth N] [--batch-threads N]
//!           [--timeout-ms N] [--no-verify-parity] [--parity-sample N]
//!           [--synthetic-failures]
//!           [--flight-capacity N] [--no-flight] [--flight-dump PATH]
//!           [--metrics-dump PATH] [--record PATH]
//!           [--slo RULE]... [--slo-window-secs N] [--history-window-ms N]
//! ```
//!
//! Binds, prints `listening on HOST:PORT` (port 0 in `--addr` picks a free
//! one — scrape the printed line), then serves the JSON-lines negotiation
//! protocol until a client sends `{"verb":"shutdown"}`. With `--journal`
//! every served lifecycle is written as a telemetry journal that
//! `pqos-doctor check` certifies clean.
//!
//! With `--shards N` the cluster is split into N contiguous node
//! partitions, each owned by its own engine shard (single-writer book,
//! predictor, journal); jobs wider than any shard go through the
//! two-phase cross-shard coordinator. Each shard journals to
//! `PATH.shardK` (the coordinator to `PATH.wide`) and the files are
//! merged into `PATH` when the daemon drains, so `pqos-doctor check`
//! and the promise audit read one clean journal either way.
//!
//! The observability plane rides along: `--metrics-addr` serves the
//! metrics registry in Prometheus text format (`metrics on HOST:PORT` is
//! printed the same way), request tracing into the flight recorder is on
//! by default (`--no-flight` to opt out), and `--flight-dump` /
//! `--metrics-dump` write the Chrome trace and the final metrics snapshot
//! when the daemon drains.
//!
//! The continuous SLO plane: `--slo NAME:METRIC{<,<=,>,>=}VALUE@NEED[/OVER]`
//! (repeatable) declares burn-rate rules the engine evaluates every tick
//! over fixed `--slo-window-secs` windows of *virtual* time. Fires and
//! resolves journal as `slo_alert` events (deterministic: replay
//! reproduces them byte-for-byte and `pqos-doctor slo` re-derives them),
//! and export live as `pqos_slo_*` gauges. Separately, a wall-clock
//! sampler folds the registry into a ring of `--history-window-ms`
//! windows served by the `history` verb and the `/history` route.

use pqos_core::config::SimConfig;
use pqos_core::session::NegotiationSession;
use pqos_failures::synthetic::AixLikeTrace;
use pqos_predict::api::{NullPredictor, Predictor};
use pqos_predict::oracle::TraceOracle;
use pqos_service::engine::EngineConfig;
use pqos_service::server::{
    serve_core, RecordConfig, ServerConfig, DEFAULT_FLIGHT_CAPACITY, DEFAULT_HISTORY_WINDOW_MS,
};
use pqos_service::shard::{partition_spans, ShardedCore};
use pqos_sim_core::time::SimDuration;
use pqos_telemetry::reqtrace::{TraceMeta, TRACE_FORMAT_VERSION};
use pqos_telemetry::{SloAccum, SloSink, Telemetry};
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: pqos-qosd [options]
  --addr HOST:PORT      bind address (default 127.0.0.1:0 = free port; scrape stdout)
  --cluster-size N      nodes in the served cluster (default 64)
  --shards N            engine shards, each owning cluster/N nodes
                        (default 1; shard K journals to PATH.shardK and
                        the files merge into PATH on drain)
  --journal PATH        write the telemetry journal (JSONL) here
  --time-scale F        virtual seconds per wall second (default 1.0)
  --queue-depth N       engine queue capacity before `overloaded` (default 1024)
  --batch-threads N     fan-out width for batched quoting (default: cores)
  --timeout-ms N        per-request queue-wait budget (default 5000)
  --quote-horizon-secs N  reject quotes starting more than N virtual seconds
                        out; bounds the reservation backlog (default: none)
  --no-verify-parity    skip the live batched-vs-serial quote re-check
  --parity-sample N     re-check only every Nth quote batch (default 16;
                        1 = every batch, as tests, CI and replay use)
  --synthetic-failures  predict from a synthetic AIX-like failure trace
                        instead of the null predictor
  --metrics-addr HOST:PORT  serve Prometheus /metrics here (port 0 = free
                        port; scrape the `metrics on HOST:PORT` line)
  --flight-capacity N   completed request traces the flight recorder keeps
                        (default 256)
  --no-flight           disable request tracing and the flight recorder
  --flight-dump PATH    write the flight recorder's Chrome trace here on
                        graceful shutdown
  --metrics-dump PATH   write the final metrics snapshot (JSON) here on
                        graceful shutdown
  --record PATH         record every answered request as a replayable
                        trace (JSONL) for `pqos-replay run`
  --slo RULE            declare a burn-rate SLO rule (repeatable); RULE is
                        NAME:METRIC{<,<=,>,>=}VALUE@NEED[/OVER], e.g.
                        tight:rejects<=0@1 or p99:reject_ratio<0.5@2/5.
                        Alerts journal as slo_alert events and export as
                        pqos_slo_* gauges
  --slo-window-secs N   SLO burn-window width in virtual seconds
                        (default 60)
  --history-window-ms N windowed health-history sample width in wall
                        milliseconds (default 1000; 0 disables the
                        history plane)
";

fn die(msg: &str) -> ExitCode {
    eprintln!("pqos-qosd: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:0");
    let mut cluster_size: u32 = 64;
    let mut shards: u32 = 1;
    let mut journal: Option<String> = None;
    // Serving default: sample the batched-vs-serial parity re-check
    // 1-in-16. EngineConfig::default() keeps 1 (exhaustive) so tests,
    // CI and replay re-check every batch; `--parity-sample 1` restores
    // that here.
    let mut engine = EngineConfig {
        parity_sample: 16,
        ..EngineConfig::default()
    };
    let mut synthetic_failures = false;
    let mut quote_horizon: Option<u64> = None;
    let mut metrics_addr: Option<String> = None;
    let mut flight_capacity: usize = DEFAULT_FLIGHT_CAPACITY;
    let mut flight_dump: Option<String> = None;
    let mut metrics_dump: Option<String> = None;
    let mut record: Option<String> = None;
    let mut slo_specs: Vec<String> = Vec::new();
    let mut slo_window_secs: u64 = pqos_telemetry::slo::DEFAULT_WINDOW_SECS;
    let mut history_window_ms: u64 = DEFAULT_HISTORY_WINDOW_MS;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--addr" => value("--addr").map(|v| addr = v),
            "--cluster-size" => value("--cluster-size").and_then(|v| {
                v.parse()
                    .map(|n| cluster_size = n)
                    .map_err(|_| "--cluster-size: not a node count".into())
            }),
            "--shards" => value("--shards").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|n: &u32| *n > 0)
                    .map(|n| shards = n)
                    .ok_or_else(|| "--shards: need a positive count".into())
            }),
            "--journal" => value("--journal").map(|v| journal = Some(v)),
            "--time-scale" => value("--time-scale").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .map(|s| engine.time_scale = s)
                    .ok_or_else(|| "--time-scale: need a positive number".into())
            }),
            "--queue-depth" => value("--queue-depth").and_then(|v| {
                v.parse()
                    .map(|n| engine.queue_depth = n)
                    .map_err(|_| "--queue-depth: not a count".into())
            }),
            "--batch-threads" => value("--batch-threads").and_then(|v| {
                v.parse()
                    .map(|n| engine.batch_threads = n)
                    .map_err(|_| "--batch-threads: not a count".into())
            }),
            "--timeout-ms" => value("--timeout-ms").and_then(|v| {
                v.parse()
                    .map(|ms| engine.request_timeout = Duration::from_millis(ms))
                    .map_err(|_| "--timeout-ms: not a duration".into())
            }),
            "--quote-horizon-secs" => value("--quote-horizon-secs").and_then(|v| {
                v.parse()
                    .map(|n| quote_horizon = Some(n))
                    .map_err(|_| "--quote-horizon-secs: not a duration".into())
            }),
            "--metrics-addr" => value("--metrics-addr").map(|v| metrics_addr = Some(v)),
            "--flight-capacity" => value("--flight-capacity").and_then(|v| {
                v.parse()
                    .map(|n| flight_capacity = n)
                    .map_err(|_| "--flight-capacity: not a count".into())
            }),
            "--no-flight" => {
                flight_capacity = 0;
                Ok(())
            }
            "--flight-dump" => value("--flight-dump").map(|v| flight_dump = Some(v)),
            "--metrics-dump" => value("--metrics-dump").map(|v| metrics_dump = Some(v)),
            "--record" => value("--record").map(|v| record = Some(v)),
            "--slo" => value("--slo").and_then(|v| {
                pqos_telemetry::slo::parse_rule(&v)
                    .map(|_| slo_specs.push(v))
                    .map_err(|e| format!("--slo: {e}"))
            }),
            "--slo-window-secs" => value("--slo-window-secs").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|n: &u64| *n > 0)
                    .map(|n| slo_window_secs = n)
                    .ok_or_else(|| "--slo-window-secs: need a positive duration".into())
            }),
            "--history-window-ms" => value("--history-window-ms").and_then(|v| {
                v.parse()
                    .map(|n| history_window_ms = n)
                    .map_err(|_| "--history-window-ms: not a duration".into())
            }),
            "--no-verify-parity" => {
                engine.verify_parity = false;
                Ok(())
            }
            "--parity-sample" => value("--parity-sample").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|n: &u64| *n > 0)
                    .map(|n| engine.parity_sample = n)
                    .ok_or_else(|| "--parity-sample: need a positive count".into())
            }),
            "--synthetic-failures" => {
                synthetic_failures = true;
                Ok(())
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag: {other}")),
        };
        if let Err(msg) = result {
            return die(&msg);
        }
    }
    if cluster_size == 0 {
        return die("--cluster-size: need at least one node");
    }
    if shards > cluster_size {
        return die("--shards: cannot exceed --cluster-size");
    }

    // The SLO plane: one accumulator shared by every journal plane's
    // event sink and drained by the engine's per-tick evaluator. Rules
    // were validated during flag parsing, so re-parsing cannot fail.
    let slo_accum = (!slo_specs.is_empty()).then(|| Arc::new(SloAccum::new(slo_window_secs)));
    engine.slo_rules = slo_specs
        .iter()
        .map(|s| pqos_telemetry::slo::parse_rule(s).expect("validated at flag parse"))
        .collect();
    engine.slo_accum = slo_accum.clone();

    // One predictor per engine plane. Shard K predicts over its own
    // node span from a seed derived from its index, so shard planes
    // stay deterministic and distinguishable; replay rebuilds the same
    // predictors from the trace header. The wide-job coordinator (and
    // the single plane) predicts over the full cluster.
    let make_predictor = |seed: u64, nodes: u32| -> Box<dyn Predictor + Send + Sync> {
        if synthetic_failures {
            let trace = Arc::new(
                AixLikeTrace::new()
                    .days(365.0)
                    .seed(seed)
                    .nodes(nodes)
                    .build(),
            );
            Box::new(TraceOracle::new(trace, 0.9).expect("accuracy in range"))
        } else {
            Box::new(NullPredictor)
        }
    };
    let open_journal = |path: Option<&str>| -> Result<Telemetry, ExitCode> {
        // Telemetry is always enabled: the /metrics endpoint and the
        // stage histograms need a live registry even when no journal is
        // written. Without a journal or SLO rules there are no event
        // sinks, so emits stay cheap.
        let mut builder = match path {
            None => Telemetry::builder(),
            Some(path) => match Telemetry::builder().flush_every(1024).jsonl_path(path) {
                Ok(builder) => builder,
                Err(e) => {
                    eprintln!("pqos-qosd: cannot open journal {path}: {e}");
                    return Err(ExitCode::from(2));
                }
            },
        };
        if let Some(accum) = &slo_accum {
            builder = builder.sink(Box::new(SloSink(Arc::clone(accum))));
        }
        let telemetry = builder.build();
        // Flush the journal before unwinding on any panic: an incident
        // capture that stops mid-event cannot be replayed or trusted.
        pqos_telemetry::panichook::flush_on_panic(&telemetry);
        Ok(telemetry)
    };
    let make_session = |nodes: u32, base: u32, seed: u64, telemetry: Telemetry| {
        let config = SimConfig::paper_defaults().cluster_size_nodes(nodes);
        NegotiationSession::new(config, make_predictor(seed, nodes), telemetry)
            .verify_parity(engine.verify_parity)
            .node_base(u64::from(base))
    };
    let shard_journals: Vec<(u32, Option<String>)> = partition_spans(cluster_size, shards)
        .iter()
        .enumerate()
        .map(|(k, span)| {
            (
                span.width,
                journal
                    .as_ref()
                    .filter(|_| shards > 1)
                    .map(|p| format!("{p}.shard{k}")),
            )
        })
        .collect();
    let core = if shards == 1 {
        let telemetry = match open_journal(journal.as_deref()) {
            Ok(t) => t,
            Err(code) => return code,
        };
        ShardedCore::single(make_session(cluster_size, 0, 0xD5_2005, telemetry))
    } else {
        let mut sessions = Vec::with_capacity(shards as usize);
        let mut base = 0u32;
        for (k, (width, path)) in shard_journals.iter().enumerate() {
            let telemetry = match open_journal(path.as_deref()) {
                Ok(t) => t,
                Err(code) => return code,
            };
            sessions.push(make_session(*width, base, 0xD5_2005 ^ k as u64, telemetry));
            base += width;
        }
        let wide_path = journal.as_ref().map(|p| format!("{p}.wide"));
        let coordinator = match open_journal(wide_path.as_deref()) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let core = ShardedCore::sharded(
            sessions,
            make_predictor(0xD5_2005, cluster_size),
            coordinator,
            Telemetry::builder().build(),
        );
        // Even a panicking daemon leaves the merged journal behind: the
        // per-telemetry flush hooks above run first, then this stitches
        // the flushed shard files together.
        if let Some(path) = &journal {
            let merge_into = path.clone();
            let parts = shard_part_paths(path, shards);
            pqos_telemetry::panichook::on_panic(move || {
                let _ = merge_journal_files(&merge_into, &parts);
            });
        }
        core
    };
    // On the core, not per session: the wide-job coordinator must refuse
    // past-horizon starts exactly like every shard does, or a sharded
    // record→replay stops being byte-identical.
    let core = match quote_horizon {
        Some(secs) => core.quote_horizon(SimDuration::from_secs(secs)),
        None => core,
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pqos-qosd: cannot bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let bound = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pqos-qosd: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics = match &metrics_addr {
        None => None,
        Some(addr) => match TcpListener::bind(addr) {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("pqos-qosd: cannot bind metrics {addr}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    // A closed stdout (spawner went away after scraping the port) must not
    // kill the daemon; only report write errors that are not broken pipes.
    let mut banner = format!("listening on {bound}\n");
    if let Some(l) = &metrics {
        if let Ok(a) = l.local_addr() {
            banner.push_str(&format!("metrics on {a}\n"));
        }
    }
    if let Err(e) =
        write!(std::io::stdout().lock(), "{banner}").and_then(|()| std::io::stdout().lock().flush())
    {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("pqos-qosd: stdout: {e}");
        }
    }
    let record = record.map(|path| RecordConfig {
        path: path.into(),
        meta: TraceMeta {
            version: TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size,
            time_scale: engine.time_scale,
            batch_threads: engine.batch_threads as u64,
            quote_horizon_secs: quote_horizon,
            predictor: if synthetic_failures {
                "synthetic-aix".into()
            } else {
                "null".into()
            },
            shards: u64::from(shards),
            slo: slo_specs.clone(),
            slo_window_secs,
        },
    });
    let config = ServerConfig {
        engine,
        metrics,
        flight_capacity,
        flight_dump: flight_dump.map(Into::into),
        metrics_dump: metrics_dump.map(Into::into),
        record,
        history_window_ms,
    };
    let served = serve_core(listener, core, config);
    if shards > 1 {
        if let Some(path) = &journal {
            if let Err(e) = merge_journal_files(path, &shard_part_paths(path, shards)) {
                eprintln!("pqos-qosd: cannot merge shard journals into {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pqos-qosd: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The per-plane journal files behind `path`: one per shard plus the
/// wide-job coordinator's.
fn shard_part_paths(path: &str, shards: u32) -> Vec<String> {
    let mut parts: Vec<String> = (0..shards).map(|k| format!("{path}.shard{k}")).collect();
    parts.push(format!("{path}.wide"));
    parts
}

/// Stitches the per-shard journals into one doctor-clean stream at
/// `path`. Missing part files are skipped (a shard that never journaled
/// an event writes nothing).
fn merge_journal_files(path: &str, parts: &[String]) -> std::io::Result<()> {
    let mut texts = Vec::new();
    for part in parts {
        match std::fs::read_to_string(part) {
            Ok(text) => texts.push(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    std::fs::write(path, pqos_telemetry::merge::merge_journals_to_string(&refs))
}
