//! Engine-side request-trace recording (`--record`).
//!
//! A [`TraceRecorder`] sits next to the engine loop and captures every
//! *answered* request as a [`TraceEntry`], stamped with the engine tick
//! (batch epoch) and the virtual time the tick advanced to. Together with
//! the [`TraceMeta`] header (the daemon's session configuration) that is
//! exactly enough for `pqos-replay` to reconstruct the per-tick batching
//! the single-writer engine saw and re-execute it deterministically.
//!
//! What is recorded and what is not:
//!
//! - pass-1 negotiates carry their engine-assigned job id (rejected ones
//!   too — they consume an id and journal `job_submitted`/`job_rejected`);
//! - queue-timeout refusals are recorded with `job: null` so replay knows
//!   those requests never reached the session;
//! - `overloaded`/`shutting_down` refusals are *not* recorded: they are
//!   answered outside the engine tick and have no state effect;
//! - the final `shutdown` acknowledgement is the last entry.
//!
//! Like [`Telemetry`](pqos_telemetry::Telemetry), a disabled recorder (the
//! default) costs one branch per answered request.

use crate::protocol::{Request, Response};
use pqos_telemetry::reqtrace::{TraceEntry, TraceMeta};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

struct RecState {
    out: Box<dyn Write + Send>,
    next_seq: u64,
    entries: u64,
    write_errors: u64,
}

/// Cheap clonable handle; all clones append to the same trace.
#[derive(Clone, Default)]
pub struct TraceRecorder {
    inner: Option<Arc<Mutex<RecState>>>,
}

impl TraceRecorder {
    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        TraceRecorder { inner: None }
    }

    /// Opens `path` for writing and emits the meta header line.
    pub fn to_path(path: impl AsRef<Path>, meta: &TraceMeta) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Self::to_writer(BufWriter::new(file), meta)
    }

    /// Records into an arbitrary writer (in-process capture for tests and
    /// benchmarks). Emits the meta header line immediately.
    pub fn to_writer(mut out: impl Write + Send + 'static, meta: &TraceMeta) -> io::Result<Self> {
        out.write_all(meta.encode().as_bytes())?;
        out.write_all(b"\n")?;
        Ok(TraceRecorder {
            inner: Some(Arc::new(Mutex::new(RecState {
                out: Box::new(out),
                next_seq: 1,
                entries: 0,
                write_errors: 0,
            }))),
        })
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends one answered request. A no-op when disabled; write failures
    /// are counted, never propagated — recording must not disturb serving.
    pub fn record(
        &self,
        epoch: u64,
        tick_secs: u64,
        conn: u64,
        request: &Request,
        response: &Response,
        job: Option<u64>,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut state = inner.lock().expect("trace recorder lock");
        let entry = TraceEntry {
            seq: state.next_seq,
            epoch,
            tick_secs,
            conn,
            verb: request.verb().into(),
            job,
            request: request.encode(),
            response: response.encode(),
        };
        state.next_seq += 1;
        let line = entry.encode();
        let ok = state
            .out
            .write_all(line.as_bytes())
            .and_then(|()| state.out.write_all(b"\n"))
            .is_ok();
        if ok {
            state.entries += 1;
        } else {
            state.write_errors += 1;
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().expect("trace recorder lock");
            if state.out.flush().is_err() {
                state.write_errors += 1;
            }
        }
    }

    /// Entries durably handed to the writer so far.
    pub fn entries_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().expect("trace recorder lock").entries)
    }

    /// Entries lost to writer I/O errors.
    pub fn write_errors(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().expect("trace recorder lock").write_errors)
    }
}

/// A clonable in-memory byte sink, used to capture traces and journals
/// in-process (replay, benchmarks, tests).
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// The bytes written so far, as UTF-8 text.
    pub fn take_string(&self) -> String {
        String::from_utf8(self.0.lock().expect("shared buffer lock").clone())
            .expect("recorded text is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buffer lock")
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_telemetry::reqtrace::RequestTrace;

    fn meta() -> TraceMeta {
        TraceMeta {
            version: pqos_telemetry::reqtrace::TRACE_FORMAT_VERSION,
            source: "qosd".into(),
            cluster_size: 8,
            time_scale: 1.0,
            batch_threads: 1,
            quote_horizon_secs: None,
            predictor: "null".into(),
            shards: 1,
            slo: Vec::new(),
            slo_window_secs: pqos_telemetry::slo::DEFAULT_WINDOW_SECS,
        }
    }

    #[test]
    fn records_parse_back_as_a_valid_trace() {
        let buf = SharedBuf::new();
        let rec = TraceRecorder::to_writer(buf.clone(), &meta()).unwrap();
        rec.record(
            1,
            0,
            1,
            &Request::Negotiate {
                id: 1,
                size: 2,
                runtime_secs: 600,
            },
            &Response::Ok { id: 1 },
            Some(1),
        );
        rec.record(
            2,
            5,
            1,
            &Request::Shutdown { id: 2 },
            &Response::Ok { id: 2 },
            None,
        );
        rec.flush();
        let trace = RequestTrace::parse(&buf.take_string()).expect("valid trace");
        assert_eq!(trace.meta, meta());
        assert_eq!(trace.entries.len(), 2);
        assert_eq!(trace.entries[0].verb, "negotiate");
        assert_eq!(trace.entries[0].job, Some(1));
        assert_eq!(trace.entries[1].seq, 2);
        assert_eq!(rec.entries_recorded(), 2);
        assert_eq!(rec.write_errors(), 0);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = TraceRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(
            1,
            0,
            1,
            &Request::Status { id: 1 },
            &Response::Ok { id: 1 },
            None,
        );
        rec.flush();
        assert_eq!(rec.entries_recorded(), 0);
    }
}
