//! Property tests for the sharded admission core.
//!
//! Two invariants keep sharding honest:
//!
//! 1. `ShardedCore::single` is pure delegation — a randomized op stream
//!    through it and through a raw [`NegotiationSession`] must produce
//!    identical decisions AND a byte-identical telemetry journal. If
//!    this drifts, every pre-sharding trace silently stops replaying.
//! 2. An N-way core is deterministic per seed — two independently
//!    constructed cores fed the same stream must emit byte-identical
//!    merged journals, and that journal must satisfy the doctor's
//!    causal checks. This is the property `pqos-replay` leans on.

use pqos_core::config::SimConfig;
use pqos_core::session::{AdmissionRequest, NegotiationSession, SessionOp, SessionOpOutcome};
use pqos_obs::doctor::Doctor;
use pqos_predict::api::NullPredictor;
use pqos_service::record::SharedBuf;
use pqos_service::shard::{partition_spans, ShardedCore};
use pqos_sim_core::rng::DetRng;
use pqos_sim_core::time::{SimDuration, SimTime};
use pqos_telemetry::Telemetry;
use pqos_workload::job::JobId;

/// Builds a deterministic op stream: interleaved quote batches, accepts
/// and cancels of previously quoted jobs, and time advances. The stream
/// depends only on the seed, never on session responses, so two
/// consumers can be fed the exact same sequence.
fn op_stream(seed: u64, max_size: u32, ops: usize) -> Vec<SessionOp> {
    let mut rng = DetRng::seed_from(seed);
    let mut stream = Vec::with_capacity(ops);
    let mut next_job: u64 = 1;
    let mut quoted: Vec<u64> = Vec::new();
    let mut clock: u64 = 0;
    for _ in 0..ops {
        match rng.uniform_u64(0, 10) {
            0..=3 => {
                let batch: Vec<(JobId, AdmissionRequest)> = (0..rng.uniform_u64(1, 3))
                    .map(|_| {
                        let id = next_job;
                        next_job += 1;
                        quoted.push(id);
                        (
                            JobId::new(id),
                            AdmissionRequest {
                                size: rng.uniform_u64(1, u64::from(max_size)) as u32,
                                runtime: SimDuration::from_secs(rng.uniform_u64(300, 7200)),
                            },
                        )
                    })
                    .collect();
                stream.push(SessionOp::QuoteBatch(batch));
            }
            4..=6 if !quoted.is_empty() => {
                let pick = rng.uniform_u64(0, quoted.len() as u64 - 1) as usize;
                stream.push(SessionOp::Accept(JobId::new(quoted[pick])));
            }
            7..=8 if !quoted.is_empty() => {
                let pick = rng.uniform_u64(0, quoted.len() as u64 - 1) as usize;
                stream.push(SessionOp::Cancel(JobId::new(quoted.swap_remove(pick))));
            }
            _ => {
                clock += rng.uniform_u64(1, 1800);
                stream.push(SessionOp::AdvanceTo(SimTime::from_secs(clock)));
            }
        }
    }
    // Always end with a final advance so starts/completions fire and the
    // journal carries release events, not just admissions.
    clock += 86_400;
    stream.push(SessionOp::AdvanceTo(SimTime::from_secs(clock)));
    stream
}

fn journaled_session(nodes: u32, base: u32) -> (NegotiationSession<NullPredictor>, SharedBuf) {
    let buf = SharedBuf::new();
    let telemetry = Telemetry::builder()
        .flush_every(0)
        .jsonl_writer(buf.clone())
        .build();
    let session = NegotiationSession::new(
        SimConfig::paper_defaults().cluster_size_nodes(nodes),
        NullPredictor,
        telemetry,
    )
    .node_base(u64::from(base));
    (session, buf)
}

/// Builds an N-way sharded core over `cluster` nodes, returning the
/// per-plane journal buffers in merge order (shards, then coordinator).
fn sharded_core(cluster: u32, shards: u32) -> (ShardedCore<NullPredictor>, Vec<SharedBuf>) {
    let mut bufs = Vec::new();
    let mut sessions = Vec::new();
    for span in partition_spans(cluster, shards) {
        let (session, buf) = journaled_session(span.width, span.base);
        bufs.push(buf);
        sessions.push(session);
    }
    let wide_buf = SharedBuf::new();
    let coordinator = Telemetry::builder()
        .flush_every(0)
        .jsonl_writer(wide_buf.clone())
        .build();
    bufs.push(wide_buf);
    let core = ShardedCore::sharded(sessions, NullPredictor, coordinator, Telemetry::disabled());
    (core, bufs)
}

fn merged_journal(core: &mut ShardedCore<NullPredictor>, bufs: &[SharedBuf]) -> String {
    core.flush();
    let texts: Vec<String> = bufs.iter().map(SharedBuf::take_string).collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    pqos_telemetry::merge::merge_journals_to_string(&refs)
}

#[test]
fn single_shard_core_is_byte_identical_to_a_raw_session() {
    for seed in [1u64, 42, 0xFEED, 0xD5_2005] {
        let stream = op_stream(seed, 8, 120);

        let (raw_session, raw_buf) = journaled_session(16, 0);
        let mut raw_session = raw_session;
        let (wrapped_session, wrapped_buf) = journaled_session(16, 0);
        let mut core = ShardedCore::single(wrapped_session);

        for op in &stream {
            let raw = raw_session.apply(op, 2);
            let wrapped = core.apply(op, 2);
            assert_eq!(
                format!("{raw:?}"),
                format!("{wrapped:?}"),
                "seed {seed}: outcome diverged on {op:?}"
            );
        }
        assert_eq!(raw_session.live_jobs(), core.live_jobs(), "seed {seed}");
        raw_session.flush();
        core.flush();
        assert_eq!(
            raw_buf.take_string(),
            wrapped_buf.take_string(),
            "seed {seed}: journals diverged"
        );
    }
}

#[test]
fn sharded_journal_merge_is_byte_stable_per_seed() {
    for seed in [7u64, 1234, 0xBEEF] {
        // 4 shards over 32 nodes: 8 nodes each, so sizes up to 8 route
        // narrow and 9..=12 exercise the wide coordinator.
        let stream = op_stream(seed, 12, 150);

        let (mut a, a_bufs) = sharded_core(32, 4);
        let (mut b, b_bufs) = sharded_core(32, 4);
        let mut decisions = 0usize;
        for op in &stream {
            let ra = a.apply(op, 2);
            let rb = b.apply(op, 2);
            assert_eq!(
                format!("{ra:?}"),
                format!("{rb:?}"),
                "seed {seed}: outcome diverged on {op:?}"
            );
            if let SessionOpOutcome::Quotes(qs) = &ra {
                decisions += qs.len();
            }
        }
        assert!(decisions > 0, "seed {seed}: stream produced no quotes");

        let ja = merged_journal(&mut a, &a_bufs);
        let jb = merged_journal(&mut b, &b_bufs);
        assert!(!ja.is_empty(), "seed {seed}: empty merged journal");
        assert_eq!(ja, jb, "seed {seed}: merged journals diverged");

        // The merged stream must still satisfy causal ordering: no event
        // about a job before its submission, releases after admissions.
        let report = Doctor::check_str(&ja);
        assert_eq!(
            report.errors(),
            0,
            "seed {seed}: doctor errors in merged journal: {report:#?}"
        );
    }
}

#[test]
fn narrow_routing_is_sticky_and_covers_every_shard_eventually() {
    // A long single-node stream must spread across shards (the router
    // load-balances by earliest-start, tie-broken by shard index), and
    // every decision must land somewhere: routed_total over all lanes
    // equals the number of quote decisions made.
    let (mut core, _bufs) = sharded_core(16, 4);
    let mut quotes = 0u64;
    for k in 0..40u64 {
        let outcome = core.apply(
            &SessionOp::QuoteBatch(vec![(
                JobId::new(k + 1),
                AdmissionRequest {
                    size: 1,
                    runtime: SimDuration::from_secs(600),
                },
            )]),
            1,
        );
        let SessionOpOutcome::Quotes(qs) = outcome else {
            panic!("quote batch must yield quotes");
        };
        quotes += qs.len() as u64;
        core.apply(&SessionOp::Accept(JobId::new(k + 1)), 1);
    }
    let routed = core.routed_total();
    assert_eq!(routed.len(), 5, "4 shard lanes + wide coordinator lane");
    assert_eq!(routed.iter().sum::<u64>(), quotes);
    assert_eq!(routed[4], 0, "single-node jobs never go wide");
    let shards_hit = routed[..4].iter().filter(|&&n| n > 0).count();
    assert!(
        shards_hit >= 2,
        "40 accepted single-node jobs must spread over shards, got {routed:?}"
    );
}
