//! End-to-end tests: a real daemon on a loopback socket, driven by the
//! load generator and by a protocol fuzzer, with the resulting journal
//! certified by the doctor.

use pqos_core::config::SimConfig;
use pqos_core::session::NegotiationSession;
use pqos_obs::doctor::Doctor;
use pqos_predict::api::NullPredictor;
use pqos_service::engine::EngineConfig;
use pqos_service::loadgen::{self, LoadgenConfig};
use pqos_service::protocol::{Request, Response};
use pqos_service::scrape;
use pqos_service::server::{serve, ServerConfig};
use pqos_sim_core::rng::DetRng;
use pqos_telemetry::{expo, Telemetry};
use pqos_workload::synthetic::LogModel;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A journal sink the test can read back after the daemon drains.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Starts a daemon on a free loopback port; returns its address, the
/// `/metrics` address when requested, and the shared journal buffer. The
/// server thread exits after a shutdown verb.
fn start_daemon_full(
    cluster_size: u32,
    time_scale: f64,
    with_metrics: bool,
) -> (
    String,
    Option<String>,
    SharedBuf,
    std::thread::JoinHandle<()>,
) {
    let journal = SharedBuf::default();
    let telemetry = Telemetry::builder()
        .jsonl_writer(journal.clone())
        .flush_every(64)
        .build();
    let session = NegotiationSession::new(
        SimConfig::paper_defaults().cluster_size_nodes(cluster_size),
        NullPredictor,
        telemetry,
    )
    .verify_parity(true);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let metrics = with_metrics.then(|| TcpListener::bind("127.0.0.1:0").expect("bind metrics"));
    let metrics_addr = metrics
        .as_ref()
        .map(|l| l.local_addr().expect("metrics addr").to_string());
    let config = ServerConfig {
        engine: EngineConfig {
            time_scale,
            verify_parity: true,
            ..EngineConfig::default()
        },
        metrics,
        ..ServerConfig::default()
    };
    let server = std::thread::spawn(move || {
        serve(listener, session, config).expect("serve");
    });
    (addr, metrics_addr, journal, server)
}

fn start_daemon(
    cluster_size: u32,
    time_scale: f64,
) -> (String, SharedBuf, std::thread::JoinHandle<()>) {
    let (addr, _, journal, server) = start_daemon_full(cluster_size, time_scale, false);
    (addr, journal, server)
}

#[test]
fn loadgen_drives_a_daemon_and_the_journal_passes_the_doctor() {
    // Aggressive time scaling so accepted jobs start and complete while
    // the generator is still running — the journal then exercises every
    // lifecycle edge, not just submissions and quotes.
    let (addr, journal, server) = start_daemon(64, 50_000.0);
    let report = loadgen::run(&LoadgenConfig {
        addr,
        threads: 3,
        requests: 600,
        pipeline_depth: 8,
        model: LogModel::NasaIpsc,
        seed: 0xD5_2005,
        accept_probability: 0.7,
        cancel_probability: 0.15,
        shutdown: true,
        connect_timeout: Duration::from_secs(10),
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    server.join().expect("server thread");

    assert_eq!(report.requests, 600, "every negotiate reached an outcome");
    assert!(report.quoted > 0, "some quotes must succeed");
    assert!(report.accepted > 0, "some quotes must be accepted");
    assert_eq!(report.parity_violations, 0, "batched == serial quotes");
    assert!(
        report.parity_checked >= report.quoted,
        "every quote was re-checked"
    );
    assert!(report.throughput_rps > 0.0);

    let bytes = journal.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("journal is UTF-8");
    assert!(!text.is_empty(), "journal must have been written");
    let doctor = Doctor::check_str(&text);
    assert_eq!(
        doctor.errors(),
        0,
        "served journal must be certifiably clean:\n{}",
        doctor.render()
    );

    // The BENCH_service.json document is valid JSON with the agreed keys.
    let json = pqos_telemetry::json::Json::parse(&report.to_json()).expect("report is valid JSON");
    for key in [
        "bench",
        "threads",
        "requests",
        "throughput_rps",
        "quote_latency_us",
        "parity_violations",
        "parity_sample",
        "promises",
    ] {
        assert!(json.get(key).is_some(), "report is missing {key}");
    }
    assert_eq!(
        json.get("promises")
            .and_then(|p| p.get("made"))
            .and_then(|v| v.as_u64()),
        Some(report.promises_made)
    );
    assert!(
        report.promises_made >= report.promises_kept + report.promises_broken,
        "the ledger tiles: resolved promises never exceed made"
    );
    assert_eq!(
        json.get("quote_latency_us")
            .and_then(|q| q.get("p99"))
            .and_then(|v| v.as_u64()),
        Some(report.p99_latency_us)
    );
}

#[test]
fn metrics_endpoint_serves_valid_exposition_under_live_load() {
    let (addr, metrics_addr, _journal, server) = start_daemon_full(64, 50_000.0, true);
    let metrics_addr = metrics_addr.expect("metrics listener requested");

    // Drive the daemon from a background thread while this one scrapes.
    let config = LoadgenConfig {
        addr: addr.clone(),
        threads: 2,
        requests: 400,
        pipeline_depth: 8,
        model: LogModel::NasaIpsc,
        seed: 0xD5_2006,
        accept_probability: 0.7,
        cancel_probability: 0.1,
        shutdown: false,
        connect_timeout: Duration::from_secs(10),
        metrics_addr: Some(metrics_addr.clone()),
        baseline_rps: Some(1.0e6),
        record: None,
    };
    let generator = std::thread::spawn(move || loadgen::run(&config));

    // Mid-burst scrape: keep hitting /metrics until the negotiate counter
    // moves. The daemon cannot drain under us — shutdown comes later.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut mid_burst = None;
    while std::time::Instant::now() < deadline {
        if let Ok(samples) = scrape::scrape_metrics(&metrics_addr, Duration::from_secs(2)) {
            let negotiated = expo::find(
                &samples,
                "pqos_rpc_requests_total",
                &[("verb", "negotiate")],
            )
            .unwrap_or(0.0);
            if negotiated > 0.0 {
                mid_burst = Some(samples);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let mid_burst = mid_burst.expect("a mid-burst scrape must see negotiate traffic");

    let report = generator
        .join()
        .expect("loadgen thread")
        .expect("loadgen run");
    assert_eq!(report.requests, 400);
    assert_eq!(report.parity_violations, 0);

    // The endpoint stayed structurally valid while requests were in flight:
    // per-verb buckets are cumulative and monotone, and the +Inf bucket
    // matches the _count series.
    let buckets: Vec<(f64, f64)> = {
        let mut b: Vec<(f64, f64)> = mid_burst
            .iter()
            .filter(|s| {
                s.name == "pqos_rpc_request_ns_bucket"
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "verb" && v == "negotiate")
            })
            .map(|s| {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| {
                        if v == "+Inf" {
                            f64::INFINITY
                        } else {
                            v.parse().unwrap()
                        }
                    })
                    .unwrap();
                (le, s.value)
            })
            .collect();
        b.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        b
    };
    assert!(buckets.len() >= 2, "bucketed histogram exported");
    for pair in buckets.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "cumulative buckets must be monotone: {buckets:?}"
        );
    }
    let count = expo::find(
        &mid_burst,
        "pqos_rpc_request_ns_count",
        &[("verb", "negotiate")],
    )
    .expect("_count series");
    assert_eq!(buckets.last().unwrap().1, count, "+Inf bucket == _count");

    // The loadgen's own end-of-run scrape made it into the report: the
    // daemon's stage decomposition and the tracing-overhead comparison.
    let server_metrics = report.server.as_ref().expect("server-side scrape embedded");
    assert!(server_metrics.requests_total >= 400);
    assert!(
        !server_metrics.stages_us.is_empty(),
        "negotiate stage latencies decomposed"
    );
    let json = pqos_telemetry::json::Json::parse(&report.to_json()).expect("report JSON");
    assert!(json
        .get("server")
        .and_then(|s| s.get("requests_total"))
        .is_some());
    assert!(json
        .get("tracing_overhead")
        .and_then(|t| t.get("overhead_pct"))
        .is_some());

    // Only now is the daemon told to drain.
    let stream = TcpStream::connect(&addr).expect("connect for shutdown");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", Request::Shutdown { id: 9 }.encode()).expect("write shutdown");
    writer.flush().expect("flush shutdown");
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("read") > 0);
    server.join().expect("server thread");
}

#[test]
fn dump_verb_yields_a_chrome_trace_the_obs_loader_accepts() {
    let (addr, _journal, server) = start_daemon(16, 1.0);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let read_reply = |reader: &mut BufReader<TcpStream>, want: u64| -> Response {
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0);
            if let Some(r) = Response::parse(&line) {
                if r.id() == want {
                    return r;
                }
            }
        }
    };

    // Give the flight recorder something to record.
    writeln!(
        writer,
        "{}",
        Request::Negotiate {
            id: 1,
            size: 2,
            runtime_secs: 600,
        }
        .encode()
    )
    .expect("write negotiate");
    writer.flush().expect("flush");
    let quote = read_reply(&mut reader, 1);
    assert!(matches!(quote, Response::Quote { .. }), "got {quote:?}");

    writeln!(writer, "{}", Request::Dump { id: 2 }.encode()).expect("write dump");
    writer.flush().expect("flush");
    let dump = read_reply(&mut reader, 2);
    let Response::Dump { trace, .. } = dump else {
        panic!("expected a dump reply, got {dump:?}");
    };
    let summary = pqos_obs::load_chrome_trace(&trace).expect("dump is a loadable Chrome trace");
    assert!(
        summary.spans >= 1,
        "at least the dump's own request is on record"
    );
    assert!(summary.metadata >= 1, "process/thread names present");

    writeln!(writer, "{}", Request::Shutdown { id: 3 }.encode()).expect("write shutdown");
    writer.flush().expect("flush");
    server.join().expect("server thread");
}

#[test]
fn status_reports_observability_fields_over_the_wire() {
    let (addr, _journal, server) = start_daemon(16, 1.0);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let read_reply = |reader: &mut BufReader<TcpStream>, want: u64| -> Response {
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0);
            if let Some(r) = Response::parse(&line) {
                if r.id() == want {
                    return r;
                }
            }
        }
    };

    writeln!(
        writer,
        "{}",
        Request::Negotiate {
            id: 1,
            size: 4,
            runtime_secs: 3600,
        }
        .encode()
    )
    .expect("write negotiate");
    writer.flush().expect("flush");
    let Response::Quote { job, .. } = read_reply(&mut reader, 1) else {
        panic!("expected a quote");
    };
    writeln!(writer, "{}", Request::Accept { id: 2, job }.encode()).expect("write accept");
    writer.flush().expect("flush");
    assert!(matches!(read_reply(&mut reader, 2), Response::Ok { .. }));

    writeln!(writer, "{}", Request::Status { id: 3 }.encode()).expect("write status");
    writer.flush().expect("flush");
    let Response::Status { body, .. } = read_reply(&mut reader, 3) else {
        panic!("expected a status reply");
    };
    assert_eq!(body.live_jobs, 1, "the accepted job is live");
    assert_eq!(
        body.queue_depth, 0,
        "nothing queued behind the status probe"
    );
    assert_eq!(body.overloaded, 0, "no refusals on an idle daemon");

    writeln!(writer, "{}", Request::Shutdown { id: 4 }.encode()).expect("write shutdown");
    writer.flush().expect("flush");
    server.join().expect("server thread");
}

#[test]
fn status_reports_a_promise_summary_over_the_wire() {
    // Aggressive time scaling so the accepted job resolves its promise
    // while we poll.
    let (addr, _journal, server) = start_daemon(16, 50_000.0);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let read_reply = |reader: &mut BufReader<TcpStream>, want: u64| -> Response {
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0);
            if let Some(r) = Response::parse(&line) {
                if r.id() == want {
                    return r;
                }
            }
        }
    };

    writeln!(
        writer,
        "{}",
        Request::Negotiate {
            id: 1,
            size: 2,
            runtime_secs: 600,
        }
        .encode()
    )
    .expect("write negotiate");
    writer.flush().expect("flush");
    let Response::Quote { job, .. } = read_reply(&mut reader, 1) else {
        panic!("expected a quote");
    };
    writeln!(writer, "{}", Request::Accept { id: 2, job }.encode()).expect("write accept");
    writer.flush().expect("flush");
    assert!(matches!(read_reply(&mut reader, 2), Response::Ok { .. }));

    // Accepting the quote made the promise; each status poll also drives
    // virtual time, so keep polling until the job's terminal event lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut id = 3;
    let body = loop {
        writeln!(writer, "{}", Request::Status { id }.encode()).expect("write status");
        writer.flush().expect("flush");
        let Response::Status { body, .. } = read_reply(&mut reader, id) else {
            panic!("expected a status reply");
        };
        assert_eq!(body.promises_made, 1, "the accepted quote is a promise");
        if body.promises_kept + body.promises_broken + body.promises_cancelled == 1 {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "promise never resolved: {body:?}"
        );
        id += 1;
        std::thread::sleep(Duration::from_millis(5));
    };
    // NullPredictor quotes p = 1.0 and nothing fails: the promise is
    // kept, and a perfectly-kept p=1.0 bucket has zero residual.
    assert_eq!(body.promises_kept, 1);
    assert_eq!(body.promises_broken, 0);
    assert_eq!(body.worst_residual_milli, 0);
    assert_eq!(body.parity_sample, 1, "tests re-check every batch");

    writeln!(writer, "{}", Request::Shutdown { id: id + 1 }.encode()).expect("write shutdown");
    writer.flush().expect("flush");
    server.join().expect("server thread");
}

#[test]
fn malformed_and_truncated_lines_never_kill_the_connection() {
    let (addr, _journal, server) = start_daemon(16, 1.0);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let mut rng = DetRng::seed_from(0xD5_2005).fork("protocol-fuzz");

    let templates = [
        Request::Negotiate {
            id: 1,
            size: 4,
            runtime_secs: 3600,
        }
        .encode(),
        Request::Accept { id: 2, job: 1 }.encode(),
        Request::Status { id: 3 }.encode(),
    ];
    let await_reply =
        |writer: &mut BufWriter<TcpStream>, reader: &mut BufReader<TcpStream>, sentinel: u64| {
            // A status probe with a unique id; every fuzz volley must leave
            // the daemon able to answer it.
            writeln!(writer, "{}", Request::Status { id: sentinel }.encode()).expect("write probe");
            writer.flush().expect("flush probe");
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line).expect("daemon must stay up");
                assert!(n > 0, "daemon closed the connection mid-fuzz");
                match Response::parse(&line) {
                    Some(response) if response.id() == sentinel => {
                        assert!(matches!(response, Response::Status { .. }));
                        break;
                    }
                    // Replies to garbage (bad_request) or to mutated lines
                    // that happened to stay valid; either way: a reply, not a
                    // disconnect.
                    Some(_) => {}
                    None => panic!("daemon produced an unparseable line: {line:?}"),
                }
            }
        };

    for round in 0..200u64 {
        let template = templates[(rng.uniform_u64(0, templates.len() as u64 - 1)) as usize].clone();
        let mut bytes = template.into_bytes();
        match rng.uniform_u64(0, 3) {
            // Truncate mid-object.
            0 => {
                let cut = rng.uniform_u64(1, bytes.len() as u64 - 1) as usize;
                bytes.truncate(cut);
            }
            // Flip one byte (newlines excluded by construction).
            1 => {
                let at = rng.uniform_u64(0, bytes.len() as u64 - 1) as usize;
                bytes[at] = bytes[at].wrapping_add(1 + rng.uniform_u64(0, 250) as u8);
            }
            // Pure binary garbage, possibly invalid UTF-8.
            2 => {
                bytes = (0..rng.uniform_u64(1, 64))
                    .map(|_| {
                        let b = rng.uniform_u64(0, 255) as u8;
                        if b == b'\n' {
                            b'x'
                        } else {
                            b
                        }
                    })
                    .collect();
            }
            // Valid JSON, nonsense protocol.
            _ => {
                bytes = format!(r#"{{"id":{round},"verb":"explode","job":[1,2]}}"#).into_bytes();
            }
        }
        bytes.push(b'\n');
        writer.write_all(&bytes).expect("write garbage");
        writer.flush().expect("flush garbage");
        if round % 20 == 19 {
            await_reply(&mut writer, &mut reader, 1_000_000 + round);
        }
    }
    await_reply(&mut writer, &mut reader, 2_000_000);

    // A valid negotiation still works after all that.
    writeln!(
        writer,
        "{}",
        Request::Negotiate {
            id: 3_000_000,
            size: 2,
            runtime_secs: 600,
        }
        .encode()
    )
    .expect("write negotiate");
    writer.flush().expect("flush negotiate");
    let quote = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read") > 0);
        if let Some(r) = Response::parse(&line) {
            if r.id() == 3_000_000 {
                break r;
            }
        }
    };
    assert!(
        matches!(quote, Response::Quote { .. }),
        "expected a quote, got {quote:?}"
    );

    writeln!(writer, "{}", Request::Shutdown { id: 4_000_000 }.encode()).expect("write shutdown");
    writer.flush().expect("flush shutdown");
    server.join().expect("server thread");
}

#[test]
fn shutdown_drains_gracefully_and_later_clients_are_refused() {
    let (addr, _journal, server) = start_daemon(8, 1.0);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", Request::Shutdown { id: 1 }.encode()).expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("read") > 0);
    assert_eq!(Response::parse(&line), Some(Response::Ok { id: 1 }));
    server.join().expect("server drains");
    // The listener is gone; new connections are refused or reset.
    match TcpStream::connect(&addr) {
        Err(_) => {}
        Ok(s) => {
            // Accepted by a lingering backlog entry at worst; it must not
            // serve anything.
            let mut w = BufWriter::new(s.try_clone().expect("clone"));
            let _ = writeln!(w, "{}", Request::Status { id: 2 }.encode());
            let _ = w.flush();
            let mut r = BufReader::new(s);
            let mut reply = String::new();
            assert_eq!(
                r.read_line(&mut reply).unwrap_or(0),
                0,
                "no service after drain"
            );
        }
    }
}
