//! Streaming statistics used when characterizing workloads, failure traces,
//! and simulation outputs.

use std::fmt;

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use pqos_sim_core::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`), or 0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`), or 0 if fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            if self.count > 0 { self.min } else { f64::NAN },
            if self.count > 0 { self.max } else { f64::NAN },
        )
    }
}

/// Retained-sample summary supporting exact quantiles.
///
/// Keeps all samples; suitable for the 10⁴–10⁵ observations produced per
/// simulation run.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::stats::Summary;
///
/// let mut s: Summary = (1..=100).map(f64::from).collect();
/// assert_eq!(s.quantile(0.5), Some(50.5));
/// assert_eq!(s.quantile(0.0), Some(1.0));
/// assert_eq!(s.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Linear-interpolated quantile `q ∈ [0, 1]`, or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (the 0.5 quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary {
            samples: iter.into_iter().collect(),
            sorted: false,
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(3.0);
/// h.push(3.5);
/// h.push(-1.0); // underflow
/// h.push(99.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 2);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Iterator over `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * i as f64, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..37].iter().copied().collect();
        let right: OnlineStats = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_quantiles_interpolate() {
        let mut s: Summary = [10.0, 20.0].into_iter().collect();
        assert_eq!(s.quantile(0.5), Some(15.0));
        assert_eq!(s.median(), Some(15.0));
        assert_eq!(s.mean(), Some(15.0));
    }

    #[test]
    fn summary_empty() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn summary_rejects_bad_quantile() {
        let mut s: Summary = [1.0].into_iter().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn histogram_buckets_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0);
        h.push(9.999);
        h.push(10.0); // exactly hi -> overflow
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
        let bins: Vec<_> = h.iter().collect();
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0], (0.0, 1));
    }

    #[test]
    fn display_is_nonempty() {
        let s: OnlineStats = [1.0].into_iter().collect();
        assert!(!s.to_string().is_empty());
    }
}
