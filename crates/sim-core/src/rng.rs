//! Deterministic random-number generation and the distributions used by the
//! synthetic workload and failure-trace generators.
//!
//! Everything in the reproduction must be replayable: the paper's predictor
//! is "deterministic across runs" and its detectabilities are "assigned
//! randomly" but fixed. [`DetRng`] is a seeded PRNG that can be *forked* into
//! independent named substreams, so adding a consumer of randomness in one
//! subsystem never perturbs another subsystem's stream.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman & Vigna) seeded through splitmix64 — no external crates, so
//! the repository builds offline and the stream is stable across toolchains.

/// A deterministic, forkable random-number generator.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::rng::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Substreams with different labels are independent but reproducible.
/// let mut fail = DetRng::seed_from(42).fork("failures");
/// let mut work = DetRng::seed_from(42).fork("workload");
/// assert_ne!(fail.next_u64(), work.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand the seed through splitmix64, the recommended seeding
        // procedure for xoshiro: guarantees a non-zero state and decorrelates
        // nearby seeds.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix(sm)
        };
        DetRng {
            seed,
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent substream keyed by `label`.
    ///
    /// Forking is a pure function of `(parent seed, label)`, not of how much
    /// randomness the parent has already consumed.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::seed_from(splitmix(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of [`DetRng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1) at full f64 precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range is empty: [{lo}, {hi}]");
        let range = hi.wrapping_sub(lo).wrapping_add(1);
        if range == 0 {
            // Full u64 range.
            return self.next_u64();
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - range + 1) % range;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return lo + x % range;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponential sample with the given `mean` (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // Inverse CDF; 1 - unit() avoids ln(0).
        -mean * (1.0 - self.unit()).ln()
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Marsaglia polar method: no trig, numerically robust.
        loop {
            let u = 2.0 * self.unit() - 1.0;
            let v = 2.0 * self.unit() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Log-normal sample with the given parameters of the *underlying*
    /// normal (`mu`, `sigma`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Weibull sample with scale `lambda` and shape `k`.
    ///
    /// `k < 1` yields the decreasing hazard rate typical of hardware
    /// infant-mortality behaviour; `k = 1` is exponential.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` or `k` is not positive.
    pub fn weibull(&mut self, lambda: f64, k: f64) -> f64 {
        assert!(
            lambda > 0.0 && k > 0.0,
            "weibull parameters must be positive"
        );
        lambda * (-(1.0 - self.unit()).ln()).powf(1.0 / k)
    }

    /// Bounded Pareto sample on `[lo, hi]` with tail index `alpha`.
    ///
    /// Used for heavy-tailed job runtimes: most mass near `lo`, rare samples
    /// out to `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `alpha` is not positive, or `hi <= lo`.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "invalid bounded pareto");
        let u = self.unit();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Picks an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index needs positive total weight"
        );
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            items.swap(i, j);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_is_independent_of_consumption() {
        let mut a = DetRng::seed_from(7);
        let _ = a.next_u64(); // consume some state
        let b = DetRng::seed_from(7);
        assert_eq!(
            a.fork("x").next_u64(),
            b.fork("x").next_u64(),
            "fork must depend only on (seed, label)"
        );
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let r = DetRng::seed_from(7);
        assert_ne!(r.fork("a").next_u64(), r.fork("b").next_u64());
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = DetRng::seed_from(3);
        for _ in 0..100_000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x), "unit sample {x} out of range");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::seed_from(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is implausible");
        let mut again = DetRng::seed_from(5);
        let mut buf2 = [0u8; 13];
        again.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::seed_from(11);
        let n = 200_000;
        let mean = 500.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() / mean < 0.02, "estimated {est}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = DetRng::seed_from(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut r = DetRng::seed_from(17);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(10.0, 1000.0, 1.2);
            assert!(
                (10.0..=1000.0 + 1e-9).contains(&x),
                "sample {x} out of bounds"
            );
        }
    }

    #[test]
    fn weibull_with_k1_is_exponential_like() {
        let mut r = DetRng::seed_from(19);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.weibull(100.0, 1.0)).sum();
        let est = sum / n as f64;
        assert!((est - 100.0).abs() / 100.0 < 0.03, "estimated {est}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::seed_from(23);
        let weights = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| r.weighted_index(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(29);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(5.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut r = DetRng::seed_from(37);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.uniform_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_u64_full_range_does_not_hang() {
        let mut r = DetRng::seed_from(41);
        // Degenerate and full ranges both terminate.
        assert_eq!(r.uniform_u64(9, 9), 9);
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn uniform_u64_is_unbiased_over_small_range() {
        // 3 buckets over 300k draws: each within 1% of a third.
        let mut r = DetRng::seed_from(43);
        let mut counts = [0u64; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[r.uniform_u64(0, 2) as usize] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.01, "fraction {frac}");
        }
    }
}
