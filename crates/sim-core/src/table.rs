//! Plain-text table and CSV rendering for experiment output.
//!
//! The experiment harness prints the same rows/series the paper reports;
//! this module keeps that formatting in one place, with no serialization
//! dependencies.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::table::Table;
///
/// let mut t = Table::new(vec!["log".into(), "avg nodes".into()]);
/// t.row(vec!["NASA".into(), "6.3".into()]);
/// t.row(vec!["SDSC".into(), "9.7".into()]);
/// let text = t.render();
/// assert!(text.contains("NASA"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing `,`, `"`, or
    /// newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places, trimming to a compact form.
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxx".into(), "y".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxx"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["h".into()]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(0.123456, 3), "0.123");
        assert_eq!(fnum(2.0, 1), "2.0");
    }

    #[test]
    fn empty_len() {
        let t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
