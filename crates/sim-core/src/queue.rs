//! Deterministic future-event queue.
//!
//! A thin wrapper over a binary heap that orders events by virtual time and
//! breaks ties by insertion order, so two runs of the same simulation always
//! process events in the same order regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: an event of type `E` due at a [`SimTime`].
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    priority: u8,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.priority == other.priority && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, priority, seq) pops first. Priority orders same-time
        // events; sequence numbers make ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.priority.cmp(&self.priority))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::queue::EventQueue;
/// use pqos_sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(10), "b");
/// q.push(SimTime::from_secs(5), "a");
/// q.push(SimTime::from_secs(10), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at` with the default priority (128).
    ///
    /// Events scheduled for the same instant and priority pop in the order
    /// they were pushed.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.push_with_priority(at, 128, event);
    }

    /// Schedules `event` at `at` with an explicit same-time ordering
    /// priority — lower pops first among events due at the same instant.
    ///
    /// Simulators use this to fix the semantics of simultaneous events
    /// (e.g. "failures strike before a same-instant checkpoint completes",
    /// "a finishing job releases its nodes before a same-instant start
    /// claims them").
    pub fn push_with_priority(&mut self, at: SimTime, priority: u8, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            priority,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The time of the earliest pending event, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, e) in iter {
            self.push(at, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for secs in [30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_secs(secs), secs);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = [(SimTime::from_secs(2), 2u32), (SimTime::from_secs(1), 1)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn priorities_order_same_time_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(100);
        q.push_with_priority(t, 5, "start");
        q.push_with_priority(t, 0, "failure");
        q.push_with_priority(t, 1, "finish");
        q.push(t, "default");
        assert_eq!(q.pop().unwrap().1, "failure");
        assert_eq!(q.pop().unwrap().1, "finish");
        assert_eq!(q.pop().unwrap().1, "start");
        assert_eq!(q.pop().unwrap().1, "default");
    }

    #[test]
    fn priority_never_overrides_time() {
        let mut q = EventQueue::new();
        q.push_with_priority(SimTime::from_secs(10), 255, "early-low-prio");
        q.push_with_priority(SimTime::from_secs(20), 0, "late-high-prio");
        assert_eq!(q.pop().unwrap().1, "early-low-prio");
    }

    #[test]
    fn interleaved_push_pop_is_stable() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "x");
        assert_eq!(q.pop().unwrap().1, "x");
        q.push(SimTime::from_secs(2), "y");
        q.push(SimTime::from_secs(2), "z");
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.pop().unwrap().1, "z");
    }
}
