//! Virtual time for discrete-event simulation.
//!
//! All quantities in the paper are expressed in seconds (checkpoint overhead
//! `C = 720 s`, interval `I = 3600 s`, node downtime `120 s`), so simulation
//! time is an integer number of seconds since the start of the simulated
//! epoch. Integer time keeps event ordering exact and replays deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in virtual time, in whole seconds since the simulation epoch.
///
/// `SimTime` is an absolute point on the timeline; [`SimDuration`] is a
/// length of time. The two are kept distinct so that nonsensical operations
/// (adding two instants, for example) do not type-check.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_secs(100);
/// let later = t + SimDuration::from_secs(20);
/// assert_eq!(later.as_secs(), 120);
/// assert_eq!(later - t, SimDuration::from_secs(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in whole seconds.
///
/// # Examples
///
/// ```
/// use pqos_sim_core::time::SimDuration;
///
/// let hour = SimDuration::from_secs(3600);
/// assert_eq!(hour * 2, SimDuration::from_secs(7200));
/// assert_eq!(hour.as_secs(), 3600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (`t = 0`).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the simulation epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    ///
    /// This is the saturating counterpart of `self - earlier` and never
    /// panics.
    ///
    /// # Examples
    ///
    /// ```
    /// use pqos_sim_core::time::{SimTime, SimDuration};
    /// let a = SimTime::from_secs(5);
    /// let b = SimTime::from_secs(9);
    /// assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
    /// assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    /// ```
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Subtracts a duration, saturating at the epoch instead of
    /// underflowing.
    ///
    /// # Examples
    ///
    /// ```
    /// use pqos_sim_core::time::{SimTime, SimDuration};
    /// let t = SimTime::from_secs(100);
    /// assert_eq!(t.saturating_sub(SimDuration::from_secs(30)).as_secs(), 70);
    /// assert_eq!(t.saturating_sub(SimDuration::from_secs(500)), SimTime::ZERO);
    /// ```
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration of `h` hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }

    /// Creates a duration of `d` days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Length in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Length in (fractional) hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

/// A half-open interval of virtual time `[start, end)`.
///
/// Failure predictions in the paper are always asked over a window: "the
/// probability of failure of a partition within a certain future time
/// frame" (§3.1).
///
/// # Examples
///
/// ```
/// use pqos_sim_core::time::{SimTime, SimDuration, TimeWindow};
///
/// let w = TimeWindow::new(SimTime::from_secs(10), SimTime::from_secs(20));
/// assert!(w.contains(SimTime::from_secs(10)));
/// assert!(!w.contains(SimTime::from_secs(20)));
/// assert_eq!(w.length(), SimDuration::from_secs(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    start: SimTime,
    end: SimTime,
}

impl TimeWindow {
    /// Creates the window `[start, end)`. An inverted window is normalized
    /// to the empty window `[start, start)`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        TimeWindow {
            start,
            end: end.max(start),
        }
    }

    /// Creates the window `[start, start + length)`.
    pub fn starting_at(start: SimTime, length: SimDuration) -> Self {
        TimeWindow {
            start,
            end: start.saturating_add(length),
        }
    }

    /// Window start (inclusive).
    pub fn start(self) -> SimTime {
        self.start
    }

    /// Window end (exclusive).
    pub fn end(self) -> SimTime {
        self.end
    }

    /// Window length.
    pub fn length(self) -> SimDuration {
        self.end - self.start
    }

    /// Whether the window contains no instants.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `t` lies inside `[start, end)`.
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}s, {}s)", self.start.as_secs(), self.end.as_secs())
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(secs: u64) -> Self {
        SimDuration(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(32);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a.saturating_since(b).as_secs(), 6);
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        let t = SimTime::MAX;
        assert_eq!(t.saturating_add(SimDuration::from_secs(5)), SimTime::MAX);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
        assert!((SimDuration::from_secs(1800).as_hours_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_order_correctly() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(3);
        let y = SimDuration::from_secs(7);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_secs(100);
        assert_eq!(d * 3, SimDuration::from_secs(300));
        assert_eq!(d / 4, SimDuration::from_secs(25));
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs(5).saturating_sub(SimDuration::from_secs(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(42).to_string(), "t=42s");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
    }

    #[test]
    fn window_normalizes_inverted_bounds() {
        let w = TimeWindow::new(SimTime::from_secs(20), SimTime::from_secs(10));
        assert!(w.is_empty());
        assert_eq!(w.length(), SimDuration::ZERO);
        assert!(!w.contains(SimTime::from_secs(20)));
    }

    #[test]
    fn window_starting_at() {
        let w = TimeWindow::starting_at(SimTime::from_secs(5), SimDuration::from_secs(10));
        assert_eq!(w.start(), SimTime::from_secs(5));
        assert_eq!(w.end(), SimTime::from_secs(15));
        assert!(w.contains(SimTime::from_secs(14)));
        assert!(!w.contains(SimTime::from_secs(4)));
        assert!(!w.to_string().is_empty());
    }

    #[test]
    fn window_saturates_at_max() {
        let w = TimeWindow::starting_at(SimTime::MAX, SimDuration::from_secs(10));
        assert!(w.is_empty());
    }
}
