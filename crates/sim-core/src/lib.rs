//! # pqos-sim-core
//!
//! Discrete-event simulation kernel for the *Probabilistic QoS Guarantees
//! for Supercomputing Systems* (DSN 2005) reproduction.
//!
//! This crate is the substrate everything else stands on:
//!
//! * [`time`] — integer virtual time ([`time::SimTime`], [`time::SimDuration`]);
//! * [`queue`] — a future-event list with deterministic FIFO tie-breaking;
//! * [`rng`] — a seeded, forkable PRNG plus the distributions needed by the
//!   synthetic workload and failure-trace generators (exponential,
//!   log-normal, Weibull, bounded Pareto, ...);
//! * [`stats`] — streaming statistics (Welford), exact quantiles, histograms;
//! * [`table`] — plain-text/CSV table rendering for the experiment harness.
//!
//! # Examples
//!
//! A tiny event-driven loop:
//!
//! ```
//! use pqos_sim_core::queue::EventQueue;
//! use pqos_sim_core::time::{SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO, Ev::Ping(0));
//! let mut fired = 0;
//! while let Some((now, Ev::Ping(k))) = q.pop() {
//!     fired += 1;
//!     if k < 3 {
//!         q.push(now + SimDuration::from_secs(10), Ev::Ping(k + 1));
//!     }
//! }
//! assert_eq!(fired, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use queue::EventQueue;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime, TimeWindow};
