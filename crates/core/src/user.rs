//! Simulated user risk strategies (§4.2).
//!
//! "User behavior is defined by a parameter `U`, which relates to the
//! amount of risk the user is willing to accept. For a given job `j`, with
//! promised probability of success `pj`, a simulated user will accept the
//! earliest deadline such that `pj ≥ U`" (Eq. 3).
//!
//! Note on a paper ambiguity: §4.2 elsewhere claims the results are
//! insensitive to `U` "when `a < U`" by comparing the *failure* probability
//! to `U`. That statement is inconsistent with Eq. 3 (which compares a
//! *success* probability). We implement Eq. 3 as written; since the oracle
//! never quotes `pf > a`, every promise satisfies `pj ≥ 1 − a`, and the
//! metrics are therefore insensitive to `U` exactly when `U ≤ 1 − a`. For
//! the paper's Figure 7 (`a = 0.5`) the knee lands at `U = 0.5` under
//! either reading. See DESIGN.md.

use std::fmt;

/// Error constructing a [`UserStrategy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdError(pub f64);

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "risk threshold {} outside [0, 1]", self.0)
    }
}

impl std::error::Error for ThresholdError {}

/// How a simulated user trades deadline for probability of success.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum UserStrategy {
    /// Accept the earliest quoted deadline unconditionally (`U = 0`).
    #[default]
    AlwaysEarliest,
    /// Accept the earliest deadline whose promised success probability is
    /// at least the threshold `U` (the paper's Eq. 3).
    RiskThreshold(f64),
}

impl UserStrategy {
    /// Creates a risk-threshold strategy.
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdError`] if `u` is outside `[0, 1]` or NaN.
    ///
    /// # Examples
    ///
    /// ```
    /// use pqos_core::user::UserStrategy;
    ///
    /// let cautious = UserStrategy::risk_threshold(0.9)?;
    /// assert!(cautious.accepts(0.95));
    /// assert!(!cautious.accepts(0.80));
    /// # Ok::<(), pqos_core::user::ThresholdError>(())
    /// ```
    pub fn risk_threshold(u: f64) -> Result<Self, ThresholdError> {
        if !(0.0..=1.0).contains(&u) {
            return Err(ThresholdError(u));
        }
        Ok(UserStrategy::RiskThreshold(u))
    }

    /// The threshold `U` this strategy enforces (0 for
    /// [`UserStrategy::AlwaysEarliest`]).
    pub fn threshold(&self) -> f64 {
        match self {
            UserStrategy::AlwaysEarliest => 0.0,
            UserStrategy::RiskThreshold(u) => *u,
        }
    }

    /// Whether the user accepts a quote promising success probability
    /// `promised_success`.
    pub fn accepts(&self, promised_success: f64) -> bool {
        promised_success >= self.threshold()
    }
}

impl fmt::Display for UserStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserStrategy::AlwaysEarliest => write!(f, "U=earliest"),
            UserStrategy::RiskThreshold(u) => write!(f, "U={u:.2}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_accepts_anything() {
        assert!(UserStrategy::AlwaysEarliest.accepts(0.0));
        assert!(UserStrategy::AlwaysEarliest.accepts(1.0));
        assert_eq!(UserStrategy::AlwaysEarliest.threshold(), 0.0);
    }

    #[test]
    fn threshold_is_inclusive() {
        let u = UserStrategy::risk_threshold(0.5).unwrap();
        assert!(u.accepts(0.5));
        assert!(u.accepts(0.51));
        assert!(!u.accepts(0.4999));
        assert_eq!(u.threshold(), 0.5);
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            UserStrategy::risk_threshold(-0.1),
            Err(ThresholdError(-0.1))
        );
        assert_eq!(
            UserStrategy::risk_threshold(1.01),
            Err(ThresholdError(1.01))
        );
        assert!(UserStrategy::risk_threshold(f64::NAN).is_err());
        assert!(!ThresholdError(2.0).to_string().is_empty());
    }

    #[test]
    fn boundary_thresholds() {
        let zero = UserStrategy::risk_threshold(0.0).unwrap();
        assert!(zero.accepts(0.0));
        let one = UserStrategy::risk_threshold(1.0).unwrap();
        assert!(one.accepts(1.0));
        assert!(!one.accepts(0.999_999));
    }

    #[test]
    fn display_and_default() {
        assert_eq!(UserStrategy::default(), UserStrategy::AlwaysEarliest);
        assert_eq!(UserStrategy::AlwaysEarliest.to_string(), "U=earliest");
        assert_eq!(
            UserStrategy::risk_threshold(0.9).unwrap().to_string(),
            "U=0.90"
        );
    }
}
