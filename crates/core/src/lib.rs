//! # pqos-core
//!
//! Reproduction of *Probabilistic QoS Guarantees for Supercomputing
//! Systems* (Oliner, Rudolph, Sahoo, Moreira, Gupta — DSN 2005): a
//! supercomputing control system that makes promises of the form "job `j`
//! can be completed by deadline `d` with probability `p`", backed by event
//! prediction, fault-aware scheduling, and cooperative checkpointing.
//!
//! * [`config`] — simulation configuration (the paper's Table 2 defaults);
//! * [`user`] — simulated user risk strategies (parameter `U`, Eq. 3);
//! * [`negotiate`] — the deadline/probability dialog between system and
//!   user;
//! * [`metrics`] — QoS (Eq. 2), utilization, and lost work;
//! * [`system`] — the event-driven trace simulator tying everything to the
//!   `pqos-*` substrate crates;
//! * [`session`] — the quote → accept → run lifecycle as a reusable state
//!   machine, for online services that negotiate request-by-request.
//!
//! # Quickstart
//!
//! ```
//! use pqos_core::config::SimConfig;
//! use pqos_core::system::QosSimulator;
//! use pqos_core::user::UserStrategy;
//! use pqos_failures::synthetic::AixLikeTrace;
//! use pqos_workload::synthetic::{LogModel, SyntheticLog};
//! use std::sync::Arc;
//!
//! let log = SyntheticLog::new(LogModel::SdscSp2).jobs(200).seed(7).build();
//! let trace = Arc::new(AixLikeTrace::new().days(90.0).seed(7).build());
//! let config = SimConfig::paper_defaults()
//!     .accuracy(0.7)
//!     .user(UserStrategy::risk_threshold(0.5).unwrap());
//! let output = QosSimulator::new(config, log, trace).run();
//! println!("{}", output.report);
//! assert!(output.report.qos > 0.0 && output.report.qos <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod negotiate;
pub mod session;
pub mod system;
pub mod user;

pub use config::{CheckpointPolicyKind, SimConfig};
pub use metrics::{CalibrationBucket, JobOutcome, LostWorkEvent, MetricsCollector, SimReport};
pub use negotiate::{negotiate_batch, NegotiationOutcome, Quote};
pub use session::{
    AcceptError, AdmissionRequest, CancelError, HeldQuote, NegotiationSession, QuoteDecision,
    SessionStats, SessionStatus,
};
pub use system::{QosSimulator, SimOutput};
pub use user::UserStrategy;
