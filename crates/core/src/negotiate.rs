//! Deadline negotiation: the paper's "unique dialog between the system and
//! the user" (§3.5).
//!
//! For a job of a given size and (checkpointed) duration, the system quotes
//! successive `(deadline, probability-of-success)` pairs in increasing
//! deadline order; the simulated user accepts the earliest quote whose
//! promised success probability meets their risk threshold `U` (Eq. 3), and
//! otherwise takes the earliest quote within a small tolerance of the best
//! promise seen — "a deadline may be pushed arbitrarily far into the
//! future, but no further than necessary".
//!
//! Candidate deadlines come from the reservation book's placement slots;
//! when the book runs out (the machine is idle past its last commitment)
//! the search keeps probing forward in fixed steps, because an idle machine
//! can still carry predicted failures worth dodging.

use crate::user::UserStrategy;
use pqos_cluster::node::NodeId;
use pqos_cluster::partition::Partition;
use pqos_cluster::topology::Topology;
use pqos_predict::api::Predictor;
use pqos_sched::place::{choose_partition_with_telemetry, PlacementStrategy};
use pqos_sched::reservation::AvailabilityView;
use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
use pqos_telemetry::Telemetry;
use std::fmt;

/// One quoted offer: start the job at `start` on `partition`, finishing by
/// `deadline`, with the given predicted failure probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// Proposed start time.
    pub start: SimTime,
    /// Proposed deadline (`start` plus the checkpointed execution time).
    pub deadline: SimTime,
    /// Proposed partition.
    pub partition: Partition,
    /// Predicted probability the partition fails during the run (`pf`).
    pub failure_probability: f64,
}

impl Quote {
    /// The promised probability of success, `pj = 1 − pf`.
    pub fn promised_success(&self) -> f64 {
        1.0 - self.failure_probability
    }
}

impl fmt::Display for Quote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "start {} deadline {} p={:.3}",
            self.start,
            self.deadline,
            self.promised_success()
        )
    }
}

/// Result of a negotiation.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiationOutcome {
    /// The accepted quote.
    pub accepted: Quote,
    /// How many quotes were examined (≥ 1).
    pub quotes_examined: usize,
    /// Whether the accepted quote met the user's threshold (`false` means
    /// the user took the best available after exhausting the search).
    pub satisfied_threshold: bool,
}

/// Negotiation inputs that do not vary per quote.
#[derive(Debug, Clone, Copy)]
pub struct NegotiationRequest<'a> {
    /// Job size in nodes.
    pub size: u32,
    /// Checkpointed execution time `Ej` used for the reservation length.
    pub duration: SimDuration,
    /// Current simulation time (quotes start at or after this).
    pub now: SimTime,
    /// Nodes currently down.
    pub down: &'a [NodeId],
    /// Instant by which every down node has recovered; used to retry when
    /// exclusions make the job temporarily unplaceable.
    pub recovery_horizon: SimTime,
    /// How far before a candidate start a failure still threatens the
    /// deadline: a node that fails within this span of the start is mid-
    /// restart at the start instant, delaying the job. Set to the node
    /// downtime; the quoted `pf` window is extended backwards by this much.
    pub pre_start_risk: SimDuration,
}

/// Runs the negotiation.
///
/// Returns `None` only when the job can never fit (`size` exceeds the
/// cluster size).
///
/// # Examples
///
/// ```
/// use pqos_cluster::topology::Topology;
/// use pqos_core::negotiate::{negotiate, NegotiationRequest};
/// use pqos_core::user::UserStrategy;
/// use pqos_predict::api::NullPredictor;
/// use pqos_sched::place::PlacementStrategy;
/// use pqos_sched::reservation::ReservationBook;
/// use pqos_sim_core::time::{SimDuration, SimTime};
///
/// let book = ReservationBook::new(16);
/// let outcome = negotiate(
///     &book,
///     Topology::Flat,
///     PlacementStrategy::MinFailureProbability,
///     &NullPredictor,
///     NegotiationRequest {
///         size: 4,
///         duration: SimDuration::from_secs(100),
///         now: SimTime::ZERO,
///         down: &[],
///         recovery_horizon: SimTime::ZERO,
///         pre_start_risk: SimDuration::from_secs(120),
///     },
///     &UserStrategy::AlwaysEarliest,
///     8,
///     8,
/// )
/// .unwrap();
/// assert_eq!(outcome.accepted.start, SimTime::ZERO);
/// assert_eq!(outcome.accepted.deadline, SimTime::from_secs(100));
/// assert!(outcome.satisfied_threshold);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn negotiate<B: AvailabilityView, P: Predictor>(
    book: &B,
    topology: Topology,
    placement: PlacementStrategy,
    predictor: &P,
    request: NegotiationRequest<'_>,
    user: &UserStrategy,
    max_slots: usize,
    max_probe_steps: usize,
) -> Option<NegotiationOutcome> {
    negotiate_with_telemetry(
        book,
        topology,
        placement,
        predictor,
        request,
        user,
        max_slots,
        max_probe_steps,
        &Telemetry::disabled(),
    )
}

/// [`negotiate`] with every placement decision recorded into `telemetry`'s
/// metrics registry (`sched.*` — see
/// [`choose_partition_with_telemetry`]). The outcome is identical.
#[allow(clippy::too_many_arguments)]
pub fn negotiate_with_telemetry<B: AvailabilityView, P: Predictor>(
    book: &B,
    topology: Topology,
    placement: PlacementStrategy,
    predictor: &P,
    request: NegotiationRequest<'_>,
    user: &UserStrategy,
    max_slots: usize,
    max_probe_steps: usize,
    telemetry: &Telemetry,
) -> Option<NegotiationOutcome> {
    if request.size == 0 || request.size > book.cluster_size() {
        return None;
    }
    let max_slots = max_slots.max(1);
    // Down nodes are excluded only from candidate windows that *begin
    // before* `recovery_horizon` — by the horizon they are back (the probe
    // loop below applies the same boundary). A single excluded pass would
    // treat a window starting at or exactly on the horizon as if the
    // recovered nodes were still gone, skipping perfectly usable holes.
    let mut slots = if request.down.is_empty() || request.recovery_horizon <= request.now {
        book.earliest_slots(
            request.size,
            request.duration,
            request.now,
            request.down,
            max_slots,
        )
    } else {
        let mut pre = book.earliest_slots(
            request.size,
            request.duration,
            request.now,
            request.down,
            max_slots,
        );
        pre.retain(|s| s.start < request.recovery_horizon);
        let post = book.earliest_slots(
            request.size,
            request.duration,
            request.recovery_horizon,
            &[],
            max_slots,
        );
        // Starts stay strictly increasing: every retained pre-horizon
        // start precedes every post-horizon one.
        pre.extend(post);
        pre.truncate(max_slots);
        pre
    };
    if slots.is_empty() {
        // Down nodes blocked every slot; by the recovery horizon they are
        // back. The machine past its last commitment is otherwise free.
        let from = request.recovery_horizon.max(request.now);
        slots = book.earliest_slots(request.size, request.duration, from, &[], max_slots);
    }

    // When no quote satisfies the user, the fallback is the *earliest*
    // quote whose promise is within this tolerance of the best promise
    // seen — extending a deadline for a marginal probability gain is not
    // "necessary" in the Eq. 3 sense. Without the tolerance, a predictor
    // with small per-partition variations (e.g. a rate model) would push
    // jobs arbitrarily far into the future chasing 0.1% improvements.
    const PROMISE_TOLERANCE: f64 = 0.01;

    let mut examined = 0usize;
    let mut rejected: Vec<Quote> = Vec::new();
    let mut consider = |quote: Quote, examined: &mut usize| -> Option<Quote> {
        *examined += 1;
        if user.accepts(quote.promised_success()) {
            return Some(quote);
        }
        rejected.push(quote);
        None
    };

    let risk_window = |start: SimTime| {
        TimeWindow::new(
            start.saturating_sub(request.pre_start_risk),
            start.saturating_add(request.duration),
        )
    };
    for slot in &slots {
        let window = TimeWindow::starting_at(slot.start, request.duration);
        let Some(choice) = choose_partition_with_telemetry(
            topology,
            &slot.free,
            request.size,
            risk_window(slot.start),
            predictor,
            placement,
            telemetry,
        ) else {
            continue;
        };
        let quote = Quote {
            start: slot.start,
            deadline: window.end(),
            partition: choice.partition,
            failure_probability: choice.failure_probability,
        };
        if let Some(accepted) = consider(quote, &mut examined) {
            return Some(NegotiationOutcome {
                accepted,
                quotes_examined: examined,
                satisfied_threshold: true,
            });
        }
    }

    // Probe past the book: step the start forward by the job duration from
    // the latest slot examined (or from `now` if the book was empty).
    let probe_base = slots.last().map(|s| s.start).unwrap_or(request.now);
    let step = request.duration.max(SimDuration::from_secs(1));
    for k in 1..=max_probe_steps {
        let start = probe_base.saturating_add(step.saturating_mul(k as u64));
        let window = TimeWindow::starting_at(start, request.duration);
        // Down nodes are back up by the recovery horizon, so only probe
        // windows that begin before it need the exclusion; keeping it for
        // later windows makes quotes needlessly pessimistic and can leave
        // every probe unplaceable on a small cluster.
        let exclude: &[NodeId] = if start < request.recovery_horizon {
            request.down
        } else {
            &[]
        };
        let free = book.free_nodes_during(window, exclude);
        let Some(choice) = choose_partition_with_telemetry(
            topology,
            &free,
            request.size,
            risk_window(start),
            predictor,
            placement,
            telemetry,
        ) else {
            continue;
        };
        let quote = Quote {
            start,
            deadline: window.end(),
            partition: choice.partition,
            failure_probability: choice.failure_probability,
        };
        if let Some(accepted) = consider(quote, &mut examined) {
            return Some(NegotiationOutcome {
                accepted,
                quotes_examined: examined,
                satisfied_threshold: true,
            });
        }
    }

    // Guaranteed fallback: at the end of the book (past every commitment
    // and past the recovery horizon) the machine is idle and fully up, so
    // any job that fits the cluster places — even under contiguous-only
    // topologies where fragmented slots and probes can all fail.
    if examined == 0 {
        let book_end = book
            .change_points(request.now)
            .last()
            .copied()
            .unwrap_or(request.now);
        let start = book_end.max(request.recovery_horizon).max(request.now);
        let window = TimeWindow::starting_at(start, request.duration);
        let free = book.free_nodes_during(window, &[]);
        let choice = choose_partition_with_telemetry(
            topology,
            &free,
            request.size,
            risk_window(start),
            predictor,
            placement,
            telemetry,
        )?;
        let quote = Quote {
            start,
            deadline: window.end(),
            partition: choice.partition,
            failure_probability: choice.failure_probability,
        };
        if let Some(accepted) = consider(quote, &mut examined) {
            return Some(NegotiationOutcome {
                accepted,
                quotes_examined: examined,
                satisfied_threshold: true,
            });
        }
    }

    let best_promise = rejected
        .iter()
        .map(Quote::promised_success)
        .fold(f64::NEG_INFINITY, f64::max);
    // Quotes were pushed in increasing-start order, so the first within
    // tolerance is the earliest acceptable compromise.
    let chosen = rejected
        .into_iter()
        .find(|q| q.promised_success() >= best_promise - PROMISE_TOLERANCE)?;
    Some(NegotiationOutcome {
        accepted: chosen,
        quotes_examined: examined,
        satisfied_threshold: false,
    })
}

/// Runs many independent negotiations against one shared availability
/// snapshot, fanning out across `threads` OS threads.
///
/// Quoting never mutates the book, so every request sees the identical
/// snapshot and the result is *defined* to equal calling [`negotiate`]
/// serially on each request in order — the parity the online service's
/// batched admission pipeline depends on (asserted by randomized
/// interleaving tests in `tests/properties.rs`). The fan-out only changes
/// wall-clock time: requests are split into contiguous chunks, one chunk
/// per worker, and results land in request order.
///
/// `threads == 0` or `1`, or a batch smaller than two requests, short-
/// circuits to the serial loop.
#[allow(clippy::too_many_arguments)]
pub fn negotiate_batch<B, P>(
    book: &B,
    topology: Topology,
    placement: PlacementStrategy,
    predictor: &P,
    requests: &[NegotiationRequest<'_>],
    user: &UserStrategy,
    max_slots: usize,
    max_probe_steps: usize,
    threads: usize,
) -> Vec<Option<NegotiationOutcome>>
where
    B: AvailabilityView + Sync,
    P: Predictor + Sync,
{
    let serial = |reqs: &[NegotiationRequest<'_>]| -> Vec<Option<NegotiationOutcome>> {
        reqs.iter()
            .map(|req| {
                negotiate(
                    book,
                    topology,
                    placement,
                    predictor,
                    *req,
                    user,
                    max_slots,
                    max_probe_steps,
                )
            })
            .collect()
    };
    let workers = threads.min(requests.len());
    if workers <= 1 {
        return serial(requests);
    }
    let chunk = requests.len().div_ceil(workers);
    let mut results: Vec<Vec<Option<NegotiationOutcome>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk)
            .map(|reqs| scope.spawn(move || serial(reqs)))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("negotiation worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_failures::trace::{Failure, FailureTrace};
    use pqos_predict::api::NullPredictor;
    use pqos_predict::oracle::TraceOracle;
    use pqos_sched::reservation::ReservationBook;
    use pqos_workload::job::JobId;
    use std::sync::Arc;

    fn oracle(failures: &[(u64, u32, f64)], a: f64) -> TraceOracle {
        let trace = FailureTrace::new(
            failures
                .iter()
                .map(|&(t, n, px)| Failure {
                    time: SimTime::from_secs(t),
                    node: NodeId::new(n),
                    detectability: px,
                })
                .collect(),
        )
        .unwrap();
        TraceOracle::new(Arc::new(trace), a).unwrap()
    }

    fn request(size: u32, duration: u64) -> NegotiationRequest<'static> {
        NegotiationRequest {
            size,
            duration: SimDuration::from_secs(duration),
            now: SimTime::ZERO,
            down: &[],
            recovery_horizon: SimTime::ZERO,
            pre_start_risk: SimDuration::from_secs(120),
        }
    }

    fn run<P: Predictor>(
        book: &ReservationBook,
        predictor: &P,
        req: NegotiationRequest<'_>,
        user: &UserStrategy,
    ) -> Option<NegotiationOutcome> {
        negotiate(
            book,
            Topology::Flat,
            PlacementStrategy::MinFailureProbability,
            predictor,
            req,
            user,
            16,
            16,
        )
    }

    #[test]
    fn earliest_user_takes_first_quote() {
        let book = ReservationBook::new(8);
        let o = run(
            &book,
            &NullPredictor,
            request(4, 100),
            &UserStrategy::AlwaysEarliest,
        )
        .unwrap();
        assert_eq!(o.accepted.start, SimTime::ZERO);
        assert_eq!(o.quotes_examined, 1);
        assert!(o.satisfied_threshold);
    }

    #[test]
    fn oversized_job_is_rejected() {
        let book = ReservationBook::new(8);
        assert!(run(
            &book,
            &NullPredictor,
            request(9, 100),
            &UserStrategy::AlwaysEarliest
        )
        .is_none());
        assert!(run(
            &book,
            &NullPredictor,
            request(0, 100),
            &UserStrategy::AlwaysEarliest
        )
        .is_none());
    }

    #[test]
    fn cautious_user_extends_past_predicted_failure() {
        // All 2 nodes carry a detectable failure at t=50; a cautious user
        // delays until the window clears.
        let o = oracle(&[(50, 0, 0.4), (50, 1, 0.4)], 1.0);
        let book = ReservationBook::new(2);
        let user = UserStrategy::risk_threshold(0.9).unwrap();
        let outcome = run(&book, &o, request(2, 100), &user).unwrap();
        assert!(outcome.satisfied_threshold);
        // The window [start, start+100) must exclude the failure at t=50.
        assert!(outcome.accepted.start > SimTime::from_secs(50));
        assert_eq!(outcome.accepted.failure_probability, 0.0);
        assert!(outcome.quotes_examined > 1);
    }

    #[test]
    fn bold_user_takes_risky_first_slot() {
        let o = oracle(&[(50, 0, 0.4), (50, 1, 0.4)], 1.0);
        let book = ReservationBook::new(2);
        let outcome = run(&book, &o, request(2, 100), &UserStrategy::AlwaysEarliest).unwrap();
        assert_eq!(outcome.accepted.start, SimTime::ZERO);
        assert_eq!(outcome.accepted.failure_probability, 0.4);
        assert!((outcome.accepted.promised_success() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn falls_back_to_best_quote_when_unsatisfiable() {
        // Node 0 (the only node) fails detectably every 10 s forever within
        // the search horizon; U = 1 cannot be met.
        let failures: Vec<(u64, u32, f64)> = (0..100_000)
            .step_by(10)
            .map(|t| (t as u64, 0, 0.5))
            .collect();
        let o = oracle(&failures, 1.0);
        let book = ReservationBook::new(1);
        let user = UserStrategy::risk_threshold(1.0).unwrap();
        let outcome = run(&book, &o, request(1, 100), &user).unwrap();
        assert!(!outcome.satisfied_threshold);
        assert_eq!(outcome.accepted.failure_probability, 0.5);
    }

    #[test]
    fn waits_for_reservations_when_machine_full() {
        let mut book = ReservationBook::new(4);
        book.add(
            JobId::new(1),
            Partition::contiguous(0, 4),
            TimeWindow::new(SimTime::ZERO, SimTime::from_secs(500)),
        )
        .unwrap();
        let o = run(
            &book,
            &NullPredictor,
            request(3, 100),
            &UserStrategy::AlwaysEarliest,
        )
        .unwrap();
        assert_eq!(o.accepted.start, SimTime::from_secs(500));
        assert_eq!(o.accepted.deadline, SimTime::from_secs(600));
    }

    #[test]
    fn down_nodes_trigger_recovery_retry() {
        // 2-node cluster, both down; recovery at t=120.
        let book = ReservationBook::new(2);
        let down = [NodeId::new(0), NodeId::new(1)];
        let req = NegotiationRequest {
            size: 2,
            duration: SimDuration::from_secs(100),
            now: SimTime::ZERO,
            down: &down,
            recovery_horizon: SimTime::from_secs(120),
            pre_start_risk: SimDuration::from_secs(120),
        };
        let o = negotiate(
            &book,
            Topology::Flat,
            PlacementStrategy::MinFailureProbability,
            &NullPredictor,
            req,
            &UserStrategy::AlwaysEarliest,
            4,
            4,
        )
        .unwrap();
        assert_eq!(o.accepted.start, SimTime::from_secs(120));
    }

    #[test]
    fn probe_windows_past_recovery_horizon_include_recovered_nodes() {
        // Both nodes of a 2-node cluster are down until t=120, and a
        // detectable failure at t=150 poisons the first post-recovery
        // window. A cautious user must wait for a later probe window —
        // which only places if probes past the horizon stop excluding the
        // recovered nodes.
        let o = oracle(&[(150, 0, 0.5), (150, 1, 0.5)], 1.0);
        let down = [NodeId::new(0), NodeId::new(1)];
        let req = NegotiationRequest {
            size: 2,
            duration: SimDuration::from_secs(100),
            now: SimTime::ZERO,
            down: &down,
            recovery_horizon: SimTime::from_secs(120),
            pre_start_risk: SimDuration::from_secs(120),
        };
        let book = ReservationBook::new(2);
        let user = UserStrategy::risk_threshold(0.9).unwrap();
        let outcome = negotiate(
            &book,
            Topology::Flat,
            PlacementStrategy::MinFailureProbability,
            &o,
            req,
            &user,
            4,
            8,
        )
        .unwrap();
        // The recovery-retry slot at t=120 still sees the t=150 failure in
        // its risk window [0, 220); the first clean window starts at t=320
        // (risk window [200, 420)), reachable only through the probes.
        assert!(outcome.satisfied_threshold);
        assert_eq!(outcome.accepted.start, SimTime::from_secs(320));
        assert_eq!(outcome.accepted.failure_probability, 0.0);
    }

    #[test]
    fn slot_starting_exactly_at_horizon_uses_recovered_nodes() {
        // Node 0 is down until t=100; nodes 1-2 are booked solid until
        // t=1000. The only early hole is node 0 itself, in a window that
        // begins *exactly at* the recovery horizon — where the node is
        // back. Quoting t=1000 here (as a single excluded slot pass did)
        // is the regression this test pins.
        let mut book = ReservationBook::new(3);
        book.add(
            JobId::new(1),
            Partition::contiguous(1, 2),
            TimeWindow::new(SimTime::ZERO, SimTime::from_secs(1000)),
        )
        .unwrap();
        let down = [NodeId::new(0)];
        let req = NegotiationRequest {
            size: 1,
            duration: SimDuration::from_secs(50),
            now: SimTime::ZERO,
            down: &down,
            recovery_horizon: SimTime::from_secs(100),
            pre_start_risk: SimDuration::from_secs(120),
        };
        let o = run(&book, &NullPredictor, req, &UserStrategy::AlwaysEarliest).unwrap();
        assert_eq!(o.accepted.start, SimTime::from_secs(100));
        assert!(o.accepted.partition.iter().eq([NodeId::new(0)]));
    }

    #[test]
    fn post_horizon_slots_merge_after_pre_horizon_ones() {
        // Node 0 down until t=100. Nodes 1-3 busy until t=100, then 2-3
        // stay busy until t=1000. A 2-node job fits at t=100 on the
        // recovered node 0 plus node 1 — not at t=1000.
        let mut book = ReservationBook::new(4);
        book.add(
            JobId::new(1),
            Partition::contiguous(1, 3),
            TimeWindow::new(SimTime::ZERO, SimTime::from_secs(100)),
        )
        .unwrap();
        book.add(
            JobId::new(2),
            Partition::contiguous(2, 2),
            TimeWindow::new(SimTime::from_secs(100), SimTime::from_secs(1000)),
        )
        .unwrap();
        let down = [NodeId::new(0)];
        let req = NegotiationRequest {
            size: 2,
            duration: SimDuration::from_secs(100),
            now: SimTime::ZERO,
            down: &down,
            recovery_horizon: SimTime::from_secs(100),
            pre_start_risk: SimDuration::from_secs(120),
        };
        let o = run(&book, &NullPredictor, req, &UserStrategy::AlwaysEarliest).unwrap();
        assert_eq!(o.accepted.start, SimTime::from_secs(100));
        assert!(o
            .accepted
            .partition
            .iter()
            .eq([NodeId::new(0), NodeId::new(1)]));
    }

    #[test]
    fn pre_horizon_slots_still_exclude_down_nodes() {
        // A hole at t=50 opens well before the t=1000 horizon: the down
        // node must stay excluded from it even though later windows may
        // use it.
        let mut book = ReservationBook::new(3);
        book.add(
            JobId::new(1),
            Partition::contiguous(1, 2),
            TimeWindow::new(SimTime::ZERO, SimTime::from_secs(50)),
        )
        .unwrap();
        let down = [NodeId::new(0)];
        let req = NegotiationRequest {
            size: 1,
            duration: SimDuration::from_secs(10),
            now: SimTime::ZERO,
            down: &down,
            recovery_horizon: SimTime::from_secs(1000),
            pre_start_risk: SimDuration::from_secs(120),
        };
        let o = run(&book, &NullPredictor, req, &UserStrategy::AlwaysEarliest).unwrap();
        assert_eq!(o.accepted.start, SimTime::from_secs(50));
        assert!(!o.accepted.partition.iter().any(|n| n == NodeId::new(0)));
    }

    #[test]
    fn line_topology_always_places_via_fallback() {
        // Two staggered long reservations fragment the 4-node line machine
        // so no contiguous 3-node run exists in any early slot or probe;
        // the fallback at the end of the book must still place the job.
        let mut book = ReservationBook::new(4);
        book.add(
            JobId::new(1),
            Partition::new([NodeId::new(1)]).unwrap(),
            TimeWindow::new(SimTime::ZERO, SimTime::from_secs(1_000_000)),
        )
        .unwrap();
        let outcome = negotiate(
            &book,
            Topology::Line,
            PlacementStrategy::MinFailureProbability,
            &NullPredictor,
            request(3, 100),
            &UserStrategy::AlwaysEarliest,
            4,
            4,
        )
        .unwrap();
        // Free nodes before t=1e6 are {0, 2, 3}: no contiguous triple.
        assert_eq!(outcome.accepted.start, SimTime::from_secs(1_000_000));
        assert_eq!(outcome.accepted.partition.len(), 3);
    }

    #[test]
    fn fallback_prefers_earliest_among_near_equal_quotes() {
        // Single node, a detectable px=0.5 failure in every examined
        // window: U=1 is unsatisfiable and all promises tie, so the user
        // takes the earliest quote rather than procrastinating.
        let failures: Vec<(u64, u32, f64)> = (0..200).map(|k| (50 + 100 * k, 0, 0.5)).collect();
        let o = oracle(&failures, 1.0);
        let book = ReservationBook::new(1);
        let user = UserStrategy::risk_threshold(1.0).unwrap();
        let outcome = run(&book, &o, request(1, 100), &user).unwrap();
        assert!(!outcome.satisfied_threshold);
        assert_eq!(outcome.accepted.start, SimTime::ZERO);
        assert_eq!(outcome.accepted.failure_probability, 0.5);
    }

    #[test]
    fn fallback_extends_for_substantially_better_quotes() {
        // Same setup, but the window starting at t=500 carries a much less
        // likely failure (px=0.2): worth waiting for.
        let failures: Vec<(u64, u32, f64)> = (0..200)
            .map(|k| (50 + 100 * k, 0, if k == 5 { 0.2 } else { 0.5 }))
            .collect();
        let o = oracle(&failures, 1.0);
        let book = ReservationBook::new(1);
        let user = UserStrategy::risk_threshold(1.0).unwrap();
        let outcome = run(&book, &o, request(1, 100), &user).unwrap();
        assert!(!outcome.satisfied_threshold);
        // The quoted risk window extends 120 s before the start, so the
        // first start whose window sees the px=0.2 failure (at t=550)
        // first — and not the px=0.5 one at t=450 — is t=600.
        assert_eq!(outcome.accepted.start, SimTime::from_secs(600));
        assert_eq!(outcome.accepted.failure_probability, 0.2);
    }

    #[test]
    fn batch_matches_serial_on_a_committed_backlog() {
        let o = oracle(&[(500, 0, 0.4), (2000, 3, 0.7)], 1.0);
        let mut book = ReservationBook::new(8);
        book.add(
            JobId::new(1),
            Partition::contiguous(0, 8),
            TimeWindow::new(SimTime::ZERO, SimTime::from_secs(900)),
        )
        .unwrap();
        let requests: Vec<NegotiationRequest<'_>> = (1..=9u32)
            .map(|k| request((k % 4) + 1, 300 * u64::from(k)))
            .collect();
        let user = UserStrategy::risk_threshold(0.5).unwrap();
        let serial: Vec<_> = requests
            .iter()
            .map(|req| {
                negotiate(
                    &book,
                    Topology::Flat,
                    PlacementStrategy::MinFailureProbability,
                    &o,
                    *req,
                    &user,
                    8,
                    8,
                )
            })
            .collect();
        for threads in [0, 1, 3, 16] {
            let batched = negotiate_batch(
                &book,
                Topology::Flat,
                PlacementStrategy::MinFailureProbability,
                &o,
                &requests,
                &user,
                8,
                8,
                threads,
            );
            assert_eq!(batched, serial, "threads={threads}");
        }
    }

    #[test]
    fn promised_success_complements_pf() {
        let q = Quote {
            start: SimTime::ZERO,
            deadline: SimTime::from_secs(10),
            partition: Partition::contiguous(0, 1),
            failure_probability: 0.25,
        };
        assert!((q.promised_success() - 0.75).abs() < 1e-12);
        assert!(!q.to_string().is_empty());
    }
}
