//! A live negotiation session: the simulator's quote → accept → run
//! lifecycle, factored out of [`crate::system`] so an online service can
//! drive it request-by-request instead of trace-by-trace.
//!
//! The paper's protocol is a dialog: the user *asks* for a quote
//! (`negotiate`), then *commits* to it (`accept`) or walks away
//! (`cancel`). The trace simulator collapses ask-and-commit into one step
//! because its simulated users always take the quote; a server cannot,
//! because between the quote and the commitment other clients mutate the
//! reservation book. [`NegotiationSession`] owns that mutable state — the
//! reservation book, the predictor, virtual time, and the telemetry
//! journal — behind an API whose writes are serialized by construction
//! (the service wraps it in a single-writer engine thread).
//!
//! Quotes are *soft*: negotiating reserves nothing. `accept` revalidates
//! against the book and fails with [`AcceptError::QuoteExpired`] when a
//! competing commitment took the slot first, which is exactly the
//! admission-control behaviour an overbooked system needs.
//!
//! The journal a session emits passes `pqos-doctor check` with zero
//! errors: submissions, accepted quotes, placements, starts, completions
//! and cancellations appear in monotone time order with every lifecycle
//! edge in place.

use crate::config::SimConfig;
use crate::negotiate::{negotiate_batch, NegotiationOutcome, NegotiationRequest, Quote};
use pqos_ckpt::model::planned_execution;
use pqos_cluster::partition::Partition;
use pqos_predict::api::Predictor;
use pqos_sched::cache::{CachedReservationBook, QuoteCacheStats};
use pqos_sched::reservation::ReservationId;
use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
use pqos_telemetry::{PromiseVerdict, Telemetry, TelemetryEvent};
use pqos_workload::job::JobId;
use std::collections::{BTreeSet, HashMap};

/// Why an `accept` did not commit the quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptError {
    /// No outstanding quote for this job (never negotiated, already
    /// accepted, or already cancelled).
    UnknownQuote,
    /// The quoted slot is gone: a competing commitment overlaps it, or
    /// virtual time has passed the promised completion. Negotiate again.
    QuoteExpired,
}

impl std::fmt::Display for AcceptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcceptError::UnknownQuote => write!(f, "no outstanding quote for this job"),
            AcceptError::QuoteExpired => write!(f, "quote expired; negotiate again"),
        }
    }
}

impl std::error::Error for AcceptError {}

/// Why a `cancel` was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelError {
    /// The job id is unknown to this session.
    UnknownJob,
    /// The job already started running (or finished); too late to cancel.
    AlreadyStarted,
}

impl std::fmt::Display for CancelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelError::UnknownJob => write!(f, "unknown job"),
            CancelError::AlreadyStarted => write!(f, "job already started; cannot cancel"),
        }
    }
}

impl std::error::Error for CancelError {}

/// One job's admission request: `size` nodes for `runtime` of useful work
/// (checkpoint overhead is added per the session's configured interval,
/// exactly as the simulator plans it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRequest {
    /// Requested partition size in nodes.
    pub size: u32,
    /// Requested useful runtime.
    pub runtime: SimDuration,
}

/// A quote held by the session, waiting for accept/cancel.
#[derive(Debug, Clone, PartialEq)]
pub struct HeldQuote {
    /// The quoted offer.
    pub quote: Quote,
    /// Effective deadline the system will hold itself to (promise plus the
    /// configured slack fraction of the planned execution).
    pub deadline: SimTime,
    /// Whether the quote met the configured user threshold (Eq. 3) or is
    /// the best-available compromise.
    pub satisfied_threshold: bool,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    /// Quoted, not yet accepted.
    Quoted,
    /// Accepted; reservation held; start not yet reached.
    Accepted,
    /// Between journaled start and completion.
    Running,
    /// Completed (journaled).
    Done,
    /// Cancelled (journaled).
    Cancelled,
}

#[derive(Debug, Clone)]
struct SessionJob {
    phase: JobPhase,
    quote: HeldQuote,
    reservation: Option<ReservationId>,
}

/// Counters the session exposes through its status report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Negotiations answered with a quote.
    pub quoted: u64,
    /// Negotiations answered with a rejection (job cannot fit).
    pub rejected: u64,
    /// Quotes committed via accept.
    pub accepted: u64,
    /// Accepts refused because the quoted slot was gone.
    pub expired: u64,
    /// Jobs cancelled before starting.
    pub cancelled: u64,
    /// Jobs that reached their start instant.
    pub started: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Batched quotes re-checked against a serial `negotiate` call.
    pub parity_checked: u64,
    /// Re-checks that disagreed (any nonzero value is a bug).
    pub parity_violations: u64,
}

/// Number of fixed quoted-probability bins the session (and the offline
/// calibration ledger in `pqos-obs`) tallies promises into: `[0.0, 0.1)`,
/// `[0.1, 0.2)`, ..., `[0.9, 1.0]` (the last bin is closed above).
pub const PROMISE_BINS: usize = 10;

/// The fixed calibration bin a quoted probability falls into.
pub fn promise_bin(p: f64) -> usize {
    // NaN/negative clamp to bin 0, p >= 1.0 to the last bin.
    let i = (p * PROMISE_BINS as f64).floor();
    if i.is_finite() && i > 0.0 {
        (i as usize).min(PROMISE_BINS - 1)
    } else {
        0
    }
}

/// Live promise-calibration counters: every accepted quote is a promise
/// and every terminal event resolves one. Cancelled promises are excluded
/// from calibration (neither kept nor broken).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromiseStats {
    /// Promises made (== quotes accepted).
    pub made: u64,
    /// Promises kept: the job completed at or before its effective
    /// deadline.
    pub kept: u64,
    /// Promises broken: the job completed after its effective deadline.
    pub broken: u64,
    /// Promises voided by cancellation before a verdict was possible.
    pub cancelled: u64,
    /// Worst per-bin reliability residual (observed success rate minus
    /// mean quoted probability, over kept+broken promises), in signed
    /// milli-units: the residual of largest magnitude across the
    /// [`PROMISE_BINS`] fixed bins. Negative means overconfident.
    pub worst_residual_milli: i64,
}

/// Per-bin running tallies behind [`PromiseStats::worst_residual_milli`].
#[derive(Debug, Clone, Copy, Default)]
struct PromiseBin {
    resolved: u64,
    kept: u64,
    sum_quoted: f64,
}

#[derive(Debug, Clone, Default)]
struct PromiseTally {
    made: u64,
    kept: u64,
    broken: u64,
    cancelled: u64,
    bins: [PromiseBin; PROMISE_BINS],
}

/// A standalone promise-calibration ledger with the exact bin/residual
/// semantics the session uses internally. External admission
/// coordinators (the service's cross-shard wide-job table) tally their
/// own promises through this so aggregated calibration stays comparable
/// with per-session numbers.
#[derive(Debug, Clone, Default)]
pub struct PromiseLedger {
    tally: PromiseTally,
}

impl PromiseLedger {
    /// Records that a quote was accepted (a promise was made).
    pub fn promise_made(&mut self) {
        self.tally.made += 1;
    }

    /// Resolves one promise with the quoted success probability it was
    /// made at.
    pub fn resolve(&mut self, quoted: f64, verdict: PromiseVerdict) {
        self.tally.resolve(quoted, verdict);
    }

    /// Current counters, including the worst per-bin residual.
    pub fn stats(&self) -> PromiseStats {
        self.tally.stats()
    }
}

impl PromiseTally {
    fn resolve(&mut self, quoted: f64, verdict: PromiseVerdict) {
        match verdict {
            PromiseVerdict::Kept | PromiseVerdict::Broken => {
                let bin = &mut self.bins[promise_bin(quoted)];
                bin.resolved += 1;
                bin.sum_quoted += quoted;
                if verdict == PromiseVerdict::Kept {
                    bin.kept += 1;
                    self.kept += 1;
                } else {
                    self.broken += 1;
                }
            }
            PromiseVerdict::Cancelled => self.cancelled += 1,
        }
    }

    fn stats(&self) -> PromiseStats {
        let mut worst = 0i64;
        for bin in &self.bins {
            if bin.resolved == 0 {
                continue;
            }
            let observed = bin.kept as f64 / bin.resolved as f64;
            let mean_quoted = bin.sum_quoted / bin.resolved as f64;
            let residual = ((observed - mean_quoted) * 1000.0).round() as i64;
            if residual.abs() > worst.abs() {
                worst = residual;
            }
        }
        PromiseStats {
            made: self.made,
            kept: self.kept,
            broken: self.broken,
            cancelled: self.cancelled,
            worst_residual_milli: worst,
        }
    }
}

/// A snapshot of the session for the service's `status` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Current virtual time.
    pub now: SimTime,
    /// Cluster width.
    pub cluster_size: u32,
    /// Nodes committed at `now`.
    pub occupied_nodes: u32,
    /// Live reservations in the book.
    pub reservations: usize,
    /// Lifecycle counters.
    pub stats: SessionStats,
    /// Promise-calibration counters.
    pub promises: PromiseStats,
    /// Every Nth batch gets the batched-vs-serial parity re-check (1 =
    /// every batch).
    pub parity_sample: u64,
}

/// The answer to one admission request.
#[derive(Debug, Clone, PartialEq)]
pub enum QuoteDecision {
    /// A quote is now held for the job; accept or cancel it.
    Quoted(HeldQuote),
    /// The job can never fit the cluster.
    Rejected,
}

/// One replayable session operation — the unit a recorded incident trace
/// decomposes into. See [`NegotiationSession::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// Advance virtual time, firing due starts/completions.
    AdvanceTo(SimTime),
    /// Quote a batch of admission requests with caller-assigned job ids,
    /// in batch order.
    QuoteBatch(Vec<(JobId, AdmissionRequest)>),
    /// Commit a held quote.
    Accept(JobId),
    /// Withdraw a quoted or accepted (not yet started) job.
    Cancel(JobId),
}

/// What one [`SessionOp`] produced, mirroring the return type of the
/// session method it delegates to.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOpOutcome {
    /// New virtual time after the advance.
    Advanced(SimTime),
    /// One decision per batched request, in batch order.
    Quotes(Vec<QuoteDecision>),
    /// The accept's result.
    Accepted(Result<HeldQuote, AcceptError>),
    /// The cancel's result.
    Cancelled(Result<(), CancelError>),
}

/// Live negotiation/admission state: reservation book, predictor, virtual
/// clock, journal. See the [module docs](self) for the protocol.
///
/// # Examples
///
/// ```
/// use pqos_core::config::SimConfig;
/// use pqos_core::session::{AdmissionRequest, NegotiationSession, QuoteDecision};
/// use pqos_predict::api::NullPredictor;
/// use pqos_sim_core::time::{SimDuration, SimTime};
/// use pqos_telemetry::Telemetry;
/// use pqos_workload::job::JobId;
///
/// let config = SimConfig::paper_defaults().cluster_size_nodes(16);
/// let mut session = NegotiationSession::new(config, NullPredictor, Telemetry::disabled());
/// let req = AdmissionRequest {
///     size: 4,
///     runtime: SimDuration::from_secs(3600),
/// };
/// let decisions = session.quote_batch(&[(JobId::new(1), req)], 1);
/// let QuoteDecision::Quoted(held) = &decisions[0] else { panic!() };
/// assert_eq!(held.quote.start, SimTime::ZERO);
/// session.accept(JobId::new(1))?;
/// assert_eq!(session.status().reservations, 1);
/// # Ok::<(), pqos_core::session::AcceptError>(())
/// ```
#[derive(Debug)]
pub struct NegotiationSession<P> {
    config: SimConfig,
    /// The reservation book behind the incremental quote cache: every
    /// `quote_batch` probes through memoized, delta-invalidated
    /// `earliest_slots` walks (see `pqos_sched::cache`).
    book: CachedReservationBook,
    predictor: P,
    telemetry: Telemetry,
    now: SimTime,
    jobs: HashMap<JobId, SessionJob>,
    /// Pending lifecycle instants: (time, order-class, job). Order-class 0
    /// = completion, 1 = start, so completions at an instant free their
    /// nodes before same-instant starts claim theirs (the journal
    /// invariant the doctor's occupancy check enforces).
    timers: BTreeSet<(SimTime, u8, JobId)>,
    stats: SessionStats,
    promises: PromiseTally,
    verify_parity: bool,
    /// Re-check every Nth batch (deterministic counter-based sampling);
    /// 1 = every batch.
    parity_sample: u64,
    /// Batches quoted so far (drives the sampling decision).
    batch_seq: u64,
    quote_horizon: Option<SimDuration>,
    /// Offset added to node indices in journaled placements. A sharded
    /// deployment gives each shard-local session the global index of its
    /// first node so the merged journal speaks one global namespace.
    node_base: u64,
}

impl<P: Predictor + Sync> NegotiationSession<P> {
    /// Creates an idle session at virtual time zero.
    pub fn new(config: SimConfig, predictor: P, telemetry: Telemetry) -> Self {
        let book = CachedReservationBook::new(config.cluster_size);
        NegotiationSession {
            config,
            book,
            predictor,
            telemetry,
            now: SimTime::ZERO,
            jobs: HashMap::new(),
            timers: BTreeSet::new(),
            stats: SessionStats::default(),
            promises: PromiseTally::default(),
            verify_parity: false,
            parity_sample: 1,
            batch_seq: 0,
            quote_horizon: None,
            node_base: 0,
        }
    }

    /// Re-runs every batched quote through a serial [`negotiate`] call and
    /// counts disagreements in [`SessionStats::parity_violations`]. Costs
    /// one extra negotiation per request.
    ///
    /// [`negotiate`]: crate::negotiate::negotiate
    pub fn verify_parity(mut self, on: bool) -> Self {
        self.verify_parity = on;
        self
    }

    /// Runs the parity re-check on every Nth `quote_batch` only (counter-
    /// based, so identical call sequences sample identically). The check
    /// costs a full second negotiation pass — roughly doubling per-tick
    /// compute — so a serving daemon samples while tests, CI and replay
    /// keep the default of 1 (every batch). Zero is clamped to 1.
    pub fn parity_sample(mut self, every: u64) -> Self {
        self.parity_sample = every.max(1);
        self
    }

    /// Refuses quotes whose start lies more than `horizon` past the
    /// current virtual time (the request is answered `rejected`).
    ///
    /// An online service under sustained overload would otherwise promise
    /// starts arbitrarily far in the future while its reservation book —
    /// and with it the cost of every further negotiation — grows without
    /// bound. A horizon is the admission-control analogue of a user
    /// declining a hopeless deadline (Eq. 3): the backlog the book can
    /// accumulate, and therefore per-quote latency, stays bounded by
    /// cluster capacity × horizon.
    pub fn quote_horizon(mut self, horizon: SimDuration) -> Self {
        self.quote_horizon = Some(horizon);
        self
    }

    /// Journals placements with node indices offset by `base`. A session
    /// that owns nodes `[base, base + cluster_size)` of a larger sharded
    /// machine reports global indices, so merged journals from several
    /// shards never alias each other's nodes. Quoting and booking are
    /// untouched — only the journaled `job_placed` node list shifts.
    pub fn node_base(mut self, base: u64) -> Self {
        self.node_base = base;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this session was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The predictor quotes are scored against.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Read-only view of the reservation book. A cross-shard coordinator
    /// composes several of these into one merged [`AvailabilityView`]
    /// to negotiate jobs wider than any single shard.
    ///
    /// [`AvailabilityView`]: pqos_sched::reservation::AvailabilityView
    pub fn book(&self) -> &CachedReservationBook {
        &self.book
    }

    /// Total checkpointed execution time this session plans for `runtime`
    /// of useful work (the duration quotes reserve).
    pub fn planned_total(&self, runtime: SimDuration) -> SimDuration {
        planned_execution(
            runtime,
            self.config.checkpoint_interval,
            self.config.checkpoint_overhead,
        )
        .total
    }

    /// The telemetry handle this session journals through. The service
    /// layer uses it to register its own engine/server metrics against the
    /// same registry the session's hooks populate.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Jobs currently alive in this session: quoted (awaiting a decision),
    /// accepted (reservation held), or running. Finished and cancelled
    /// jobs are excluded; expired quotes were dropped entirely (they show
    /// up in [`SessionStats::expired`]).
    pub fn live_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| {
                matches!(
                    j.phase,
                    JobPhase::Quoted | JobPhase::Accepted | JobPhase::Running
                )
            })
            .count()
    }

    /// Advances virtual time to `to` (monotone; earlier instants are
    /// ignored), journaling every start and completion that falls due.
    /// Completed jobs release their reservations.
    pub fn advance_to(&mut self, to: SimTime) {
        while let Some(&(when, class, job)) = self.timers.iter().next() {
            if when > to {
                break;
            }
            self.timers.remove(&(when, class, job));
            match class {
                0 => self.complete(job, when),
                _ => self.start(job, when),
            }
        }
        self.now = self.now.max(to);
    }

    /// Negotiates a batch of admission requests against the current book
    /// snapshot, fanning out across `threads` OS threads. Each request is
    /// journaled as a submission; the returned decisions are in request
    /// order and quotes are held until accepted or cancelled.
    ///
    /// Job ids are caller-assigned and must be fresh; a duplicate id
    /// replaces the previous pending quote (accepted/finished jobs are
    /// never replaced — the request is rejected instead).
    pub fn quote_batch(
        &mut self,
        requests: &[(JobId, AdmissionRequest)],
        threads: usize,
    ) -> Vec<QuoteDecision> {
        // Journal submissions first: the doctor requires job_submitted
        // before the accepted quote, and a batch is one virtual instant.
        for (id, req) in requests {
            let (id, req) = (*id, *req);
            self.telemetry.emit(|| TelemetryEvent::JobSubmitted {
                at: self.now,
                job: id.as_u64(),
                size: req.size,
                runtime_secs: req.runtime.as_secs(),
            });
        }
        let negotiation_requests: Vec<NegotiationRequest<'_>> = requests
            .iter()
            .map(|(_, req)| self.negotiation_request(*req))
            .collect();
        let negotiate_timer = self
            .telemetry
            .histogram("session.negotiate_ns")
            .start_timer();
        let outcomes = negotiate_batch(
            &self.book,
            self.config.topology,
            self.config.placement,
            &self.predictor,
            &negotiation_requests,
            &self.config.user,
            self.config.max_negotiation_slots,
            self.config.max_probe_steps,
            threads,
        );
        negotiate_timer.stop();
        if self.verify_parity && self.batch_seq.is_multiple_of(self.parity_sample) {
            let parity_timer = self.telemetry.histogram("session.parity_ns").start_timer();
            self.check_parity(&negotiation_requests, &outcomes, threads);
            parity_timer.stop();
        }
        self.batch_seq = self.batch_seq.wrapping_add(1);
        requests
            .iter()
            .zip(outcomes)
            .map(|(&(id, req), outcome)| self.record_decision(id, req, outcome))
            .collect()
    }

    /// The quote-horizon filter [`Self::probe_outcomes`] applies: `None`
    /// where the quoted start falls beyond the horizon.
    fn apply_horizon(&self, outcome: Option<NegotiationOutcome>) -> Option<NegotiationOutcome> {
        let outcome = outcome?;
        if let Some(horizon) = self.quote_horizon {
            if outcome.accepted.start > self.now.saturating_add(horizon) {
                return None;
            }
        }
        Some(outcome)
    }

    /// Answers, without any side effects, the start time each request
    /// *would* be quoted if negotiated against the current book snapshot
    /// (`None` where the request would be rejected, including by the
    /// quote horizon). Nothing is journaled, no quote is held and no
    /// counter moves — this is the read-only routing probe a sharded
    /// engine runs on shards before assigning the job to the one quoting
    /// the earliest start.
    pub fn probe_batch(
        &self,
        requests: &[AdmissionRequest],
        threads: usize,
    ) -> Vec<Option<SimTime>> {
        self.probe_outcomes(requests, threads)
            .into_iter()
            .map(|outcome| Some(outcome?.accepted.start))
            .collect()
    }

    /// The full negotiation outcomes behind [`Self::probe_batch`]:
    /// read-only, nothing journaled, horizon-rejected requests already
    /// `None`. A sharded router keeps the winning shard's outcome and
    /// admits it via [`Self::quote_batch_precomputed`], so routing a
    /// narrow job costs one negotiation walk instead of probe-then-quote
    /// walking the same book twice.
    pub fn probe_outcomes(
        &self,
        requests: &[AdmissionRequest],
        threads: usize,
    ) -> Vec<Option<NegotiationOutcome>> {
        let negotiation_requests: Vec<NegotiationRequest<'_>> = requests
            .iter()
            .map(|req| self.negotiation_request(*req))
            .collect();
        let outcomes = negotiate_batch(
            &self.book,
            self.config.topology,
            self.config.placement,
            &self.predictor,
            &negotiation_requests,
            &self.config.user,
            self.config.max_negotiation_slots,
            self.config.max_probe_steps,
            threads,
        );
        outcomes
            .into_iter()
            .map(|outcome| self.apply_horizon(outcome))
            .collect()
    }

    /// [`Self::quote_batch`] for outcomes already negotiated against the
    /// **current** book snapshot (a [`Self::probe_outcomes`] result with
    /// no book mutation in between): journals each submission, runs the
    /// same sampled batched-vs-serial parity check, and records each
    /// decision — without re-running negotiation. `None` outcomes are
    /// recorded as rejections.
    pub fn quote_batch_precomputed(
        &mut self,
        requests: &[(JobId, AdmissionRequest)],
        outcomes: Vec<Option<NegotiationOutcome>>,
        threads: usize,
    ) -> Vec<QuoteDecision> {
        assert_eq!(
            requests.len(),
            outcomes.len(),
            "one precomputed outcome per request"
        );
        for (id, req) in requests {
            let (id, req) = (*id, *req);
            self.telemetry.emit(|| TelemetryEvent::JobSubmitted {
                at: self.now,
                job: id.as_u64(),
                size: req.size,
                runtime_secs: req.runtime.as_secs(),
            });
        }
        if self.verify_parity && self.batch_seq.is_multiple_of(self.parity_sample) {
            let negotiation_requests: Vec<NegotiationRequest<'_>> = requests
                .iter()
                .map(|(_, req)| self.negotiation_request(*req))
                .collect();
            let parity_timer = self.telemetry.histogram("session.parity_ns").start_timer();
            self.check_parity_horizon_filtered(&negotiation_requests, &outcomes, threads);
            parity_timer.stop();
        }
        self.batch_seq = self.batch_seq.wrapping_add(1);
        requests
            .iter()
            .zip(outcomes)
            .map(|(&(id, req), outcome)| self.record_decision(id, req, outcome))
            .collect()
    }

    /// Books `partition` for `window` directly, bypassing negotiation,
    /// journaling and the job lifecycle. This is the reserve half of the
    /// two-phase cross-shard admission step: a wide job's coordinator
    /// reserves one slice per shard and journals the single lifecycle
    /// itself. Returns `None` when the slice conflicts with an existing
    /// commitment (the coordinator then releases the slices it already
    /// took and expires the quote).
    pub fn reserve_slice(
        &mut self,
        id: JobId,
        partition: Partition,
        window: TimeWindow,
    ) -> Option<ReservationId> {
        self.book.add(id, partition, window).ok()
    }

    /// Releases a slice taken by [`NegotiationSession::reserve_slice`].
    pub fn release_slice(&mut self, reservation: ReservationId) {
        self.book.remove(reservation);
    }

    /// Commits a held quote: journals the accepted quote and placement and
    /// books the reservation. The job will start and complete as virtual
    /// time passes the committed instants.
    ///
    /// # Errors
    ///
    /// [`AcceptError::UnknownQuote`] when no quote is held for `id`;
    /// [`AcceptError::QuoteExpired`] when the slot has been taken by a
    /// competing commitment or the promise is already in the past (the
    /// held quote is dropped — negotiate again).
    pub fn accept(&mut self, id: JobId) -> Result<HeldQuote, AcceptError> {
        let job = self
            .jobs
            .get(&id)
            .filter(|j| j.phase == JobPhase::Quoted)
            .ok_or(AcceptError::UnknownQuote)?;
        let held = job.quote.clone();
        if self.now >= held.quote.deadline {
            self.jobs.remove(&id);
            self.stats.expired += 1;
            return Err(AcceptError::QuoteExpired);
        }
        let window = TimeWindow::new(held.quote.start, held.quote.deadline);
        let reservation = match self.book.add(id, held.quote.partition.clone(), window) {
            Ok(r) => r,
            Err(_) => {
                self.jobs.remove(&id);
                self.stats.expired += 1;
                return Err(AcceptError::QuoteExpired);
            }
        };
        self.telemetry.emit(|| TelemetryEvent::QuoteNegotiated {
            at: self.now,
            job: id.as_u64(),
            start_secs: held.quote.start.as_secs(),
            promised_secs: held.quote.deadline.as_secs(),
            deadline_secs: held.deadline.as_secs(),
            success_probability: held.quote.promised_success(),
        });
        self.telemetry.emit(|| TelemetryEvent::JobPlaced {
            at: self.now,
            job: id.as_u64(),
            nodes: held
                .quote
                .partition
                .iter()
                .map(|n| n.index() as u64 + self.node_base)
                .collect(),
            failure_probability: held.quote.failure_probability,
        });
        let job = self.jobs.get_mut(&id).expect("checked above");
        job.phase = JobPhase::Accepted;
        job.reservation = Some(reservation);
        // A start already in the past (time moved while the client decided)
        // fires on the next advance; the run still ends at the promise.
        self.timers.insert((held.quote.start.max(self.now), 1, id));
        self.stats.accepted += 1;
        // The accepted quote is a promise; its resolution is journaled by
        // the terminal event (complete or cancel).
        self.promises.made += 1;
        Ok(held)
    }

    /// Withdraws a job: drops a held quote, or releases an accepted
    /// reservation whose start has not been reached. Journals the
    /// cancellation.
    ///
    /// # Errors
    ///
    /// [`CancelError::UnknownJob`] for ids this session never quoted (or
    /// already cancelled); [`CancelError::AlreadyStarted`] once the job is
    /// running or done.
    pub fn cancel(&mut self, id: JobId) -> Result<(), CancelError> {
        let job = self.jobs.get(&id).ok_or(CancelError::UnknownJob)?;
        match job.phase {
            JobPhase::Quoted | JobPhase::Accepted => {}
            JobPhase::Running | JobPhase::Done => return Err(CancelError::AlreadyStarted),
            JobPhase::Cancelled => return Err(CancelError::UnknownJob),
        }
        let job = self.jobs.get_mut(&id).expect("present");
        let was_accepted = job.phase == JobPhase::Accepted;
        job.phase = JobPhase::Cancelled;
        if let Some(reservation) = job.reservation.take() {
            self.book.remove(reservation);
        }
        if was_accepted {
            let start = self.jobs[&id].quote.quote.start.max(self.now);
            self.timers.remove(&(start, 1, id));
        }
        self.telemetry.emit(|| TelemetryEvent::JobCancelled {
            at: self.now,
            job: id.as_u64(),
        });
        if was_accepted {
            // Only accepted quotes made a promise worth resolving; a held
            // quote that was never committed promised nothing.
            let quoted = self.jobs[&id].quote.quote.promised_success();
            let deadline_secs = self.jobs[&id].quote.deadline.as_secs();
            self.telemetry.emit(|| TelemetryEvent::PromiseResolved {
                at: self.now,
                job: id.as_u64(),
                success_probability: quoted,
                deadline_secs,
                verdict: PromiseVerdict::Cancelled,
            });
            self.promises.resolve(quoted, PromiseVerdict::Cancelled);
        }
        self.stats.cancelled += 1;
        Ok(())
    }

    /// A point-in-time snapshot for status reporting.
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            now: self.now,
            cluster_size: self.book.cluster_size(),
            occupied_nodes: self.book.occupied_at(self.now),
            reservations: self.book.len(),
            stats: self.stats,
            promises: self.promises.stats(),
            parity_sample: self.parity_sample,
        }
    }

    /// Live promise-calibration counters (see [`PromiseStats`]). The
    /// service exports these as `pqos_promise_*` gauges on `/metrics`.
    pub fn promise_stats(&self) -> PromiseStats {
        self.promises.stats()
    }

    /// Cumulative quote-cache counters (hits, misses, profile rebuilds,
    /// invalidations). The service exports these as `pqos_quote_cache_*`
    /// gauges on `/metrics`.
    pub fn quote_cache_stats(&self) -> QuoteCacheStats {
        self.book.stats()
    }

    /// Flushes the telemetry journal through to its sinks.
    pub fn flush(&self) {
        self.telemetry.flush();
    }

    /// Applies one replayable operation. This is the session's *driver*
    /// interface: a recorded incident is a sequence of `SessionOp`s, and
    /// feeding the same sequence to a session built with the same
    /// configuration reproduces the same state and a byte-identical
    /// journal. Each variant delegates to the corresponding public
    /// method, so driving through `apply` is exactly driving the session
    /// directly.
    pub fn apply(&mut self, op: &SessionOp, threads: usize) -> SessionOpOutcome {
        match op {
            SessionOp::AdvanceTo(to) => {
                self.advance_to(*to);
                SessionOpOutcome::Advanced(self.now)
            }
            SessionOp::QuoteBatch(requests) => {
                SessionOpOutcome::Quotes(self.quote_batch(requests, threads))
            }
            SessionOp::Accept(id) => SessionOpOutcome::Accepted(self.accept(*id)),
            SessionOp::Cancel(id) => SessionOpOutcome::Cancelled(self.cancel(*id)),
        }
    }

    fn negotiation_request(&self, req: AdmissionRequest) -> NegotiationRequest<'static> {
        let plan = planned_execution(
            req.runtime,
            self.config.checkpoint_interval,
            self.config.checkpoint_overhead,
        );
        NegotiationRequest {
            size: req.size,
            duration: plan.total,
            now: self.now,
            down: &[],
            recovery_horizon: SimTime::ZERO,
            pre_start_risk: self.config.node_downtime,
        }
    }

    fn record_decision(
        &mut self,
        id: JobId,
        req: AdmissionRequest,
        outcome: Option<NegotiationOutcome>,
    ) -> QuoteDecision {
        let Some(outcome) = outcome else {
            self.telemetry.emit(|| TelemetryEvent::JobRejected {
                at: self.now,
                job: id.as_u64(),
            });
            self.stats.rejected += 1;
            return QuoteDecision::Rejected;
        };
        if let Some(horizon) = self.quote_horizon {
            if outcome.accepted.start > self.now.saturating_add(horizon) {
                self.telemetry.emit(|| TelemetryEvent::JobRejected {
                    at: self.now,
                    job: id.as_u64(),
                });
                self.stats.rejected += 1;
                return QuoteDecision::Rejected;
            }
        }
        let plan = planned_execution(
            req.runtime,
            self.config.checkpoint_interval,
            self.config.checkpoint_overhead,
        );
        let slack = SimDuration::from_secs(
            (plan.total.as_secs() as f64 * self.config.deadline_slack) as u64,
        );
        let held = HeldQuote {
            deadline: outcome.accepted.deadline + slack,
            quote: outcome.accepted,
            satisfied_threshold: outcome.satisfied_threshold,
        };
        let replaceable = self
            .jobs
            .get(&id)
            .is_none_or(|existing| existing.phase == JobPhase::Quoted);
        if !replaceable {
            // The id already names a committed or finished job; refusing
            // keeps the journal's one-lifecycle-per-id invariant.
            self.stats.rejected += 1;
            return QuoteDecision::Rejected;
        }
        self.jobs.insert(
            id,
            SessionJob {
                phase: JobPhase::Quoted,
                quote: held.clone(),
                reservation: None,
            },
        );
        self.stats.quoted += 1;
        QuoteDecision::Quoted(held)
    }

    fn check_parity(
        &mut self,
        requests: &[NegotiationRequest<'_>],
        batched: &[Option<NegotiationOutcome>],
        threads: usize,
    ) {
        // Recompute with different chunk boundaries so a chunking or
        // order-dependence bug cannot agree with itself; every underlying
        // call is still the plain serial `negotiate` over the same book.
        let reference = negotiate_batch(
            &self.book,
            self.config.topology,
            self.config.placement,
            &self.predictor,
            requests,
            &self.config.user,
            self.config.max_negotiation_slots,
            self.config.max_probe_steps,
            threads.saturating_add(1),
        );
        for (serial, fast) in reference.iter().zip(batched) {
            self.stats.parity_checked += 1;
            if serial != fast {
                self.stats.parity_violations += 1;
            }
        }
    }

    /// [`Self::check_parity`] against horizon-filtered outcomes (a
    /// [`Self::probe_outcomes`] result): the serial reference gets the
    /// same quote-horizon filter before comparing, so a quote the
    /// horizon rejects on both sides still counts as agreement.
    fn check_parity_horizon_filtered(
        &mut self,
        requests: &[NegotiationRequest<'_>],
        batched: &[Option<NegotiationOutcome>],
        threads: usize,
    ) {
        let reference = negotiate_batch(
            &self.book,
            self.config.topology,
            self.config.placement,
            &self.predictor,
            requests,
            &self.config.user,
            self.config.max_negotiation_slots,
            self.config.max_probe_steps,
            threads.saturating_add(1),
        );
        for (serial, fast) in reference.into_iter().zip(batched) {
            self.stats.parity_checked += 1;
            if self.apply_horizon(serial) != *fast {
                self.stats.parity_violations += 1;
            }
        }
    }

    fn start(&mut self, id: JobId, at: SimTime) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.phase != JobPhase::Accepted {
            return;
        }
        job.phase = JobPhase::Running;
        let end = job.quote.quote.deadline.max(at);
        self.telemetry.emit(|| TelemetryEvent::JobStarted {
            at,
            job: id.as_u64(),
            restarts: 0,
        });
        self.timers.insert((end, 0, id));
        self.stats.started += 1;
    }

    fn complete(&mut self, id: JobId, at: SimTime) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.phase != JobPhase::Running {
            return;
        }
        job.phase = JobPhase::Done;
        let met_deadline = at <= job.quote.deadline;
        if let Some(reservation) = job.reservation.take() {
            self.book.remove(reservation);
        }
        self.telemetry.emit(|| TelemetryEvent::JobCompleted {
            at,
            job: id.as_u64(),
            met_deadline,
        });
        if !met_deadline {
            let late_by = at.as_secs().saturating_sub(job.quote.deadline.as_secs());
            self.telemetry.emit(|| TelemetryEvent::DeadlineMissed {
                at,
                job: id.as_u64(),
                late_by_secs: late_by,
            });
        }
        let quoted = job.quote.quote.promised_success();
        let deadline_secs = job.quote.deadline.as_secs();
        let verdict = if met_deadline {
            PromiseVerdict::Kept
        } else {
            PromiseVerdict::Broken
        };
        self.telemetry.emit(|| TelemetryEvent::PromiseResolved {
            at,
            job: id.as_u64(),
            success_probability: quoted,
            deadline_secs,
            verdict,
        });
        self.promises.resolve(quoted, verdict);
        self.stats.completed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_predict::api::NullPredictor;

    fn session(nodes: u32) -> NegotiationSession<NullPredictor> {
        NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(nodes),
            NullPredictor,
            Telemetry::disabled(),
        )
    }

    fn req(size: u32, runtime: u64) -> AdmissionRequest {
        AdmissionRequest {
            size,
            runtime: SimDuration::from_secs(runtime),
        }
    }

    fn quote_one(
        s: &mut NegotiationSession<NullPredictor>,
        id: u64,
        size: u32,
        runtime: u64,
    ) -> QuoteDecision {
        s.quote_batch(&[(JobId::new(id), req(size, runtime))], 1)
            .pop()
            .unwrap()
    }

    #[test]
    fn quote_accept_run_complete() {
        let mut s = session(8);
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 1, 4, 3600) else {
            panic!("expected a quote");
        };
        assert_eq!(held.quote.start, SimTime::ZERO);
        s.accept(JobId::new(1)).unwrap();
        assert_eq!(s.status().reservations, 1);
        assert_eq!(s.status().occupied_nodes, 4);
        s.advance_to(held.quote.deadline);
        let stats = s.status().stats;
        assert_eq!(stats.started, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(s.status().reservations, 0);
    }

    #[test]
    fn op_driver_matches_direct_calls_and_journals_identically() {
        let journal = |drive: &dyn Fn(&mut NegotiationSession<NullPredictor>)| {
            let telemetry = Telemetry::builder().ring_buffer(1024).build();
            let mut s = NegotiationSession::new(
                SimConfig::paper_defaults().cluster_size_nodes(8),
                NullPredictor,
                telemetry.clone(),
            );
            drive(&mut s);
            telemetry
                .ring_events()
                .iter()
                .map(|e| e.to_jsonl())
                .collect::<Vec<_>>()
        };
        let direct = journal(&|s| {
            let decisions = s.quote_batch(
                &[(JobId::new(1), req(4, 3600)), (JobId::new(2), req(9, 100))],
                1,
            );
            assert!(matches!(decisions[0], QuoteDecision::Quoted(_)));
            assert_eq!(decisions[1], QuoteDecision::Rejected);
            s.accept(JobId::new(1)).unwrap();
            s.advance_to(SimTime::from_secs(20_000));
            assert_eq!(s.cancel(JobId::new(1)), Err(CancelError::AlreadyStarted));
        });
        let driven = journal(&|s| {
            let ops = [
                SessionOp::QuoteBatch(vec![
                    (JobId::new(1), req(4, 3600)),
                    (JobId::new(2), req(9, 100)),
                ]),
                SessionOp::Accept(JobId::new(1)),
                SessionOp::AdvanceTo(SimTime::from_secs(20_000)),
                SessionOp::Cancel(JobId::new(1)),
            ];
            let outcomes: Vec<SessionOpOutcome> = ops.iter().map(|op| s.apply(op, 1)).collect();
            assert!(matches!(outcomes[1], SessionOpOutcome::Accepted(Ok(_))));
            assert_eq!(
                outcomes[3],
                SessionOpOutcome::Cancelled(Err(CancelError::AlreadyStarted))
            );
        });
        assert_eq!(direct, driven, "op driver must be journal-identical");
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let mut s = session(4);
        assert_eq!(quote_one(&mut s, 1, 5, 100), QuoteDecision::Rejected);
        assert_eq!(s.status().stats.rejected, 1);
    }

    #[test]
    fn competing_accept_expires_the_loser() {
        let mut s = session(4);
        // Both quotes target the same 4-node slot at t=0.
        let d1 = quote_one(&mut s, 1, 4, 3600);
        let d2 = quote_one(&mut s, 2, 4, 3600);
        assert!(matches!(d1, QuoteDecision::Quoted(_)));
        assert!(matches!(d2, QuoteDecision::Quoted(_)));
        s.accept(JobId::new(1)).unwrap();
        assert_eq!(s.accept(JobId::new(2)), Err(AcceptError::QuoteExpired));
        assert_eq!(s.status().stats.expired, 1);
        // The loser renegotiates and lands behind the winner.
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 2, 4, 3600) else {
            panic!("renegotiation must quote");
        };
        assert!(held.quote.start > SimTime::ZERO);
        s.accept(JobId::new(2)).unwrap();
    }

    #[test]
    fn cancel_releases_the_reservation() {
        let mut s = session(4);
        quote_one(&mut s, 1, 4, 3600);
        s.accept(JobId::new(1)).unwrap();
        assert_eq!(s.status().reservations, 1);
        s.cancel(JobId::new(1)).unwrap();
        assert_eq!(s.status().reservations, 0);
        // The freed slot is immediately quotable at t=0 again.
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 2, 4, 3600) else {
            panic!("slot must be free again");
        };
        assert_eq!(held.quote.start, SimTime::ZERO);
        // A cancelled job cannot be cancelled or accepted again.
        assert_eq!(s.cancel(JobId::new(1)), Err(CancelError::UnknownJob));
        assert_eq!(s.accept(JobId::new(1)), Err(AcceptError::UnknownQuote));
    }

    #[test]
    fn same_tick_cancel_and_requote_sees_the_pre_cancel_book() {
        // The service engine coalesces every negotiate in a tick into one
        // `quote_batch` (pass 1) and applies mutations (pass 2) afterwards,
        // even when a cancel arrived first on the wire. A re-negotiate that
        // shares a tick with a cancel of the capacity it wants is therefore
        // quoted against the pre-cancel snapshot: a later (pessimistic)
        // start, never a stale hole. The quote must still be honorable at
        // accept time, after the cancel has been applied.
        let mut s = session(4);
        // C pins the cluster from t=0 so A can be accepted without running.
        quote_one(&mut s, 1, 4, 3600);
        s.accept(JobId::new(1)).unwrap();
        let QuoteDecision::Quoted(held_a) = quote_one(&mut s, 2, 4, 3600) else {
            panic!("A must be quotable behind C");
        };
        let a_start = held_a.quote.start;
        s.accept(JobId::new(2)).unwrap();

        // --- one engine tick: pass 1 quotes B, pass 2 cancels A ---
        let QuoteDecision::Quoted(held_b) = quote_one(&mut s, 3, 4, 3600) else {
            panic!("B must be quotable behind C and A");
        };
        s.cancel(JobId::new(2)).unwrap();
        // B was quoted with A still booked: strictly after A's start,
        // i.e. pessimistic, not against a hole that no longer existed.
        assert!(held_b.quote.start > a_start);
        // --- next tick: the client accepts the stale-snapshot quote ---
        let accepted = s
            .accept(JobId::new(3))
            .expect("pessimistic quote stays honorable");
        assert_eq!(accepted.quote.start, held_b.quote.start);
        assert_eq!(s.status().reservations, 2);

        // The cancel did land: a fresh negotiate now reuses A's old hole.
        let QuoteDecision::Quoted(held_d) = quote_one(&mut s, 4, 4, 3600) else {
            panic!("A's hole must be quotable after the cancel");
        };
        assert_eq!(held_d.quote.start, a_start);
    }

    #[test]
    fn quote_horizon_bounds_the_backlog() {
        let mut s = session(4).quote_horizon(SimDuration::from_secs(4000));
        // First job fills the whole cluster for ~1h (plus checkpoints).
        let QuoteDecision::Quoted(_) = quote_one(&mut s, 1, 4, 3600) else {
            panic!();
        };
        s.accept(JobId::new(1)).unwrap();
        // The next same-size job would start after the first finishes,
        // still inside the horizon.
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 2, 4, 3600) else {
            panic!("within horizon");
        };
        assert!(held.quote.start.as_secs() <= 4000);
        s.accept(JobId::new(2)).unwrap();
        // A third stacks past the horizon and is refused.
        assert_eq!(quote_one(&mut s, 3, 4, 3600), QuoteDecision::Rejected);
        assert_eq!(s.status().stats.rejected, 1);
        assert_eq!(s.status().reservations, 2);
    }

    #[test]
    fn cannot_cancel_a_running_job() {
        let mut s = session(4);
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 1, 4, 3600) else {
            panic!();
        };
        s.accept(JobId::new(1)).unwrap();
        s.advance_to(held.quote.start + SimDuration::from_secs(1));
        assert_eq!(s.cancel(JobId::new(1)), Err(CancelError::AlreadyStarted));
    }

    #[test]
    fn unaccepted_quotes_expire_once_time_passes_the_promise() {
        let mut s = session(4);
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 1, 4, 600) else {
            panic!();
        };
        s.advance_to(held.quote.deadline + SimDuration::from_secs(1));
        assert_eq!(s.accept(JobId::new(1)), Err(AcceptError::QuoteExpired));
    }

    #[test]
    fn late_accept_still_completes_at_the_promise() {
        let mut s = session(4);
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 1, 4, 3600) else {
            panic!();
        };
        // Time advances past the quoted start but not the promise.
        s.advance_to(SimTime::from_secs(100));
        s.accept(JobId::new(1)).unwrap();
        s.advance_to(held.quote.deadline);
        let stats = s.status().stats;
        assert_eq!((stats.started, stats.completed), (1, 1));
    }

    #[test]
    fn session_journal_passes_the_doctor_shape_checks() {
        // The obs crate (which owns the doctor) depends on telemetry only,
        // so this asserts the journal's raw shape instead: monotone time
        // and the exact lifecycle sequence per job.
        let telemetry = Telemetry::builder().ring_buffer(1024).build();
        let mut s = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(8),
            NullPredictor,
            telemetry.clone(),
        );
        s.quote_batch(
            &[
                (JobId::new(1), req(4, 3600)),
                (JobId::new(2), req(4, 1800)),
                (JobId::new(3), req(2, 600)),
            ],
            2,
        );
        s.accept(JobId::new(1)).unwrap();
        // Jobs 1 and 2 were quoted against the same snapshot and collide;
        // the protocol's answer is to renegotiate after the expiry.
        assert_eq!(s.accept(JobId::new(2)), Err(AcceptError::QuoteExpired));
        s.quote_batch(&[(JobId::new(2), req(4, 1800))], 1);
        s.accept(JobId::new(2)).unwrap();
        s.cancel(JobId::new(3)).unwrap();
        s.advance_to(SimTime::from_secs(100_000));
        let events = telemetry.ring_events();
        let mut last = SimTime::ZERO;
        for e in &events {
            assert!(e.at() >= last, "journal time ran backwards");
            last = e.at();
        }
        let names: Vec<&str> = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::JobSubmitted { job: 1, .. }
                        | TelemetryEvent::QuoteNegotiated { job: 1, .. }
                        | TelemetryEvent::JobPlaced { job: 1, .. }
                        | TelemetryEvent::JobStarted { job: 1, .. }
                        | TelemetryEvent::JobCompleted { job: 1, .. }
                )
            })
            .map(TelemetryEvent::name)
            .collect();
        assert_eq!(
            names,
            [
                "job_submitted",
                "quote_negotiated",
                "job_placed",
                "job_started",
                "job_completed"
            ]
        );
        let stats = s.status().stats;
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn live_jobs_and_stage_histograms_track_activity() {
        let telemetry = Telemetry::builder().ring_buffer(64).build();
        let mut s = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(8),
            NullPredictor,
            telemetry,
        )
        .verify_parity(true);
        assert_eq!(s.live_jobs(), 0);
        s.quote_batch(
            &[(JobId::new(1), req(4, 3600)), (JobId::new(2), req(2, 600))],
            1,
        );
        assert_eq!(s.live_jobs(), 2, "held quotes are live");
        s.accept(JobId::new(1)).unwrap();
        s.cancel(JobId::new(2)).unwrap();
        assert_eq!(s.live_jobs(), 1, "cancellation retires a job");
        s.advance_to(SimTime::from_secs(1_000_000));
        assert_eq!(s.live_jobs(), 0, "completed jobs are no longer live");
        let snap = s.telemetry().snapshot().unwrap();
        assert!(snap.histogram("session.negotiate_ns").unwrap().count >= 1);
        assert!(snap.histogram("session.parity_ns").unwrap().count >= 1);
    }

    #[test]
    fn promises_resolve_with_the_terminal_event() {
        let telemetry = Telemetry::builder().ring_buffer(256).build();
        let mut s = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(8),
            NullPredictor,
            telemetry.clone(),
        );
        s.quote_batch(&[(JobId::new(1), req(4, 3600))], 1);
        s.accept(JobId::new(1)).unwrap();
        // A fresh snapshot so job 2's quote cannot collide with job 1.
        s.quote_batch(
            &[(JobId::new(2), req(2, 600)), (JobId::new(3), req(2, 600))],
            1,
        );
        s.accept(JobId::new(2)).unwrap();
        // Job 3's quote is never accepted: no promise, no resolution.
        s.cancel(JobId::new(3)).unwrap();
        s.cancel(JobId::new(2)).unwrap();
        s.advance_to(SimTime::from_secs(100_000));
        let resolved: Vec<(u64, PromiseVerdict)> = telemetry
            .ring_events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::PromiseResolved { job, verdict, .. } => Some((*job, *verdict)),
                _ => None,
            })
            .collect();
        assert_eq!(
            resolved,
            [(2, PromiseVerdict::Cancelled), (1, PromiseVerdict::Kept)]
        );
        let promises = s.status().promises;
        assert_eq!(promises.made, 2);
        assert_eq!(promises.kept, 1);
        assert_eq!(promises.broken, 0);
        assert_eq!(promises.cancelled, 1);
        // One bin, all kept at quoted p=1.0: residual is exactly zero.
        assert_eq!(promises.worst_residual_milli, 0);
    }

    #[test]
    fn promise_bins_tile_the_unit_interval() {
        assert_eq!(promise_bin(0.0), 0);
        assert_eq!(promise_bin(0.0999), 0);
        assert_eq!(promise_bin(0.1), 1);
        assert_eq!(promise_bin(0.95), 9);
        assert_eq!(promise_bin(1.0), 9);
        assert_eq!(promise_bin(f64::NAN), 0);
    }

    #[test]
    fn probe_batch_predicts_quotes_without_side_effects() {
        let mut s = session(8);
        quote_one(&mut s, 1, 8, 3600);
        s.accept(JobId::new(1)).unwrap();
        let before = s.status();
        let reqs = [req(4, 1800), req(9, 100)];
        let probed = s.probe_batch(&reqs, 1);
        // Probing moved nothing: same stats, same live jobs, same book.
        assert_eq!(s.status(), before);
        assert_eq!(s.live_jobs(), 1);
        assert_eq!(probed[1], None, "oversized probe rejects");
        // The probe's answer is exactly what quote_batch then quotes.
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 2, 4, 1800) else {
            panic!("probed request must quote");
        };
        assert_eq!(probed[0], Some(held.quote.start));
    }

    #[test]
    fn probe_batch_honors_the_quote_horizon() {
        let mut s = session(4).quote_horizon(SimDuration::from_secs(4000));
        quote_one(&mut s, 1, 4, 3600);
        s.accept(JobId::new(1)).unwrap();
        quote_one(&mut s, 2, 4, 3600);
        s.accept(JobId::new(2)).unwrap();
        // A third full-width job would start past the horizon.
        assert_eq!(s.probe_batch(&[req(4, 3600)], 1), vec![None]);
    }

    #[test]
    fn reserved_slices_shape_quotes_and_release_cleanly() {
        let mut s = session(4);
        let window = TimeWindow::new(SimTime::ZERO, SimTime::from_secs(5000));
        let slice = s
            .reserve_slice(JobId::new(99), Partition::contiguous(0, 4), window)
            .expect("empty book takes the slice");
        // The slice is invisible to the job lifecycle but visible to
        // quoting: a new job lands after it.
        assert_eq!(s.live_jobs(), 0);
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 1, 4, 600) else {
            panic!();
        };
        assert_eq!(held.quote.start, SimTime::from_secs(5000));
        // A conflicting slice is refused; releasing frees the window.
        assert!(s
            .reserve_slice(JobId::new(98), Partition::contiguous(0, 1), window)
            .is_none());
        s.release_slice(slice);
        let QuoteDecision::Quoted(held) = quote_one(&mut s, 2, 4, 600) else {
            panic!();
        };
        assert_eq!(held.quote.start, SimTime::ZERO);
    }

    #[test]
    fn node_base_offsets_journaled_placements_only() {
        let telemetry = Telemetry::builder().ring_buffer(64).build();
        let mut s = NegotiationSession::new(
            SimConfig::paper_defaults().cluster_size_nodes(4),
            NullPredictor,
            telemetry.clone(),
        )
        .node_base(100);
        s.quote_batch(&[(JobId::new(1), req(2, 600))], 1);
        s.accept(JobId::new(1)).unwrap();
        let nodes: Vec<u64> = telemetry
            .ring_events()
            .iter()
            .find_map(|e| match e {
                TelemetryEvent::JobPlaced { nodes, .. } => Some(nodes.clone()),
                _ => None,
            })
            .expect("placement journaled");
        assert_eq!(nodes, [100, 101]);
        // The book itself still works in local indices.
        assert_eq!(s.status().occupied_nodes, 2);
    }

    #[test]
    fn parity_sampling_checks_every_nth_batch() {
        let mut s = session(16).verify_parity(true).parity_sample(3);
        for round in 0..7u64 {
            s.quote_batch(&[(JobId::new(round), req(1, 600))], 1);
        }
        // Batches 0, 3 and 6 were re-checked, one request each.
        let stats = s.status().stats;
        assert_eq!(stats.parity_checked, 3);
        assert_eq!(stats.parity_violations, 0);
        assert_eq!(s.status().parity_sample, 3);
    }

    #[test]
    fn parity_self_check_stays_clean() {
        let mut s = session(16).verify_parity(true);
        for round in 0..5u64 {
            let batch: Vec<(JobId, AdmissionRequest)> = (0..4)
                .map(|k| (JobId::new(round * 4 + k), req(1 << (k % 3), 1200)))
                .collect();
            for (id, _) in s
                .quote_batch(&batch, 4)
                .iter()
                .zip(&batch)
                .filter(|(d, _)| matches!(d, QuoteDecision::Quoted(_)))
                .map(|(_, r)| r)
            {
                s.accept(*id).ok();
            }
            s.advance_to(s.now() + SimDuration::from_secs(600));
        }
        let stats = s.status().stats;
        assert_eq!(stats.parity_checked, 20);
        assert_eq!(stats.parity_violations, 0);
    }
}
