//! Simulation configuration (the paper's Table 2).

use crate::user::UserStrategy;
use pqos_ckpt::policy::{
    CheckpointPolicy, NoCheckpointing, Periodic, RiskBased, RiskBasedWithDefault,
    RiskBasedWithPrior,
};
use pqos_cluster::topology::Topology;
use pqos_sched::place::PlacementStrategy;
use pqos_sim_core::time::SimDuration;
use std::fmt;

/// Which checkpoint gating policy the system runs (all are wrapped with the
/// paper's deadline-aware override by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicyKind {
    /// Never checkpoint.
    None,
    /// Always checkpoint (classic periodic).
    Periodic,
    /// The paper's risk-based Eq. 1, taken literally (`pf = 0` ⇒ skip).
    RiskBased,
    /// Eq. 1 when the predictor speaks, periodic when it is silent. This
    /// is the default: the paper's measured `a = 0` utilization, lost
    /// work, and checkpoint counts ("orders of magnitude" above failed
    /// jobs) are only consistent with checkpoints being performed in the
    /// absence of predictions. See DESIGN.md.
    #[default]
    RiskBasedWithDefault,
    /// Eq. 1 on the max of the predicted and historical base-rate failure
    /// probabilities (Oliner's cooperative-checkpointing flavour).
    RiskBasedWithPrior,
}

impl CheckpointPolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn CheckpointPolicy> {
        match self {
            CheckpointPolicyKind::None => Box::new(NoCheckpointing),
            CheckpointPolicyKind::Periodic => Box::new(Periodic),
            CheckpointPolicyKind::RiskBased => Box::new(RiskBased),
            CheckpointPolicyKind::RiskBasedWithDefault => Box::new(RiskBasedWithDefault),
            CheckpointPolicyKind::RiskBasedWithPrior => Box::new(RiskBasedWithPrior),
        }
    }
}

impl CheckpointPolicyKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CheckpointPolicyKind::None => "none",
            CheckpointPolicyKind::Periodic => "periodic",
            CheckpointPolicyKind::RiskBased => "risk-based",
            CheckpointPolicyKind::RiskBasedWithDefault => "risk-based+default",
            CheckpointPolicyKind::RiskBasedWithPrior => "risk-based+prior",
        }
    }
}

impl fmt::Display for CheckpointPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Full simulator configuration. Defaults reproduce the paper's Table 2:
/// `N = 128`, `C = 720 s`, `I = 3600 s`, downtime `120 s`, flat topology,
/// fault-aware placement, risk-based + deadline-aware checkpointing.
///
/// # Examples
///
/// ```
/// use pqos_core::config::SimConfig;
/// use pqos_core::user::UserStrategy;
///
/// let config = SimConfig::paper_defaults()
///     .accuracy(0.7)
///     .user(UserStrategy::risk_threshold(0.9).unwrap());
/// assert_eq!(config.cluster_size, 128);
/// assert_eq!(config.accuracy, 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of nodes `N` (Table 2: 128).
    pub cluster_size: u32,
    /// Communication topology (§4.4: flat, all-to-all).
    pub topology: Topology,
    /// Checkpoint overhead `C` (Table 2: 720 s).
    pub checkpoint_overhead: SimDuration,
    /// Checkpoint interval `I` (Table 2: 3600 s).
    pub checkpoint_interval: SimDuration,
    /// Node restart time after a failure (Table 2: 120 s).
    pub node_downtime: SimDuration,
    /// Recovery overhead `R` paid by a restarted job before useful work
    /// resumes (the paper uses `R = 0`, §4.4).
    pub restart_overhead: SimDuration,
    /// Prediction accuracy `a ∈ [0, 1]`.
    pub accuracy: f64,
    /// The simulated user population's risk strategy (parameter `U`).
    pub user: UserStrategy,
    /// Partition selection strategy.
    pub placement: PlacementStrategy,
    /// Checkpoint gating policy.
    pub checkpoint_policy: CheckpointPolicyKind,
    /// Whether the deadline-aware skip override (§3.4) is active.
    pub deadline_aware_skips: bool,
    /// Fraction of the checkpointed execution time added to the *quoted*
    /// deadline as slack (default 0: the deadline is exactly the planned
    /// completion, so any failure-induced delay is a broken promise).
    /// A modest slack models schedulers that quote conservatively and
    /// deliver aggressively; the slack ablation sweeps this.
    pub deadline_slack: f64,
    /// Maximum reservation-book slots examined during negotiation.
    pub max_negotiation_slots: usize,
    /// Additional fixed-step probes past the end of the book when no slot
    /// satisfies the user's threshold.
    pub max_probe_steps: usize,
}

impl SimConfig {
    /// The paper's Table 2 settings with `a = 0` and earliest-deadline
    /// users; set [`SimConfig::accuracy`] and [`SimConfig::user`] per
    /// experiment.
    pub fn paper_defaults() -> Self {
        SimConfig {
            cluster_size: 128,
            topology: Topology::Flat,
            checkpoint_overhead: SimDuration::from_secs(720),
            checkpoint_interval: SimDuration::from_secs(3600),
            node_downtime: SimDuration::from_secs(120),
            restart_overhead: SimDuration::ZERO,
            accuracy: 0.0,
            user: UserStrategy::AlwaysEarliest,
            placement: PlacementStrategy::MinFailureProbability,
            checkpoint_policy: CheckpointPolicyKind::RiskBasedWithDefault,
            deadline_aware_skips: true,
            deadline_slack: 0.0,
            max_negotiation_slots: 24,
            max_probe_steps: 40,
        }
    }

    /// Sets the prediction accuracy `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is outside `[0, 1]`.
    pub fn accuracy(mut self, a: f64) -> Self {
        assert!((0.0..=1.0).contains(&a), "accuracy {a} outside [0, 1]");
        self.accuracy = a;
        self
    }

    /// Sets the user strategy.
    pub fn user(mut self, user: UserStrategy) -> Self {
        self.user = user;
        self
    }

    /// Sets the checkpoint gating policy.
    pub fn checkpoint_policy(mut self, kind: CheckpointPolicyKind) -> Self {
        self.checkpoint_policy = kind;
        self
    }

    /// Sets the placement strategy.
    pub fn placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the cluster size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn cluster_size_nodes(mut self, n: u32) -> Self {
        assert!(n > 0, "cluster must have at least one node");
        self.cluster_size = n;
        self
    }

    /// Sets the checkpoint interval `I`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn checkpoint_interval_secs(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the checkpoint overhead `C`.
    pub fn checkpoint_overhead_secs(mut self, overhead: SimDuration) -> Self {
        self.checkpoint_overhead = overhead;
        self
    }

    /// Disables the deadline-aware checkpoint override.
    pub fn without_deadline_aware_skips(mut self) -> Self {
        self.deadline_aware_skips = false;
        self
    }

    /// Sets the recovery overhead `R` paid at each restart.
    pub fn restart_overhead_secs(mut self, r: SimDuration) -> Self {
        self.restart_overhead = r;
        self
    }

    /// Sets the quoted-deadline slack fraction.
    ///
    /// # Panics
    ///
    /// Panics if `slack` is negative or not finite.
    pub fn deadline_slack_fraction(mut self, slack: f64) -> Self {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "deadline slack must be non-negative, got {slack}"
        );
        self.deadline_slack = slack;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_ckpt::policy::{CheckpointContext, CheckpointDecision, DeadlinePressure};
    use pqos_sim_core::time::SimTime;

    #[test]
    fn defaults_match_table2() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.cluster_size, 128);
        assert_eq!(c.checkpoint_overhead.as_secs(), 720);
        assert_eq!(c.checkpoint_interval.as_secs(), 3600);
        assert_eq!(c.node_downtime.as_secs(), 120);
        assert_eq!(c.topology, Topology::Flat);
        assert_eq!(SimConfig::default().cluster_size, 128);
    }

    #[test]
    fn builder_setters() {
        let c = SimConfig::paper_defaults()
            .accuracy(0.5)
            .cluster_size_nodes(64)
            .checkpoint_interval_secs(SimDuration::from_secs(100))
            .checkpoint_overhead_secs(SimDuration::from_secs(10))
            .checkpoint_policy(CheckpointPolicyKind::Periodic)
            .without_deadline_aware_skips();
        assert_eq!(c.accuracy, 0.5);
        assert_eq!(c.cluster_size, 64);
        assert_eq!(c.checkpoint_interval.as_secs(), 100);
        assert_eq!(c.checkpoint_overhead.as_secs(), 10);
        assert_eq!(c.checkpoint_policy, CheckpointPolicyKind::Periodic);
        assert!(!c.deadline_aware_skips);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_accuracy() {
        let _ = SimConfig::paper_defaults().accuracy(1.5);
    }

    #[test]
    fn policy_kinds_build_working_policies() {
        let ctx = CheckpointContext {
            now: SimTime::ZERO,
            interval: SimDuration::from_secs(3600),
            overhead: SimDuration::from_secs(720),
            skipped_since_last: 0,
            failure_probability: 0.0,
            baseline_failure_probability: 0.0,
            deadline_pressure: DeadlinePressure::None,
        };
        assert_eq!(
            CheckpointPolicyKind::None.build().decide(&ctx),
            CheckpointDecision::Skip
        );
        assert_eq!(
            CheckpointPolicyKind::Periodic.build().decide(&ctx),
            CheckpointDecision::Perform
        );
        assert_eq!(
            CheckpointPolicyKind::RiskBased.build().decide(&ctx),
            CheckpointDecision::Skip
        );
        assert_eq!(
            CheckpointPolicyKind::RiskBasedWithDefault
                .build()
                .decide(&ctx),
            CheckpointDecision::Perform
        );
    }

    #[test]
    fn kind_names_distinct() {
        let mut names = vec![
            CheckpointPolicyKind::None.name(),
            CheckpointPolicyKind::Periodic.name(),
            CheckpointPolicyKind::RiskBased.name(),
            CheckpointPolicyKind::RiskBasedWithDefault.name(),
            CheckpointPolicyKind::RiskBasedWithPrior.name(),
        ];
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(CheckpointPolicyKind::RiskBased.to_string(), "risk-based");
    }
}
