//! The paper's metrics (§3.5): QoS (Eq. 2), capacity utilization, and
//! work lost to failures — plus the secondary counters the experiment
//! harness reports.

use pqos_sim_core::time::{SimDuration, SimTime};
use pqos_workload::job::JobId;
use std::fmt;

/// Everything recorded about one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job identifier.
    pub id: JobId,
    /// Size in nodes `nj`.
    pub nodes: u32,
    /// Checkpoint-free runtime `ej`.
    pub runtime: SimDuration,
    /// Arrival time `vj`.
    pub arrival: SimTime,
    /// Promised probability of success `pj` at submission.
    pub promised: f64,
    /// Negotiated deadline.
    pub deadline: SimTime,
    /// Last (re)start time `sj`.
    pub last_start: SimTime,
    /// Completion time `fj`.
    pub finish: SimTime,
    /// Whether the job finished by its deadline (`qj`).
    pub met_deadline: bool,
    /// Number of failures that hit this job.
    pub failures: u32,
    /// Whether the negotiation satisfied the user's threshold.
    pub satisfied_threshold: bool,
    /// Checkpoints performed for this job.
    pub checkpoints_performed: u32,
    /// Checkpoint requests skipped for this job.
    pub checkpoints_skipped: u32,
}

/// Work lost to one failure: `(tx − cjx) · njx` node-seconds (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostWorkEvent {
    /// When the failure struck.
    pub time: SimTime,
    /// The job that lost work.
    pub job: JobId,
    /// The job's size in nodes.
    pub nodes: u32,
    /// Node-seconds rolled back.
    pub lost_node_seconds: u64,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The paper's QoS metric (Eq. 2): `Σ ej·nj·qj·pj / Σ ej·nj`.
    pub qos: f64,
    /// Capacity utilization `ω_util = Σ ej·nj / (T·N)`, checkpoint
    /// overhead excluded.
    pub utilization: f64,
    /// Total work lost to failures `ω_lost`, in node-seconds.
    pub lost_work: u64,
    /// Total useful work `Σ ej·nj`, in node-seconds.
    pub total_work: u64,
    /// `T = max fj − min vj`.
    pub makespan: SimDuration,
    /// Number of jobs completed.
    pub jobs: usize,
    /// Jobs that missed their negotiated deadline.
    pub deadline_misses: usize,
    /// Failure events that killed a running job.
    pub job_failures: usize,
    /// Checkpoints performed across all jobs.
    pub checkpoints_performed: u64,
    /// Checkpoint requests skipped across all jobs.
    pub checkpoints_skipped: u64,
    /// Work-weighted mean promised probability of success.
    pub mean_promise: f64,
    /// Mean wait time (last start − arrival) in seconds.
    pub mean_wait_secs: f64,
    /// Fraction of jobs whose negotiation met the user's threshold.
    pub threshold_satisfied_fraction: f64,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QoS={:.4} util={:.4} lost={} node-s misses={}/{} job-failures={} ckpt {}+{}skip",
            self.qos,
            self.utilization,
            self.lost_work,
            self.deadline_misses,
            self.jobs,
            self.job_failures,
            self.checkpoints_performed,
            self.checkpoints_skipped,
        )
    }
}

/// One bucket of the promise-calibration (reliability) analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBucket {
    /// Inclusive lower bound of the promised-probability bucket.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the final bucket).
    pub hi: f64,
    /// Completed jobs whose promise fell in the bucket.
    pub jobs: usize,
    /// Mean promised probability of success in the bucket.
    pub mean_promise: f64,
    /// Fraction of those jobs that actually met their deadline.
    pub realized: f64,
}

impl fmt::Display for CalibrationBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.2}, {:.2}): {} jobs, promised {:.3}, realized {:.3}",
            self.lo, self.hi, self.jobs, self.mean_promise, self.realized
        )
    }
}

/// Accumulates outcomes during a run and reduces them to a [`SimReport`].
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    outcomes: Vec<JobOutcome>,
    lost: Vec<LostWorkEvent>,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Records a completed job.
    pub fn record_outcome(&mut self, outcome: JobOutcome) {
        self.outcomes.push(outcome);
    }

    /// Records work lost to a failure.
    pub fn record_lost_work(&mut self, event: LostWorkEvent) {
        self.lost.push(event);
    }

    /// Completed-job outcomes recorded so far.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Lost-work events recorded so far.
    pub fn lost_events(&self) -> &[LostWorkEvent] {
        &self.lost
    }

    /// Promise-calibration analysis: buckets completed jobs by promised
    /// probability of success and reports the realized on-time fraction
    /// per bucket.
    ///
    /// Under the paper's idealized trace oracle this exposes a structural
    /// miscalibration worth knowing about: the trace replays
    /// *deterministically*, so a job quoted `p < 1` (a detectable failure
    /// inside its window) is hit with certainty, not with probability
    /// `1 − p` — sub-certain promises realize far below their face value.
    /// Promises of exactly 1, by contrast, are broken only by false
    /// negatives (rate `1 − a`) and failure-induced scheduling cascades.
    /// The `calibration` experiment quantifies both effects.
    ///
    /// Empty buckets are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn calibration(&self, buckets: usize) -> Vec<CalibrationBucket> {
        assert!(buckets > 0, "need at least one bucket");
        let width = 1.0 / buckets as f64;
        let mut out = Vec::new();
        for b in 0..buckets {
            let lo = b as f64 * width;
            let hi = if b + 1 == buckets {
                1.0 + 1e-12
            } else {
                (b + 1) as f64 * width
            };
            let members: Vec<&JobOutcome> = self
                .outcomes
                .iter()
                .filter(|o| o.promised >= lo && o.promised < hi)
                .collect();
            if members.is_empty() {
                continue;
            }
            let met = members.iter().filter(|o| o.met_deadline).count();
            out.push(CalibrationBucket {
                lo,
                hi: hi.min(1.0),
                jobs: members.len(),
                mean_promise: members.iter().map(|o| o.promised).sum::<f64>()
                    / members.len() as f64,
                realized: met as f64 / members.len() as f64,
            });
        }
        out
    }

    /// Reduces to a report for a cluster of `cluster_size` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    pub fn report(&self, cluster_size: u32) -> SimReport {
        assert!(cluster_size > 0, "cluster size must be positive");
        let total_work: u64 = self
            .outcomes
            .iter()
            .map(|o| o.runtime.as_secs() * u64::from(o.nodes))
            .sum();
        let qos_num: f64 = self
            .outcomes
            .iter()
            .filter(|o| o.met_deadline)
            .map(|o| (o.runtime.as_secs() * u64::from(o.nodes)) as f64 * o.promised)
            .sum();
        let promise_num: f64 = self
            .outcomes
            .iter()
            .map(|o| (o.runtime.as_secs() * u64::from(o.nodes)) as f64 * o.promised)
            .sum();
        let first_arrival = self.outcomes.iter().map(|o| o.arrival).min();
        let last_finish = self.outcomes.iter().map(|o| o.finish).max();
        let makespan = match (first_arrival, last_finish) {
            (Some(a), Some(f)) => f.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        let utilization = if makespan.is_zero() {
            0.0
        } else {
            total_work as f64 / (makespan.as_secs() as f64 * f64::from(cluster_size))
        };
        let n = self.outcomes.len();
        SimReport {
            qos: if total_work > 0 {
                qos_num / total_work as f64
            } else {
                0.0
            },
            utilization,
            lost_work: self.lost.iter().map(|l| l.lost_node_seconds).sum(),
            total_work,
            makespan,
            jobs: n,
            deadline_misses: self.outcomes.iter().filter(|o| !o.met_deadline).count(),
            job_failures: self.outcomes.iter().map(|o| o.failures as usize).sum(),
            checkpoints_performed: self
                .outcomes
                .iter()
                .map(|o| u64::from(o.checkpoints_performed))
                .sum(),
            checkpoints_skipped: self
                .outcomes
                .iter()
                .map(|o| u64::from(o.checkpoints_skipped))
                .sum(),
            mean_promise: if total_work > 0 {
                promise_num / total_work as f64
            } else {
                0.0
            },
            mean_wait_secs: if n > 0 {
                self.outcomes
                    .iter()
                    .map(|o| o.last_start.saturating_since(o.arrival).as_secs() as f64)
                    .sum::<f64>()
                    / n as f64
            } else {
                0.0
            },
            threshold_satisfied_fraction: if n > 0 {
                self.outcomes
                    .iter()
                    .filter(|o| o.satisfied_threshold)
                    .count() as f64
                    / n as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, nodes: u32, runtime: u64, promised: f64, met: bool) -> JobOutcome {
        JobOutcome {
            id: JobId::new(id),
            nodes,
            runtime: SimDuration::from_secs(runtime),
            arrival: SimTime::from_secs(0),
            promised,
            deadline: SimTime::from_secs(1000),
            last_start: SimTime::from_secs(10),
            finish: SimTime::from_secs(100),
            met_deadline: met,
            failures: 0,
            satisfied_threshold: true,
            checkpoints_performed: 0,
            checkpoints_skipped: 0,
        }
    }

    #[test]
    fn qos_is_eq2() {
        let mut m = MetricsCollector::new();
        // Job A: 100 node-s, promised 1.0, met. Job B: 300 node-s, promised
        // 0.8, missed. QoS = (100·1·1.0) / 400 = 0.25.
        m.record_outcome(outcome(1, 1, 100, 1.0, true));
        m.record_outcome(outcome(2, 3, 100, 0.8, false));
        let r = m.report(4);
        assert!((r.qos - 0.25).abs() < 1e-12);
        assert_eq!(r.deadline_misses, 1);
        assert_eq!(r.total_work, 400);
        // Mean promise is work-weighted: (100·1 + 300·0.8)/400 = 0.85.
        assert!((r.mean_promise - 0.85).abs() < 1e-12);
    }

    #[test]
    fn missed_jobs_contribute_nothing_to_qos() {
        let mut m = MetricsCollector::new();
        m.record_outcome(outcome(1, 2, 50, 0.9, false));
        let r = m.report(4);
        assert_eq!(r.qos, 0.0);
    }

    #[test]
    fn utilization_uses_makespan_and_cluster_size() {
        let mut m = MetricsCollector::new();
        let mut o = outcome(1, 2, 100, 1.0, true);
        o.arrival = SimTime::from_secs(0);
        o.finish = SimTime::from_secs(100);
        m.record_outcome(o);
        // 200 node-s over 100 s on 4 nodes → 0.5.
        let r = m.report(4);
        assert!((r.utilization - 0.5).abs() < 1e-12);
        assert_eq!(r.makespan, SimDuration::from_secs(100));
    }

    #[test]
    fn lost_work_sums_events() {
        let mut m = MetricsCollector::new();
        m.record_outcome(outcome(1, 1, 10, 1.0, true));
        m.record_lost_work(LostWorkEvent {
            time: SimTime::from_secs(5),
            job: JobId::new(1),
            nodes: 4,
            lost_node_seconds: 400,
        });
        m.record_lost_work(LostWorkEvent {
            time: SimTime::from_secs(9),
            job: JobId::new(1),
            nodes: 4,
            lost_node_seconds: 100,
        });
        assert_eq!(m.report(4).lost_work, 500);
        assert_eq!(m.lost_events().len(), 2);
        assert_eq!(m.outcomes().len(), 1);
    }

    #[test]
    fn empty_collector_is_all_zero() {
        let r = MetricsCollector::new().report(128);
        assert_eq!(r.qos, 0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.lost_work, 0);
        assert_eq!(r.jobs, 0);
        assert_eq!(r.mean_wait_secs, 0.0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn wait_and_threshold_fractions() {
        let mut m = MetricsCollector::new();
        let mut a = outcome(1, 1, 10, 1.0, true);
        a.arrival = SimTime::from_secs(0);
        a.last_start = SimTime::from_secs(30);
        let mut b = outcome(2, 1, 10, 1.0, true);
        b.arrival = SimTime::from_secs(0);
        b.last_start = SimTime::from_secs(10);
        b.satisfied_threshold = false;
        m.record_outcome(a);
        m.record_outcome(b);
        let r = m.report(4);
        assert!((r.mean_wait_secs - 20.0).abs() < 1e-12);
        assert!((r.threshold_satisfied_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_run_has_qos_one() {
        let mut m = MetricsCollector::new();
        for i in 0..10 {
            m.record_outcome(outcome(i, 2, 100, 1.0, true));
        }
        let r = m.report(4);
        assert!((r.qos - 1.0).abs() < 1e-12);
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    #[should_panic(expected = "cluster size")]
    fn zero_cluster_panics() {
        let _ = MetricsCollector::new().report(0);
    }

    #[test]
    fn calibration_buckets_by_promise() {
        let mut m = MetricsCollector::new();
        // Promise 0.95: 3 of 4 met. Promise 0.25: 0 of 1 met.
        for i in 0..4 {
            m.record_outcome(outcome(i, 1, 10, 0.95, i != 0));
        }
        m.record_outcome(outcome(9, 1, 10, 0.25, false));
        let c = m.calibration(10);
        assert_eq!(c.len(), 2);
        let low = &c[0];
        assert_eq!((low.lo, low.jobs), (0.2, 1));
        assert_eq!(low.realized, 0.0);
        let high = &c[1];
        assert_eq!(high.jobs, 4);
        assert!((high.mean_promise - 0.95).abs() < 1e-12);
        assert!((high.realized - 0.75).abs() < 1e-12);
        assert!(!high.to_string().is_empty());
    }

    #[test]
    fn calibration_final_bucket_includes_one() {
        let mut m = MetricsCollector::new();
        m.record_outcome(outcome(1, 1, 10, 1.0, true));
        let c = m.calibration(10);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].jobs, 1);
        assert_eq!(c[0].realized, 1.0);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn calibration_rejects_zero_buckets() {
        let _ = MetricsCollector::new().calibration(0);
    }
}
