//! The trace-driven simulator: the paper's seven event types (§4.1) wired
//! to the negotiation layer, the fault-aware scheduler, and cooperative
//! checkpointing.
//!
//! Event semantics follow §3.3–3.4:
//!
//! * every job receives a `(partition, interval)` commitment at submission
//!   (conservative backfilling) and *retains* it — there is no migration
//!   and no re-optimization of other jobs when something fails;
//! * a failed node takes any job running on it down with it; the job rolls
//!   back to the start of its last completed checkpoint and returns to the
//!   scheduler, which re-commits it to the earliest feasible slot (its
//!   negotiated deadline and promise are unchanged);
//! * failed nodes recover after the configured downtime;
//! * checkpoint requests fire after every interval `I` of useful progress
//!   and are granted or denied by the configured policy, with the
//!   deadline-aware override of §3.4.

use crate::config::SimConfig;
use crate::metrics::{JobOutcome, LostWorkEvent, MetricsCollector, SimReport};
use crate::negotiate::{negotiate_with_telemetry, NegotiationRequest};
use crate::user::UserStrategy;
use pqos_ckpt::model::planned_execution;
use pqos_ckpt::policy::{
    CheckpointContext, CheckpointDecision, CheckpointPolicy, DeadlinePressure, InstrumentedPolicy,
};
use pqos_cluster::machine::Cluster;
use pqos_cluster::node::NodeId;
use pqos_cluster::partition::Partition;
use pqos_failures::trace::FailureTrace;
use pqos_predict::api::Predictor;
use pqos_predict::instrument::InstrumentedPredictor;
use pqos_predict::oracle::TraceOracle;
use pqos_sched::reservation::{ReservationBook, ReservationId};
use pqos_sim_core::queue::EventQueue;
use pqos_sim_core::time::{SimDuration, SimTime, TimeWindow};
use pqos_telemetry::{
    Histogram, PromiseVerdict, SkipReason, Snapshot, Telemetry, TelemetryEvent, Timer,
};
use pqos_workload::job::{Job, JobId};
use pqos_workload::log::JobLog;
use std::collections::HashMap;
use std::sync::Arc;

/// Retry delay when a job's committed nodes are transiently unavailable at
/// its start instant (e.g. still claimed by a late predecessor).
const START_RETRY: SimDuration = SimDuration::from_secs(10);

/// Same-time event ordering. Occupancy windows are end-exclusive — a job
/// scheduled over `[s, f)` is *gone* at instant `f` — so a finish at `t`
/// precedes a failure at `t` (otherwise a failure could kill a job whose
/// quoted, end-exclusive risk window honestly excluded it). Failures then
/// strike before any same-instant checkpoint completion ("the failure may
/// occur before the completion of checkpoint i", §3.4), releases precede
/// recoveries and arrivals, and starts claim nodes last.
fn priority(event: &Event) -> u8 {
    match event {
        Event::Finish { .. } => 0,
        Event::NodeFailure { .. } => 1,
        Event::CheckpointFinish { .. } => 2,
        Event::NodeRecovery { .. } => 3,
        Event::Arrival(_) => 4,
        Event::CheckpointRequest { .. } => 5,
        Event::Start { .. } => 6,
    }
}

/// Result of one simulation run.
#[derive(Debug)]
pub struct SimOutput {
    /// Aggregated metrics.
    pub report: SimReport,
    /// Per-job outcomes and lost-work events.
    pub collector: MetricsCollector,
    /// Jobs that could never fit on the cluster (size > N) and were
    /// rejected at submission.
    pub rejected: Vec<JobId>,
    /// Final metrics snapshot when the run was telemetered (see
    /// [`QosSimulator::with_telemetry`]); `None` otherwise.
    pub telemetry: Option<Snapshot>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(JobId),
    Start { job: JobId, epoch: u32 },
    CheckpointRequest { job: JobId, epoch: u32 },
    CheckpointFinish { job: JobId, epoch: u32 },
    Finish { job: JobId, epoch: u32 },
    NodeFailure { index: usize },
    NodeRecovery { node: NodeId },
}

/// Wall-clock self-profiler for the dispatch loop: one histogram per event
/// kind (`dispatch.arrival`, `dispatch.finish`, ...), recording nanoseconds
/// per dispatched event so the `--metrics` snapshot answers "which event
/// kind costs the most sim wall-clock".
///
/// Histogram handles are minted once at construction; with disabled
/// telemetry they are all no-ops and [`DispatchProfiler::timer`] returns an
/// inert guard, so the untelemetered hot loop pays only an `Option` check
/// and never calls `Instant::now`.
struct DispatchProfiler {
    arrival: Histogram,
    start: Histogram,
    ckpt_request: Histogram,
    ckpt_finish: Histogram,
    finish: Histogram,
    node_failure: Histogram,
    node_recovery: Histogram,
}

impl DispatchProfiler {
    fn new(telemetry: &Telemetry) -> Self {
        DispatchProfiler {
            arrival: telemetry.histogram("dispatch.arrival_ns"),
            start: telemetry.histogram("dispatch.start_ns"),
            ckpt_request: telemetry.histogram("dispatch.ckpt_request_ns"),
            ckpt_finish: telemetry.histogram("dispatch.ckpt_finish_ns"),
            finish: telemetry.histogram("dispatch.finish_ns"),
            node_failure: telemetry.histogram("dispatch.node_failure_ns"),
            node_recovery: telemetry.histogram("dispatch.node_recovery_ns"),
        }
    }

    /// A scoped timer for one event: starts now, records into the kind's
    /// histogram when dropped (i.e. when the dispatch returns).
    fn timer(&self, event: &Event) -> Timer {
        let hist = match event {
            Event::Arrival(_) => &self.arrival,
            Event::Start { .. } => &self.start,
            Event::CheckpointRequest { .. } => &self.ckpt_request,
            Event::CheckpointFinish { .. } => &self.ckpt_finish,
            Event::Finish { .. } => &self.finish,
            Event::NodeFailure { .. } => &self.node_failure,
            Event::NodeRecovery { .. } => &self.node_recovery,
        };
        hist.start_timer()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Running,
    Checkpointing,
    Done,
}

#[derive(Debug)]
struct JobState {
    job: Job,
    promised: f64,
    deadline: SimTime,
    satisfied_threshold: bool,
    epoch: u32,
    phase: Phase,
    reservation: Option<ReservationId>,
    partition: Option<Partition>,
    /// Useful work completed, updated at segment boundaries.
    done: SimDuration,
    /// Work protected by completed checkpoints.
    durable: SimDuration,
    /// Start of the current attempt.
    attempt_start: SimTime,
    /// Start of the current compute segment (or of the in-flight
    /// checkpoint while `phase == Checkpointing`).
    segment_start: SimTime,
    /// `cjx`: start time of the last completed checkpoint in this attempt,
    /// else the attempt start.
    rollback_anchor: SimTime,
    skipped_since_last: u64,
    failures: u32,
    ckpt_performed: u32,
    ckpt_skipped: u32,
}

/// The full probabilistic-QoS system simulator.
///
/// # Examples
///
/// ```
/// use pqos_core::config::SimConfig;
/// use pqos_core::system::QosSimulator;
/// use pqos_core::user::UserStrategy;
/// use pqos_failures::synthetic::AixLikeTrace;
/// use pqos_workload::synthetic::{LogModel, SyntheticLog};
/// use std::sync::Arc;
///
/// let log = SyntheticLog::new(LogModel::NasaIpsc).jobs(100).seed(1).build();
/// let trace = Arc::new(AixLikeTrace::new().days(30.0).seed(1).build());
/// let config = SimConfig::paper_defaults()
///     .accuracy(1.0)
///     .user(UserStrategy::risk_threshold(0.9).unwrap());
/// let output = QosSimulator::new(config, log, trace).run();
/// assert_eq!(output.report.jobs + output.rejected.len(), 100);
/// assert!(output.report.qos > 0.0);
/// ```
pub struct QosSimulator {
    config: SimConfig,
    jobs: HashMap<JobId, JobState>,
    arrival_order: Vec<Job>,
    trace: Arc<FailureTrace>,
    predictor: Arc<dyn Predictor + Send + Sync>,
    /// Historical per-node failure rate (failures per node-second),
    /// estimated from the trace; feeds the base-rate checkpoint prior.
    baseline_node_rate: f64,
    policy: Box<dyn CheckpointPolicy>,
    cluster: Cluster,
    book: ReservationBook,
    events: EventQueue<Event>,
    node_owner: Vec<Option<JobId>>,
    down_until: Vec<SimTime>,
    metrics: MetricsCollector,
    rejected: Vec<JobId>,
    failure_hook: Option<Box<dyn FnMut(NodeId, SimTime) + Send>>,
    telemetry: Telemetry,
    profiler: DispatchProfiler,
}

impl std::fmt::Debug for QosSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QosSimulator")
            .field("config", &self.config)
            .field("jobs", &self.jobs.len())
            .field("policy", &self.policy.name())
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl QosSimulator {
    /// Builds a simulator over a job log and failure trace.
    ///
    /// # Panics
    ///
    /// Panics if the configured accuracy is outside `[0, 1]` (prevented by
    /// [`SimConfig::accuracy`]).
    pub fn new(config: SimConfig, log: JobLog, trace: Arc<FailureTrace>) -> Self {
        let oracle = TraceOracle::new(Arc::clone(&trace), config.accuracy)
            .expect("SimConfig validated accuracy");
        Self::with_predictor(config, log, trace, Arc::new(oracle))
    }

    /// Builds a simulator that consults an arbitrary predictor instead of
    /// the trace oracle — e.g. one of the online models from
    /// `pqos_predict::online`, or [`pqos_predict::api::NullPredictor`].
    ///
    /// The failure trace is still replayed as ground truth; only the
    /// *forecasts* change. `config.accuracy` is ignored in this mode.
    pub fn with_predictor(
        config: SimConfig,
        log: JobLog,
        trace: Arc<FailureTrace>,
        predictor: Arc<dyn Predictor + Send + Sync>,
    ) -> Self {
        let policy = config.checkpoint_policy.build();
        let cluster = Cluster::with_topology(config.cluster_size, config.topology);
        let book = ReservationBook::new(config.cluster_size);
        let n = config.cluster_size as usize;
        let stats = trace.stats();
        let baseline_node_rate = if stats.span.is_zero() {
            0.0
        } else {
            stats.count as f64 / (stats.span.as_secs() as f64 * f64::from(config.cluster_size))
        };
        QosSimulator {
            arrival_order: log.jobs().to_vec(),
            jobs: HashMap::new(),
            trace,
            predictor,
            baseline_node_rate,
            policy,
            cluster,
            book,
            events: EventQueue::new(),
            node_owner: vec![None; n],
            down_until: vec![SimTime::ZERO; n],
            metrics: MetricsCollector::new(),
            rejected: Vec::new(),
            failure_hook: None,
            telemetry: Telemetry::disabled(),
            profiler: DispatchProfiler::new(&Telemetry::disabled()),
            config,
        }
    }

    /// Installs a hook invoked at every replayed node failure (whether or
    /// not a job was hit), before the scheduler reacts. Used to feed
    /// online predictors during the run (see
    /// `pqos_predict::online::SharedRateEstimator`) or for custom
    /// instrumentation.
    pub fn with_failure_hook(mut self, hook: Box<dyn FnMut(NodeId, SimTime) + Send>) -> Self {
        self.failure_hook = Some(hook);
        self
    }

    /// Attaches a telemetry handle: lifecycle events flow to its journal
    /// sinks and decision metrics to its registry, surfaced as
    /// [`SimOutput::telemetry`] after the run.
    ///
    /// With an enabled handle the predictor and checkpoint policy are
    /// wrapped in transparent counting adapters
    /// ([`InstrumentedPredictor`], [`InstrumentedPolicy`]); a disabled
    /// handle leaves the simulator exactly as built, so the default path
    /// pays nothing.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        if telemetry.is_enabled() {
            self.predictor = Arc::new(InstrumentedPredictor::new(
                Arc::clone(&self.predictor),
                telemetry.clone(),
            ));
            self.policy = Box::new(InstrumentedPolicy::new(self.policy, telemetry.clone()));
        }
        self.profiler = DispatchProfiler::new(&telemetry);
        self.telemetry = telemetry;
        self
    }

    /// Runs the simulation to completion and returns the output.
    pub fn run(mut self) -> SimOutput {
        // Pre-schedule the raw trace replay and all arrivals. Failure
        // events are pushed first so that, at equal timestamps, a failure
        // beats a start/checkpoint event — matching the paper's "the
        // failure may occur before the completion of checkpoint i".
        let failure_schedule: Vec<(SimTime, usize)> = self
            .trace
            .failures()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.node.index() < self.config.cluster_size as usize)
            .map(|(index, f)| (f.time, index))
            .collect();
        for (time, index) in failure_schedule {
            self.push_event(time, Event::NodeFailure { index });
        }
        for job in self.arrival_order.clone() {
            self.push_event(job.arrival(), Event::Arrival(job.id()));
        }
        while let Some((now, event)) = self.events.pop() {
            let timer = self.profiler.timer(&event);
            self.dispatch(now, event);
            timer.stop();
        }
        let report = self.metrics.report(self.config.cluster_size);
        self.telemetry.flush();
        SimOutput {
            report,
            collector: self.metrics,
            rejected: self.rejected,
            telemetry: self.telemetry.snapshot(),
        }
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Arrival(job) => self.on_arrival(now, job),
            Event::Start { job, epoch } => self.on_start(now, job, epoch),
            Event::CheckpointRequest { job, epoch } => self.on_ckpt_request(now, job, epoch),
            Event::CheckpointFinish { job, epoch } => self.on_ckpt_finish(now, job, epoch),
            Event::Finish { job, epoch } => self.on_finish(now, job, epoch),
            Event::NodeFailure { index } => self.on_failure(now, index),
            Event::NodeRecovery { node } => self.on_recovery(now, node),
        }
    }

    fn push_event(&mut self, at: SimTime, event: Event) {
        self.events.push_with_priority(at, priority(&event), event);
    }

    fn down_nodes(&self) -> (Vec<NodeId>, SimTime) {
        let mut down = Vec::new();
        let mut horizon = SimTime::ZERO;
        for (i, &until) in self.down_until.iter().enumerate() {
            if !self.cluster.state(NodeId::new(i as u32)).is_up() {
                down.push(NodeId::new(i as u32));
                horizon = horizon.max(until);
            }
        }
        (down, horizon)
    }

    fn on_arrival(&mut self, now: SimTime, id: JobId) {
        let job = *self
            .arrival_order
            .iter()
            .find(|j| j.id() == id)
            .expect("arrival for unknown job");
        self.telemetry.counter("jobs.submitted").inc();
        self.telemetry.emit(|| TelemetryEvent::JobSubmitted {
            at: now,
            job: id.as_u64(),
            size: job.nodes(),
            runtime_secs: job.runtime().as_secs(),
        });
        let plan = planned_execution(
            job.runtime(),
            self.config.checkpoint_interval,
            self.config.checkpoint_overhead,
        );
        let (down, horizon) = self.down_nodes();
        let Some(outcome) = negotiate_with_telemetry(
            &self.book,
            self.config.topology,
            self.config.placement,
            &self.predictor,
            NegotiationRequest {
                size: job.nodes(),
                duration: plan.total,
                now,
                down: &down,
                recovery_horizon: horizon,
                pre_start_risk: self.config.node_downtime,
            },
            &self.config.user,
            self.config.max_negotiation_slots,
            self.config.max_probe_steps,
            &self.telemetry,
        ) else {
            self.telemetry.counter("jobs.rejected").inc();
            self.telemetry.emit(|| TelemetryEvent::JobRejected {
                at: now,
                job: id.as_u64(),
            });
            self.rejected.push(id);
            return;
        };
        let quote = outcome.accepted;
        self.telemetry
            .histogram("negotiate.quotes_examined")
            .observe(outcome.quotes_examined as f64);
        if !outcome.satisfied_threshold {
            self.telemetry.counter("negotiate.fallbacks").inc();
        }
        // The effective deadline the system holds itself to: the quoted
        // promise plus configured slack. Journaled so consumers can check
        // recorded outcomes against the commitment without re-deriving it.
        let slack = SimDuration::from_secs(
            (plan.total.as_secs() as f64 * self.config.deadline_slack) as u64,
        );
        let deadline = quote.deadline + slack;
        self.telemetry.emit(|| TelemetryEvent::QuoteNegotiated {
            at: now,
            job: id.as_u64(),
            start_secs: quote.start.as_secs(),
            promised_secs: quote.deadline.as_secs(),
            deadline_secs: deadline.as_secs(),
            success_probability: quote.promised_success(),
        });
        self.telemetry.emit(|| TelemetryEvent::JobPlaced {
            at: now,
            job: id.as_u64(),
            nodes: quote.partition.iter().map(|n| n.index() as u64).collect(),
            failure_probability: quote.failure_probability,
        });
        let reservation = self
            .book
            .add(
                id,
                quote.partition.clone(),
                TimeWindow::new(quote.start, quote.deadline),
            )
            .expect("negotiated slot must be reservable");
        let epoch = 0;
        self.jobs.insert(
            id,
            JobState {
                job,
                promised: quote.promised_success(),
                deadline,
                satisfied_threshold: outcome.satisfied_threshold,
                epoch,
                phase: Phase::Pending,
                reservation: Some(reservation),
                partition: Some(quote.partition.clone()),
                done: SimDuration::ZERO,
                durable: SimDuration::ZERO,
                attempt_start: quote.start,
                segment_start: quote.start,
                rollback_anchor: quote.start,
                skipped_since_last: 0,
                failures: 0,
                ckpt_performed: 0,
                ckpt_skipped: 0,
            },
        );
        self.push_event(quote.start, Event::Start { job: id, epoch });
    }

    fn on_start(&mut self, now: SimTime, id: JobId, epoch: u32) {
        let Some(state) = self.jobs.get(&id) else {
            return;
        };
        if state.epoch != epoch || state.phase != Phase::Pending {
            return;
        }
        let partition = state.partition.clone().expect("pending job has partition");
        if self.cluster.claim(&partition).is_err() {
            // A member node is down or still claimed by a late predecessor.
            // Retry once the known recoveries have passed, else shortly.
            let mut retry = now + START_RETRY;
            for n in partition.iter() {
                if !self.cluster.state(n).is_up() {
                    retry = retry.max(self.down_until[n.index()]);
                }
            }
            self.push_event(retry, Event::Start { job: id, epoch });
            return;
        }
        for n in partition.iter() {
            self.node_owner[n.index()] = Some(id);
        }
        let state = self.jobs.get_mut(&id).expect("checked above");
        state.phase = Phase::Running;
        state.attempt_start = now;
        state.rollback_anchor = now;
        state.skipped_since_last = 0;
        self.telemetry.counter("jobs.started").inc();
        self.telemetry.gauge("jobs.running").add(1);
        let restarts = state.failures;
        self.telemetry.emit(|| TelemetryEvent::JobStarted {
            at: now,
            job: id.as_u64(),
            restarts,
        });
        let state = self.jobs.get_mut(&id).expect("checked above");
        // Restarted attempts pay the recovery overhead R before useful
        // work resumes (the paper uses R = 0; configurable for ablations).
        let recovery = if state.failures > 0 {
            self.config.restart_overhead
        } else {
            SimDuration::ZERO
        };
        self.schedule_next_segment(id, now + recovery);
    }

    /// Starts the next compute segment for a running job: either up to the
    /// next checkpoint request or straight to the finish line.
    fn schedule_next_segment(&mut self, id: JobId, now: SimTime) {
        let interval = self.config.checkpoint_interval;
        let state = self.jobs.get_mut(&id).expect("segment for unknown job");
        state.segment_start = now;
        let remaining = state.job.runtime() - state.done;
        let epoch = state.epoch;
        if remaining <= interval {
            self.push_event(now + remaining, Event::Finish { job: id, epoch });
        } else {
            self.push_event(now + interval, Event::CheckpointRequest { job: id, epoch });
        }
    }

    fn on_ckpt_request(&mut self, now: SimTime, id: JobId, epoch: u32) {
        let overhead = self.config.checkpoint_overhead;
        let interval = self.config.checkpoint_interval;
        let deadline_aware = self.config.deadline_aware_skips;

        let Some(state) = self.jobs.get(&id) else {
            return;
        };
        if state.epoch != epoch || state.phase != Phase::Running {
            return;
        }
        self.telemetry.emit(|| TelemetryEvent::CheckpointRequested {
            at: now,
            job: id.as_u64(),
        });
        let state = self.jobs.get(&id).expect("checked above");
        let partition = state.partition.clone().expect("running job has partition");
        // One interval of work has just completed.
        let done = state.done + (now - state.segment_start);
        let remaining = state.job.runtime() - done;
        debug_assert!(!remaining.is_zero(), "request at finish boundary");

        // Risk window: from this request through completion of the *next*
        // checkpoint (f_{i+1} in the paper's notation).
        let risk_window =
            TimeWindow::starting_at(now, overhead.saturating_mul(2) + interval.min(remaining));
        let pf = self
            .predictor
            .failure_probability(partition.as_slice(), risk_window);
        // Base-rate probability of losing this partition over the same
        // window, from the historical failure rate.
        let baseline = 1.0
            - (-self.baseline_node_rate
                * partition.len() as f64
                * risk_window.length().as_secs() as f64)
                .exp();

        // Deadline pressure (§3.4): performing now — even if every future
        // checkpoint is skipped — would miss the deadline, while skipping
        // keeps it reachable.
        let deadline = state.deadline;
        let miss_if_perform = now + overhead + remaining > deadline;
        let meet_if_skip = now + remaining <= deadline;
        let pressure = if deadline_aware && miss_if_perform && meet_if_skip {
            DeadlinePressure::SkipToMeet
        } else {
            DeadlinePressure::None
        };
        let ctx = CheckpointContext {
            now,
            interval,
            overhead,
            skipped_since_last: state.skipped_since_last,
            failure_probability: pf,
            baseline_failure_probability: baseline,
            deadline_pressure: pressure,
        };
        let decision = if pressure == DeadlinePressure::SkipToMeet {
            CheckpointDecision::Skip
        } else {
            self.policy.decide(&ctx)
        };

        let state = self.jobs.get_mut(&id).expect("checked above");
        state.done = done;
        match decision {
            CheckpointDecision::Perform => {
                state.phase = Phase::Checkpointing;
                state.segment_start = now;
                state.ckpt_performed += 1;
                self.push_event(now + overhead, Event::CheckpointFinish { job: id, epoch });
            }
            CheckpointDecision::Skip => {
                state.skipped_since_last += 1;
                state.ckpt_skipped += 1;
                self.telemetry.emit(|| {
                    // Attribution mirrors the decision path: the deadline
                    // override wins, then Eq. 1's expected-loss test, and
                    // anything else is the policy's own business (periodic
                    // phase, checkpointing disabled, ...).
                    let eq1_low = pf * (ctx.at_risk().as_secs() as f64) < overhead.as_secs() as f64;
                    let reason = if pressure == DeadlinePressure::SkipToMeet {
                        SkipReason::DeadlinePressure
                    } else if eq1_low {
                        SkipReason::LowRisk
                    } else {
                        SkipReason::Policy
                    };
                    TelemetryEvent::CheckpointSkipped {
                        at: now,
                        job: id.as_u64(),
                        reason,
                        failure_probability: pf,
                        at_risk_secs: ctx.at_risk().as_secs(),
                    }
                });
                self.schedule_next_segment(id, now);
            }
        }
    }

    fn on_ckpt_finish(&mut self, now: SimTime, id: JobId, epoch: u32) {
        let Some(state) = self.jobs.get_mut(&id) else {
            return;
        };
        if state.epoch != epoch || state.phase != Phase::Checkpointing {
            return;
        }
        state.durable = state.done;
        // cjx is the *start* of the last successful checkpoint (§3.5).
        state.rollback_anchor = state.segment_start;
        state.skipped_since_last = 0;
        state.phase = Phase::Running;
        let overhead = self.config.checkpoint_overhead;
        self.telemetry.emit(|| TelemetryEvent::CheckpointTaken {
            at: now,
            job: id.as_u64(),
            overhead_secs: overhead.as_secs(),
        });
        self.schedule_next_segment(id, now);
    }

    fn on_finish(&mut self, now: SimTime, id: JobId, epoch: u32) {
        let Some(state) = self.jobs.get(&id) else {
            return;
        };
        if state.epoch != epoch || state.phase != Phase::Running {
            return;
        }
        let partition = state.partition.clone().expect("running job has partition");
        self.cluster
            .release(&partition)
            .expect("finishing job held its claim");
        for n in partition.iter() {
            self.node_owner[n.index()] = None;
        }
        let state = self.jobs.get_mut(&id).expect("checked above");
        state.done = state.job.runtime();
        state.phase = Phase::Done;
        if let Some(r) = state.reservation.take() {
            self.book.remove(r);
        }
        let state = self.jobs.get(&id).expect("checked above");
        self.metrics.record_outcome(JobOutcome {
            id,
            nodes: state.job.nodes(),
            runtime: state.job.runtime(),
            arrival: state.job.arrival(),
            promised: state.promised,
            deadline: state.deadline,
            last_start: state.attempt_start,
            finish: now,
            met_deadline: now <= state.deadline,
            failures: state.failures,
            satisfied_threshold: state.satisfied_threshold,
            checkpoints_performed: state.ckpt_performed,
            checkpoints_skipped: state.ckpt_skipped,
        });
        let deadline = state.deadline;
        let met_deadline = now <= deadline;
        self.telemetry.counter("jobs.completed").inc();
        self.telemetry.gauge("jobs.running").add(-1);
        self.telemetry.emit(|| TelemetryEvent::JobCompleted {
            at: now,
            job: id.as_u64(),
            met_deadline,
        });
        if !met_deadline {
            self.telemetry.counter("jobs.deadline_missed").inc();
            self.telemetry.emit(|| TelemetryEvent::DeadlineMissed {
                at: now,
                job: id.as_u64(),
                late_by_secs: now.saturating_since(deadline).as_secs(),
            });
        }
        let promised = state.promised;
        let verdict = if met_deadline {
            PromiseVerdict::Kept
        } else {
            PromiseVerdict::Broken
        };
        self.telemetry.emit(|| TelemetryEvent::PromiseResolved {
            at: now,
            job: id.as_u64(),
            success_probability: promised,
            deadline_secs: deadline.as_secs(),
            verdict,
        });
    }

    fn on_failure(&mut self, now: SimTime, index: usize) {
        let node = self.trace.failures()[index].node;
        if let Some(hook) = self.failure_hook.as_mut() {
            hook(node, now);
        }
        let was_up = self.cluster.state(node).is_up();
        let until = now + self.config.node_downtime;
        self.cluster.mark_down(node, until);
        self.down_until[node.index()] = until;
        self.push_event(until, Event::NodeRecovery { node });

        let victim_state = self.node_owner[node.index()]
            .and_then(|id| self.jobs.get(&id).map(|s| (id, s)))
            .filter(|(_, s)| matches!(s.phase, Phase::Running | Phase::Checkpointing));
        // ω_lost contribution: wall-clock since the last checkpoint started
        // (or the attempt began), times the job's size.
        let victim = victim_state.map(|(id, state)| {
            let lost = now.saturating_since(state.rollback_anchor).as_secs()
                * u64::from(state.job.nodes());
            (id, lost)
        });

        if self.telemetry.is_enabled() {
            if was_up {
                self.telemetry.gauge("cluster.nodes_down").add(1);
            }
            // Hit/miss accounting: did the predictor flag this node for the
            // instant the failure struck? (Pure query — safe to make on the
            // telemetered path only.)
            let strike = TimeWindow::starting_at(now, SimDuration::from_secs(1));
            let predicted = self.predictor.node_failure_probability(node, strike) > 0.0;
            self.telemetry
                .counter(if predicted {
                    "failures.predicted"
                } else {
                    "failures.missed"
                })
                .inc();
            self.telemetry.emit(|| TelemetryEvent::NodeFailed {
                at: now,
                node: node.index() as u64,
                victim_job: victim.map(|(id, _)| id.as_u64()),
                lost_node_seconds: victim.map_or(0, |(_, lost)| lost),
                predicted,
            });
        }

        let Some((victim, lost)) = victim else {
            return;
        };
        self.telemetry.gauge("jobs.running").add(-1);
        let state = self.jobs.get(&victim).expect("owner map tracks live jobs");
        let partition = state.partition.clone().expect("running job has partition");
        self.metrics.record_lost_work(LostWorkEvent {
            time: now,
            job: victim,
            nodes: state.job.nodes(),
            lost_node_seconds: lost,
        });

        self.cluster
            .release(&partition)
            .expect("failed job held its claim");
        for n in partition.iter() {
            self.node_owner[n.index()] = None;
        }
        let state = self.jobs.get_mut(&victim).expect("checked above");
        state.failures += 1;
        state.epoch += 1;
        state.phase = Phase::Pending;
        state.done = state.durable;
        if let Some(r) = state.reservation.take() {
            self.book.remove(r);
        }
        self.requeue(now, victim);
    }

    /// Re-commits a failed job to the earliest feasible slot. The deadline
    /// and promise are unchanged — re-negotiation after a failure would let
    /// the system walk back its word.
    fn requeue(&mut self, now: SimTime, id: JobId) {
        let state = self.jobs.get(&id).expect("requeue of unknown job");
        let remaining = state.job.runtime() - state.durable;
        self.telemetry.counter("jobs.requeued").inc();
        self.telemetry.emit(|| TelemetryEvent::JobRequeued {
            at: now,
            job: id.as_u64(),
            remaining_secs: remaining.as_secs(),
        });
        let mut plan = planned_execution(
            remaining,
            self.config.checkpoint_interval,
            self.config.checkpoint_overhead,
        );
        plan.total += self.config.restart_overhead;
        let size = state.job.nodes();
        let epoch = state.epoch;
        let (down, horizon) = self.down_nodes();
        let outcome = negotiate_with_telemetry(
            &self.book,
            self.config.topology,
            self.config.placement,
            &self.predictor,
            NegotiationRequest {
                size,
                duration: plan.total,
                now,
                down: &down,
                recovery_horizon: horizon,
                pre_start_risk: self.config.node_downtime,
            },
            // Earliest restart gives the best chance of still making the
            // already-negotiated deadline.
            &UserStrategy::AlwaysEarliest,
            self.config.max_negotiation_slots,
            self.config.max_probe_steps,
            &self.telemetry,
        )
        .expect("job fit the cluster at submission");
        let quote = outcome.accepted;
        // Journal the new placement: the doctor's node-occupancy check
        // needs to know which partition this attempt will run on.
        self.telemetry.emit(|| TelemetryEvent::JobPlaced {
            at: now,
            job: id.as_u64(),
            nodes: quote.partition.iter().map(|n| n.index() as u64).collect(),
            failure_probability: quote.failure_probability,
        });
        let reservation = self
            .book
            .add(
                id,
                quote.partition.clone(),
                TimeWindow::new(quote.start, quote.deadline),
            )
            .expect("negotiated slot must be reservable");
        let state = self.jobs.get_mut(&id).expect("checked above");
        state.reservation = Some(reservation);
        state.partition = Some(quote.partition);
        self.push_event(quote.start, Event::Start { job: id, epoch });
    }

    fn on_recovery(&mut self, now: SimTime, node: NodeId) {
        // A newer failure may have extended the downtime; only the final
        // recovery brings the node up. Coincident failures schedule duplicate
        // recoveries at the same instant, so also skip nodes already up.
        if self.down_until[node.index()] <= now && !self.cluster.state(node).is_up() {
            self.cluster.mark_up(node);
            self.telemetry.gauge("cluster.nodes_down").add(-1);
            self.telemetry.emit(|| TelemetryEvent::NodeRecovered {
                at: now,
                node: node.index() as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckpointPolicyKind;
    use pqos_failures::trace::Failure;
    use pqos_sim_core::time::SimDuration;

    fn job(id: u64, arrive: u64, nodes: u32, runtime: u64) -> Job {
        Job::new(
            JobId::new(id),
            SimTime::from_secs(arrive),
            nodes,
            SimDuration::from_secs(runtime),
        )
        .unwrap()
    }

    fn trace(failures: Vec<(u64, u32, f64)>) -> Arc<FailureTrace> {
        Arc::new(
            FailureTrace::new(
                failures
                    .into_iter()
                    .map(|(t, n, px)| Failure {
                        time: SimTime::from_secs(t),
                        node: NodeId::new(n),
                        detectability: px,
                    })
                    .collect(),
            )
            .unwrap(),
        )
    }

    fn small_config() -> SimConfig {
        SimConfig::paper_defaults().cluster_size_nodes(4)
    }

    #[test]
    fn failure_free_run_completes_everything_on_time() {
        let log = JobLog::new(vec![job(0, 0, 2, 100), job(1, 10, 2, 100)]).unwrap();
        let out = QosSimulator::new(small_config(), log, trace(vec![])).run();
        assert_eq!(out.report.jobs, 2);
        assert_eq!(out.report.deadline_misses, 0);
        assert_eq!(out.report.lost_work, 0);
        assert!((out.report.qos - 1.0).abs() < 1e-12);
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn serial_jobs_when_machine_too_small() {
        // Two 3-node jobs on a 4-node machine must run serially.
        let log = JobLog::new(vec![job(0, 0, 3, 100), job(1, 0, 3, 100)]).unwrap();
        let out = QosSimulator::new(small_config(), log, trace(vec![])).run();
        assert_eq!(out.report.jobs, 2);
        let finishes: Vec<u64> = out
            .collector
            .outcomes()
            .iter()
            .map(|o| o.finish.as_secs())
            .collect();
        assert!(finishes.contains(&100));
        assert!(finishes.contains(&200));
        assert_eq!(
            out.report.deadline_misses, 0,
            "promised deadlines account for queueing"
        );
    }

    #[test]
    fn oversized_job_is_rejected() {
        let log = JobLog::new(vec![job(0, 0, 99, 100)]).unwrap();
        let out = QosSimulator::new(small_config(), log, trace(vec![])).run();
        assert_eq!(out.report.jobs, 0);
        assert_eq!(out.rejected, vec![JobId::new(0)]);
    }

    #[test]
    fn undetected_failure_kills_and_restarts_job() {
        // One 2-node job; node 0 fails at t=50 with px=0.9, invisible at
        // a=0. No checkpoints possible (runtime < I). The job restarts from
        // scratch after the failure and finishes late.
        let log = JobLog::new(vec![job(0, 0, 2, 100)]).unwrap();
        let out =
            QosSimulator::new(small_config().accuracy(0.0), log, trace(vec![(50, 0, 0.9)])).run();
        assert_eq!(out.report.jobs, 1);
        assert_eq!(out.report.job_failures, 1);
        // Lost work: 50 s × 2 nodes.
        assert_eq!(out.report.lost_work, 100);
        assert_eq!(out.report.deadline_misses, 1);
        assert_eq!(out.report.qos, 0.0);
        let o = &out.collector.outcomes()[0];
        assert!(o.finish.as_secs() >= 150, "finish {}", o.finish);
    }

    #[test]
    fn predicted_failure_is_avoided_by_placement() {
        // Node 0 fails at t=50, fully detectable. The 2-node job fits on
        // nodes 1-3 avoiding it entirely, even for an earliest-deadline
        // user (placement dodges within the same slot).
        let log = JobLog::new(vec![job(0, 0, 2, 100)]).unwrap();
        let out =
            QosSimulator::new(small_config().accuracy(1.0), log, trace(vec![(50, 0, 0.5)])).run();
        assert_eq!(out.report.job_failures, 0);
        assert_eq!(out.report.lost_work, 0);
        assert_eq!(out.report.deadline_misses, 0);
        assert!((out.report.qos - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cautious_user_waits_out_unavoidable_failure() {
        // Every node fails detectably at t=50 (px=0.4 → promise 0.6).
        // A U=0.9 user extends the deadline past the failures; an
        // earliest-deadline user gets hit.
        let failures = vec![(50, 0, 0.4), (50, 1, 0.4), (50, 2, 0.4), (50, 3, 0.4)];
        let log = JobLog::new(vec![job(0, 0, 4, 100)]).unwrap();

        let cautious = QosSimulator::new(
            small_config()
                .accuracy(1.0)
                .user(UserStrategy::risk_threshold(0.9).unwrap()),
            log.clone(),
            trace(failures.clone()),
        )
        .run();
        assert_eq!(cautious.report.job_failures, 0);
        assert_eq!(cautious.report.deadline_misses, 0);
        assert!((cautious.report.qos - 1.0).abs() < 1e-12);
        // The job waited: its start is after the failure burst.
        assert!(cautious.collector.outcomes()[0].last_start > SimTime::from_secs(50));

        let bold = QosSimulator::new(small_config().accuracy(1.0), log, trace(failures)).run();
        assert_eq!(bold.report.job_failures, 1);
        // Promise was honest: 0.6 — and the deadline was missed, so QoS
        // collects nothing.
        assert_eq!(bold.report.deadline_misses, 1);
        assert_eq!(bold.report.qos, 0.0);
        assert!((bold.collector.outcomes()[0].promised - 0.6).abs() < 1e-12);
    }

    #[test]
    fn periodic_checkpointing_bounds_lost_work() {
        // Long job (3 h) with I=1 h, C=100 s; node fails at t=2.5 h,
        // undetectable. With periodic checkpointing the rollback is at most
        // I + C wall-clock.
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .accuracy(0.0)
            .checkpoint_overhead_secs(SimDuration::from_secs(100))
            .checkpoint_policy(CheckpointPolicyKind::Periodic);
        let log = JobLog::new(vec![job(0, 0, 1, 3 * 3600)]).unwrap();
        let out = QosSimulator::new(config, log.clone(), trace(vec![(9000, 0, 0.9)])).run();
        assert_eq!(out.report.job_failures, 1);
        // Last checkpoint started at 7300 (3600 work + 100 C + 3600 work);
        // failure at 9000 → lost 1700 node-s (1 node).
        assert_eq!(out.report.lost_work, 1700);

        // Same scenario without checkpointing loses the whole 9000 s.
        let none = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .accuracy(0.0)
            .checkpoint_policy(CheckpointPolicyKind::None);
        let out2 = QosSimulator::new(none, log, trace(vec![(9000, 0, 0.9)])).run();
        assert_eq!(out2.report.lost_work, 9000);
        assert!(out2.report.lost_work > out.report.lost_work);
    }

    #[test]
    fn risk_based_checkpoints_only_before_predicted_failures() {
        // 4-hour 1-node job on a 1-node cluster; failure at t=2.2 h with
        // px=0.3, fully detectable but unavoidable (only one node). The
        // risk-based policy performs the checkpoint request at t=1h? No:
        // pf over [3600, 3600+I+2C] covers 2.2h=7920 < 3600+5040 → pf=0.3;
        // Eq.1: 0.3·3600=1080 ≥ 720 → perform. So the rollback anchor is
        // close to the failure and little is lost.
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(1)
            .accuracy(1.0)
            .checkpoint_policy(CheckpointPolicyKind::RiskBased);
        let log = JobLog::new(vec![job(0, 0, 1, 4 * 3600)]).unwrap();
        let out = QosSimulator::new(config, log, trace(vec![(7920, 0, 0.3)])).run();
        assert_eq!(out.report.job_failures, 1);
        // Exactly one checkpoint: the request at t=3600 sees the predicted
        // failure and performs; post-restart requests see pf = 0 and the
        // literal Eq. 1 skips them.
        assert_eq!(out.report.checkpoints_performed, 1);
        assert!(out.report.checkpoints_skipped >= 2);
        // Lost work ≤ failure time − checkpoint start = 7920 − 3600.
        assert!(
            out.report.lost_work <= 4320,
            "lost {}",
            out.report.lost_work
        );
        assert_eq!(out.report.jobs, 1);
    }

    #[test]
    fn deterministic_replay() {
        let log = JobLog::new(
            (0..20)
                .map(|i| job(i, i * 50, (i % 3 + 1) as u32, 500))
                .collect(),
        )
        .unwrap();
        let t = trace(vec![(300, 0, 0.2), (800, 2, 0.6), (2000, 1, 0.9)]);
        let a = QosSimulator::new(small_config().accuracy(0.5), log.clone(), Arc::clone(&t)).run();
        let b = QosSimulator::new(small_config().accuracy(0.5), log, t).run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.collector.outcomes(), b.collector.outcomes());
    }

    #[test]
    fn node_recovers_after_downtime() {
        // Failure at t=50 on the only node, which stays down until t=170
        // (120 s restart). The job arrives at t=60 while the node is down,
        // so negotiation excludes it and pushes the start out to the
        // recovery horizon at t=170.
        let log = JobLog::new(vec![job(0, 60, 1, 100)]).unwrap();
        let out = QosSimulator::new(
            SimConfig::paper_defaults()
                .cluster_size_nodes(1)
                .accuracy(0.0),
            log,
            trace(vec![(50, 0, 0.9)]),
        )
        .run();
        assert_eq!(out.report.jobs, 1);
        let o = &out.collector.outcomes()[0];
        assert!(
            o.last_start >= SimTime::from_secs(170),
            "start {}",
            o.last_start
        );
        assert_eq!(out.report.deadline_misses, 0);
    }

    #[test]
    fn checkpoint_overhead_extends_finish_but_not_runtime_metric() {
        // 2-hour job with periodic checkpointing: one checkpoint → finish
        // at 2h + C; utilization counts only ej.
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(1)
            .checkpoint_policy(CheckpointPolicyKind::Periodic);
        let log = JobLog::new(vec![job(0, 0, 1, 7200)]).unwrap();
        let out = QosSimulator::new(config, log, trace(vec![])).run();
        let o = &out.collector.outcomes()[0];
        assert_eq!(o.finish.as_secs(), 7200 + 720);
        assert_eq!(o.checkpoints_performed, 1);
        assert_eq!(out.report.total_work, 7200);
        assert_eq!(out.report.deadline_misses, 0, "deadline included overhead");
    }

    #[test]
    fn null_predictor_matches_zero_accuracy_oracle() {
        use pqos_predict::api::NullPredictor;
        let log = JobLog::new(
            (0..30)
                .map(|i| job(i, i * 40, (i % 3 + 1) as u32, 400))
                .collect(),
        )
        .unwrap();
        let t = trace(vec![(500, 0, 0.4), (3000, 2, 0.7)]);
        let config = small_config().accuracy(0.0);
        let via_oracle = QosSimulator::new(config.clone(), log.clone(), Arc::clone(&t)).run();
        let via_null = QosSimulator::with_predictor(config, log, t, Arc::new(NullPredictor)).run();
        assert_eq!(via_oracle.report, via_null.report);
    }

    #[test]
    fn restart_overhead_delays_completion() {
        // 1-node job, 100 s; invisible failure at t=50; R=60.
        let log = JobLog::new(vec![job(0, 0, 1, 100)]).unwrap();
        let t = trace(vec![(50, 0, 0.9)]);
        let without = QosSimulator::new(
            SimConfig::paper_defaults()
                .cluster_size_nodes(1)
                .accuracy(0.0),
            log.clone(),
            Arc::clone(&t),
        )
        .run();
        let with_r = QosSimulator::new(
            SimConfig::paper_defaults()
                .cluster_size_nodes(1)
                .accuracy(0.0)
                .restart_overhead_secs(SimDuration::from_secs(60)),
            log,
            t,
        )
        .run();
        let f0 = without.collector.outcomes()[0].finish.as_secs();
        let f1 = with_r.collector.outcomes()[0].finish.as_secs();
        assert_eq!(f1, f0 + 60, "restart pays R before work resumes");
    }

    #[test]
    fn deadline_slack_rescues_marginal_misses() {
        // Failure costs 50 s on a 100 s job; 100% slack covers the rerun.
        let log = JobLog::new(vec![job(0, 0, 2, 100)]).unwrap();
        let t = trace(vec![(50, 0, 0.9)]);
        let strict =
            QosSimulator::new(small_config().accuracy(0.0), log.clone(), Arc::clone(&t)).run();
        assert_eq!(strict.report.deadline_misses, 1);
        let slack = QosSimulator::new(
            small_config().accuracy(0.0).deadline_slack_fraction(1.0),
            log,
            t,
        )
        .run();
        assert_eq!(slack.report.deadline_misses, 0);
    }

    #[test]
    fn prior_policy_checkpoints_without_predictions() {
        // Long 1-node job on a trace dense enough that the base-rate prior
        // alone justifies occasional checkpoints; invisible failures (a=0).
        let failures: Vec<(u64, u32, f64)> = (1..200).map(|k| (k * 3000, 1, 0.9)).collect(); // node 1: drives the base rate
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .accuracy(0.0)
            .checkpoint_policy(CheckpointPolicyKind::RiskBasedWithPrior);
        let log = JobLog::new(vec![job(0, 0, 1, 12 * 3600)]).unwrap();
        let out = QosSimulator::new(config, log.clone(), trace(failures.clone())).run();
        let o = &out.collector.outcomes()[0];
        assert!(
            o.checkpoints_performed > 0,
            "prior should trigger some checkpoints"
        );
        // But strictly fewer than periodic would perform.
        let periodic = QosSimulator::new(
            SimConfig::paper_defaults()
                .cluster_size_nodes(2)
                .accuracy(0.0)
                .checkpoint_policy(CheckpointPolicyKind::Periodic),
            log,
            trace(failures),
        )
        .run();
        assert!(
            out.report.checkpoints_performed <= periodic.report.checkpoints_performed,
            "prior performs no more than periodic"
        );
    }

    #[test]
    fn same_instant_checkpoint_finish_precedes_start() {
        use pqos_telemetry::Telemetry;
        // Job 0 (periodic checkpoints, I=3600, C=720) finishes its first
        // checkpoint at t=4320; job 1 arrives and starts on the other node
        // at that same instant. The ordering table says CheckpointFinish
        // (priority 2) resolves before Arrival (4) and Start (6), so the
        // journal must show the checkpoint completing before the start —
        // scheduling the finish at the default queue priority used to let
        // the start jump ahead.
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .checkpoint_policy(CheckpointPolicyKind::Periodic);
        let log = JobLog::new(vec![job(0, 0, 1, 7200), job(1, 4320, 1, 100)]).unwrap();
        let telemetry = Telemetry::builder().ring_buffer(1024).build();
        let out = QosSimulator::new(config, log, trace(vec![]))
            .with_telemetry(telemetry.clone())
            .run();
        assert_eq!(out.report.jobs, 2);
        assert_eq!(out.report.deadline_misses, 0);

        let events = telemetry.ring_events();
        let taken = events
            .iter()
            .position(|e| e.name() == "checkpoint_taken")
            .expect("periodic job checkpoints once");
        let started = events
            .iter()
            .position(|e| matches!(e, TelemetryEvent::JobStarted { job: 1, .. }))
            .expect("job 1 starts");
        assert!(
            taken < started,
            "checkpoint_taken (index {taken}) must precede job 1's start (index {started})"
        );
    }

    #[test]
    fn same_instant_checkpoint_request_precedes_start() {
        use pqos_telemetry::Telemetry;
        // Same collision on the request side: job 0's checkpoint request
        // (skipped under the None policy) lands at t=3600, the instant job
        // 1 arrives and starts. CheckpointRequest (priority 5) must resolve
        // before Start (6), so the skip is journaled before the start.
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .checkpoint_policy(CheckpointPolicyKind::None);
        let log = JobLog::new(vec![job(0, 0, 1, 7200), job(1, 3600, 1, 100)]).unwrap();
        let telemetry = Telemetry::builder().ring_buffer(1024).build();
        let out = QosSimulator::new(config, log, trace(vec![]))
            .with_telemetry(telemetry.clone())
            .run();
        assert_eq!(out.report.jobs, 2);

        let events = telemetry.ring_events();
        let skipped = events
            .iter()
            .position(|e| e.name() == "checkpoint_skipped")
            .expect("the None policy skips the request");
        let started = events
            .iter()
            .position(|e| matches!(e, TelemetryEvent::JobStarted { job: 1, .. }))
            .expect("job 1 starts");
        assert!(
            skipped < started,
            "checkpoint_skipped (index {skipped}) must precede job 1's start (index {started})"
        );
    }

    #[test]
    fn telemetry_captures_the_full_lifecycle() {
        use pqos_telemetry::Telemetry;
        // One failing restartable job + one oversized reject exercises
        // every decision point except recovery-before-end (covered too:
        // downtime elapses within the horizon).
        let log = JobLog::new(vec![job(0, 0, 2, 100), job(1, 5, 99, 100)]).unwrap();
        let telemetry = Telemetry::builder().ring_buffer(1024).build();
        let out = QosSimulator::new(small_config().accuracy(0.0), log, trace(vec![(50, 0, 0.9)]))
            .with_telemetry(telemetry.clone())
            .run();
        assert_eq!(out.report.jobs, 1);
        assert_eq!(out.rejected.len(), 1);

        let names: Vec<&str> = telemetry.ring_events().iter().map(|e| e.name()).collect();
        for expected in [
            "job_submitted",
            "quote_negotiated",
            "job_rejected",
            "job_placed",
            "job_started",
            "node_failed",
            "node_recovered",
            "job_requeued",
            "job_completed",
            "deadline_missed",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }

        let snap = out.telemetry.expect("telemetered run has a snapshot");
        assert_eq!(snap.counter("jobs.submitted"), Some(2));
        assert_eq!(snap.counter("jobs.rejected"), Some(1));
        assert_eq!(snap.counter("jobs.completed"), Some(1));
        assert_eq!(snap.counter("jobs.requeued"), Some(1));
        assert_eq!(snap.counter("jobs.deadline_missed"), Some(1));
        assert_eq!(snap.counter("failures.missed"), Some(1), "a=0 sees nothing");
        assert_eq!(snap.gauge("jobs.running"), Some(0), "all segments ended");
        assert_eq!(snap.gauge("cluster.nodes_down"), Some(0), "node recovered");
        assert!(snap.counter("sched.placements").unwrap_or(0) >= 2);
        assert!(snap.counter("predict.queries").unwrap_or(0) > 0);
    }

    #[test]
    fn dispatch_profile_appears_in_snapshot() {
        use pqos_telemetry::Telemetry;
        // One periodic-checkpointing job exercises arrival, start, request,
        // checkpoint-finish, and finish dispatches exactly once each.
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .checkpoint_policy(CheckpointPolicyKind::Periodic);
        let log = JobLog::new(vec![job(0, 0, 1, 7200)]).unwrap();
        let out = QosSimulator::new(config, log, trace(vec![]))
            .with_telemetry(Telemetry::builder().build())
            .run();
        let snap = out.telemetry.expect("telemetered run has a snapshot");
        for (name, expected) in [
            ("dispatch.arrival_ns", 1),
            ("dispatch.start_ns", 1),
            ("dispatch.ckpt_request_ns", 1),
            ("dispatch.ckpt_finish_ns", 1),
            ("dispatch.finish_ns", 1),
        ] {
            let h = snap.histogram(name).expect(name);
            assert_eq!(h.count, expected, "{name}");
            assert!(h.max >= 0.0, "{name} records nanoseconds");
        }
        assert!(snap.render().contains("dispatch.arrival_ns"));
        // The request itself is journaled ahead of its resolution.
        let events = Telemetry::disabled().ring_events();
        assert!(events.is_empty(), "disabled handle journals nothing");
    }

    #[test]
    fn checkpoint_request_event_precedes_its_resolution() {
        use pqos_telemetry::Telemetry;
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(2)
            .checkpoint_policy(CheckpointPolicyKind::Periodic);
        let log = JobLog::new(vec![job(0, 0, 1, 7200)]).unwrap();
        let telemetry = Telemetry::builder().ring_buffer(1024).build();
        QosSimulator::new(config, log, trace(vec![]))
            .with_telemetry(telemetry.clone())
            .run();
        let names: Vec<&str> = telemetry.ring_events().iter().map(|e| e.name()).collect();
        let requested = names
            .iter()
            .position(|n| *n == "checkpoint_requested")
            .expect("request journaled");
        let taken = names
            .iter()
            .position(|n| *n == "checkpoint_taken")
            .expect("periodic policy performs");
        assert!(requested < taken, "request precedes completion");
    }

    #[test]
    fn telemetry_does_not_change_the_simulation() {
        use pqos_telemetry::Telemetry;
        let log = JobLog::new(
            (0..20)
                .map(|i| job(i, i * 50, (i % 3 + 1) as u32, 500))
                .collect(),
        )
        .unwrap();
        let t = trace(vec![(300, 0, 0.2), (800, 2, 0.6), (2000, 1, 0.9)]);
        let plain = QosSimulator::new(small_config().accuracy(0.5), log.clone(), Arc::clone(&t));
        let telemetered = QosSimulator::new(small_config().accuracy(0.5), log, t)
            .with_telemetry(Telemetry::builder().ring_buffer(4096).build());
        let a = plain.run();
        let b = telemetered.run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.collector.outcomes(), b.collector.outcomes());
        assert!(a.telemetry.is_none());
        assert!(b.telemetry.is_some());
    }

    #[test]
    fn identically_seeded_runs_journal_identically() {
        use pqos_telemetry::Telemetry;
        use std::io::Write;
        use std::sync::Mutex;

        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let run = || {
            let log = JobLog::new(
                (0..20)
                    .map(|i| job(i, i * 50, (i % 3 + 1) as u32, 500))
                    .collect(),
            )
            .unwrap();
            let t = trace(vec![(300, 0, 0.2), (800, 2, 0.6), (2000, 1, 0.9)]);
            let sink = Shared::default();
            let telemetry = Telemetry::builder().jsonl_writer(sink.clone()).build();
            QosSimulator::new(small_config().accuracy(0.5), log, t)
                .with_telemetry(telemetry)
                .run();
            let bytes = sink.0.lock().unwrap().clone();
            bytes
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "journals must be byte-identical across replays");
    }

    #[test]
    fn risk_based_skips_everything_when_blind() {
        let config = SimConfig::paper_defaults()
            .cluster_size_nodes(1)
            .accuracy(0.0)
            .checkpoint_policy(CheckpointPolicyKind::RiskBased);
        let log = JobLog::new(vec![job(0, 0, 1, 7200)]).unwrap();
        let out = QosSimulator::new(config, log, trace(vec![])).run();
        let o = &out.collector.outcomes()[0];
        assert_eq!(o.checkpoints_performed, 0);
        assert_eq!(o.checkpoints_skipped, 1);
        // Finished early relative to the quoted deadline (which budgeted C).
        assert_eq!(o.finish.as_secs(), 7200);
        assert!(o.met_deadline);
    }
}
