//! Chrome `trace_event` / Perfetto export.
//!
//! Converts a journal into the JSON Object Format consumed by
//! `about://tracing`, Perfetto, and Speedscope: one track ("thread") per
//! job on the `jobs` process showing its reconstructed phases, one track
//! per node on the `nodes` process showing which job occupied it, instant
//! markers for skips / failures / missed deadlines, and a counter track
//! for the number of running jobs. Sim seconds map to trace microseconds,
//! so one sim second renders as 1 µs — Perfetto's zoom handles the rest.

use crate::span::{Outcome, SpanForest};
use pqos_telemetry::json::{Json, ObjWriter};
use pqos_telemetry::TelemetryEvent;
use std::collections::{BTreeMap, BTreeSet};

/// Process id used for per-job phase tracks.
const PID_JOBS: u64 = 1;
/// Process id used for per-node occupancy tracks.
const PID_NODES: u64 = 2;

fn micros(secs: u64) -> u64 {
    secs.saturating_mul(1_000_000)
}

/// One `ph:"X"` complete-span event.
fn complete(name: &str, pid: u64, tid: u64, start_secs: u64, dur_secs: u64, args: &str) -> String {
    let mut w = ObjWriter::new();
    w.str("name", name)
        .str("ph", "X")
        .u64("ts", micros(start_secs))
        .u64("dur", micros(dur_secs))
        .u64("pid", pid)
        .u64("tid", tid)
        .raw("args", args);
    w.finish()
}

/// One `ph:"i"` instant event (thread scope).
fn instant(name: &str, pid: u64, tid: u64, at_secs: u64, args: &str) -> String {
    let mut w = ObjWriter::new();
    w.str("name", name)
        .str("ph", "i")
        .str("s", "t")
        .u64("ts", micros(at_secs))
        .u64("pid", pid)
        .u64("tid", tid)
        .raw("args", args);
    w.finish()
}

/// One `ph:"M"` metadata event naming a process or thread.
fn metadata(kind: &str, pid: u64, tid: Option<u64>, label: &str) -> String {
    let mut w = ObjWriter::new();
    w.str("name", kind).str("ph", "M").u64("pid", pid);
    if let Some(tid) = tid {
        w.u64("tid", tid);
    }
    let mut args = ObjWriter::new();
    args.str("name", label);
    w.raw("args", &args.finish());
    w.finish()
}

/// One `ph:"C"` counter sample.
fn counter(name: &str, at_secs: u64, value: u64) -> String {
    let mut w = ObjWriter::new();
    let mut args = ObjWriter::new();
    args.u64("running", value);
    w.str("name", name)
        .str("ph", "C")
        .u64("ts", micros(at_secs))
        .u64("pid", PID_JOBS)
        .raw("args", &args.finish());
    w.finish()
}

/// Renders a journal as a complete Chrome trace JSON document.
///
/// The output is a single `{"traceEvents":[...]}` object — save it with a
/// `.json` extension and open it in `about://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a TelemetryEvent> + Clone) -> String {
    let forest = SpanForest::from_events(events.clone());
    let mut out: Vec<String> = Vec::new();

    out.push(metadata("process_name", PID_JOBS, None, "jobs"));
    out.push(metadata("process_name", PID_NODES, None, "nodes"));

    // --- Per-job phase tracks (tid = job id) -------------------------------
    for span in forest.iter() {
        out.push(metadata(
            "thread_name",
            PID_JOBS,
            Some(span.job),
            &format!("job {}", span.job),
        ));
        for phase in &span.phases {
            let mut args = ObjWriter::new();
            args.u64("job", span.job);
            if let Some(d) = span.deadline {
                args.u64("deadline_secs", d.as_secs());
            }
            out.push(complete(
                phase.kind.as_str(),
                PID_JOBS,
                span.job,
                phase.start.as_secs(),
                phase.secs(),
                &args.finish(),
            ));
        }
        if let (Some(finish), Outcome::Completed { met_deadline }) = (span.finish, span.outcome) {
            let mut args = ObjWriter::new();
            args.bool("met_deadline", met_deadline);
            out.push(instant(
                "completed",
                PID_JOBS,
                span.job,
                finish.as_secs(),
                &args.finish(),
            ));
        }
    }

    // --- Per-node occupancy + instants + running counter -------------------
    // Walk the stream once, tracking each job's current placement so a
    // start opens an occupancy span on each member node and the matching
    // completion/failure closes it.
    let mut placement: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut occupied_since: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // node -> (job, start)
    let mut named_nodes: BTreeMap<u64, ()> = BTreeMap::new();
    let mut running = 0u64;

    let close_job = |job: u64,
                     end: u64,
                     occupied_since: &mut BTreeMap<u64, (u64, u64)>,
                     out: &mut Vec<String>| {
        let nodes: Vec<u64> = occupied_since
            .iter()
            .filter(|(_, (j, _))| *j == job)
            .map(|(n, _)| *n)
            .collect();
        for node in nodes {
            let (_, since) = occupied_since.remove(&node).expect("node listed");
            let mut args = ObjWriter::new();
            args.u64("job", job);
            out.push(complete(
                &format!("job {job}"),
                PID_NODES,
                node,
                since,
                end.saturating_sub(since),
                &args.finish(),
            ));
        }
    };

    for event in events {
        let at = event.at().as_secs();
        match event {
            TelemetryEvent::JobPlaced { job, nodes, .. } => {
                placement.insert(*job, nodes.clone());
            }
            TelemetryEvent::JobStarted { job, .. } => {
                for &node in placement.get(job).map(Vec::as_slice).unwrap_or(&[]) {
                    if named_nodes.insert(node, ()).is_none() {
                        out.push(metadata(
                            "thread_name",
                            PID_NODES,
                            Some(node),
                            &format!("node {node}"),
                        ));
                    }
                    occupied_since.insert(node, (*job, at));
                }
                running += 1;
                out.push(counter("jobs running", at, running));
            }
            TelemetryEvent::JobCompleted { job, .. } => {
                close_job(*job, at, &mut occupied_since, &mut out);
                running = running.saturating_sub(1);
                out.push(counter("jobs running", at, running));
            }
            TelemetryEvent::NodeFailed {
                node, victim_job, ..
            } => {
                if let Some(victim) = victim_job {
                    close_job(*victim, at, &mut occupied_since, &mut out);
                    running = running.saturating_sub(1);
                    out.push(counter("jobs running", at, running));
                }
                if named_nodes.insert(*node, ()).is_none() {
                    out.push(metadata(
                        "thread_name",
                        PID_NODES,
                        Some(*node),
                        &format!("node {node}"),
                    ));
                }
                let mut args = ObjWriter::new();
                args.opt_u64("victim_job", *victim_job);
                out.push(instant("node_failed", PID_NODES, *node, at, &args.finish()));
            }
            TelemetryEvent::CheckpointSkipped { job, reason, .. } => {
                let mut args = ObjWriter::new();
                args.str("reason", reason.as_str());
                out.push(instant(
                    "checkpoint_skipped",
                    PID_JOBS,
                    *job,
                    at,
                    &args.finish(),
                ));
            }
            TelemetryEvent::DeadlineMissed {
                job, late_by_secs, ..
            } => {
                let mut args = ObjWriter::new();
                args.u64("late_by_secs", *late_by_secs);
                out.push(instant(
                    "deadline_missed",
                    PID_JOBS,
                    *job,
                    at,
                    &args.finish(),
                ));
            }
            _ => {}
        }
    }

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    doc
}

/// What a loaded Chrome trace document contains, by event phase.
///
/// Produced by [`load_chrome_trace`]; a populated summary is proof the
/// document is structurally valid `trace_event` JSON — every viewer
/// requirement the loader enforces held for every event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `ph:"X"` complete spans.
    pub spans: usize,
    /// `ph:"i"` instant markers.
    pub instants: usize,
    /// `ph:"M"` metadata records (process / thread names).
    pub metadata: usize,
    /// `ph:"C"` counter samples.
    pub counters: usize,
    /// Distinct `(pid, tid)` pairs among spans — the tracks a viewer draws.
    pub tracks: usize,
    /// Distinct span names, sorted.
    pub span_names: Vec<String>,
    /// Largest `ts + dur` over all spans, in trace microseconds.
    pub end_us: u64,
}

impl ChromeTraceSummary {
    /// One-line human summary for CLI output. A journal export has one
    /// span name per job, so the listing is capped; the counts are exact.
    pub fn render(&self) -> String {
        const SHOW: usize = 8;
        let names = if self.span_names.is_empty() {
            String::from("(none)")
        } else if self.span_names.len() <= SHOW {
            self.span_names.join(", ")
        } else {
            format!(
                "{}, … and {} more",
                self.span_names[..SHOW].join(", "),
                self.span_names.len() - SHOW
            )
        };
        format!(
            "{} events: {} spans on {} tracks, {} instants, {} counters, {} metadata; span names: {}; ends at {}us\n",
            self.events,
            self.spans,
            self.tracks,
            self.instants,
            self.counters,
            self.metadata,
            names,
            self.end_us,
        )
    }
}

/// Loads and validates a Chrome `trace_event` JSON document.
///
/// Accepts both shapes this workspace emits — the journal export above and
/// the daemon flight recorder's `dump` payload — and any other JSON Object
/// Format document. Returns `None` when the document is not what a trace
/// viewer would accept: not JSON, no `traceEvents` array, an event without
/// a string `ph`, or a complete span (`ph:"X"`) missing any of the integer
/// `ts`, `dur`, `pid`, `tid` fields.
pub fn load_chrome_trace(text: &str) -> Option<ChromeTraceSummary> {
    let doc = Json::parse(text.trim())?;
    let events = match doc.get("traceEvents")? {
        Json::Arr(events) => events,
        _ => return None,
    };
    let mut summary = ChromeTraceSummary {
        events: events.len(),
        ..ChromeTraceSummary::default()
    };
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut names: BTreeSet<String> = BTreeSet::new();
    for event in events {
        match event.get("ph")?.as_str()? {
            "X" => {
                let ts = event.get("ts")?.as_u64()?;
                let dur = event.get("dur")?.as_u64()?;
                let pid = event.get("pid")?.as_u64()?;
                let tid = event.get("tid")?.as_u64()?;
                summary.spans += 1;
                summary.end_us = summary.end_us.max(ts.saturating_add(dur));
                tracks.insert((pid, tid));
                if let Some(name) = event.get("name").and_then(Json::as_str) {
                    names.insert(name.to_string());
                }
            }
            "i" | "I" => summary.instants += 1,
            "M" => summary.metadata += 1,
            "C" => summary.counters += 1,
            // Begin/end pairs, flow arrows, samples: legal, just untallied.
            _ => {}
        }
    }
    summary.tracks = tracks.len();
    summary.span_names = names.into_iter().collect();
    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_sim_core::time::SimTime;
    use pqos_telemetry::json::Json;
    use pqos_telemetry::TelemetryEvent as E;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn life() -> Vec<TelemetryEvent> {
        vec![
            E::JobSubmitted {
                at: t(0),
                job: 1,
                size: 2,
                runtime_secs: 100,
            },
            E::QuoteNegotiated {
                at: t(0),
                job: 1,
                start_secs: 10,
                promised_secs: 300,
                deadline_secs: 300,
                success_probability: 1.0,
            },
            E::JobPlaced {
                at: t(0),
                job: 1,
                nodes: vec![3, 4],
                failure_probability: 0.0,
            },
            E::JobStarted {
                at: t(10),
                job: 1,
                restarts: 0,
            },
            E::JobCompleted {
                at: t(110),
                job: 1,
                met_deadline: true,
            },
        ]
    }

    #[test]
    fn trace_is_well_formed_json() {
        let doc = chrome_trace(&life());
        let v = Json::parse(doc.trim()).expect("trace parses as JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        // Every element is an object with a ph field.
        for e in events {
            assert!(e.get("ph").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn job_phases_become_complete_spans() {
        let doc = chrome_trace(&life());
        let v = Json::parse(doc.trim()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let running: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str) == Some("running")
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .collect();
        assert_eq!(running.len(), 1);
        assert_eq!(running[0].get("ts").unwrap().as_u64(), Some(10_000_000));
        assert_eq!(running[0].get("dur").unwrap().as_u64(), Some(100_000_000));
        assert_eq!(running[0].get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(running[0].get("tid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn node_tracks_show_occupancy() {
        let doc = chrome_trace(&life());
        let v = Json::parse(doc.trim()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Both nodes 3 and 4 get an occupancy span for job 1.
        let node_spans: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.get("pid").and_then(Json::as_u64) == Some(2)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(node_spans, vec![3, 4]);
        // And thread_name metadata for each.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"node 3"));
        assert!(names.contains(&"node 4"));
        assert!(names.contains(&"job 1"));
        assert!(names.contains(&"jobs"));
    }

    #[test]
    fn counter_tracks_running_jobs() {
        let doc = chrome_trace(&life());
        let v = Json::parse(doc.trim()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let samples: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("running"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(samples, vec![1, 0]);
    }

    #[test]
    fn instants_mark_failures_and_misses() {
        let mut events = life();
        events[4] = E::JobCompleted {
            at: t(400),
            job: 1,
            met_deadline: false,
        };
        events.push(E::DeadlineMissed {
            at: t(400),
            job: 1,
            late_by_secs: 100,
        });
        let doc = chrome_trace(&events);
        let v = Json::parse(doc.trim()).unwrap();
        let names: Vec<&str> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"deadline_missed"));
    }

    #[test]
    fn huge_timestamps_saturate_instead_of_wrapping() {
        assert_eq!(micros(u64::MAX), u64::MAX);
        assert_eq!(micros(7), 7_000_000);
    }

    #[test]
    fn loader_round_trips_our_own_export() {
        let doc = chrome_trace(&life());
        let summary = load_chrome_trace(&doc).expect("our export loads");
        assert_eq!(summary.spans, 5, "three job phases + two node occupancies");
        assert!(summary.span_names.iter().any(|n| n == "running"));
        assert!(summary.metadata >= 4, "process + thread names");
        assert_eq!(summary.counters, 2);
        assert!(summary.end_us >= 110_000_000);
        // tracks: (jobs, job 1), (nodes, node 3), (nodes, node 4)
        assert_eq!(summary.tracks, 3);
    }

    #[test]
    fn loader_accepts_a_flight_recorder_style_dump() {
        // The daemon's dump verb emits this shape: pid 1, tid = connection.
        let doc = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"args":{"name":"pqos-qosd requests"}},
            {"name":"negotiate","ph":"X","ts":10,"dur":250,"pid":1,"tid":3,"args":{"seq":1}},
            {"name":"negotiate:parse","ph":"X","ts":10,"dur":5,"pid":1,"tid":3,"args":{}}
        ]}"#;
        let summary = load_chrome_trace(doc).expect("dump loads");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.tracks, 1);
        assert_eq!(summary.end_us, 260);
        assert_eq!(summary.span_names, vec!["negotiate", "negotiate:parse"]);
    }

    #[test]
    fn loader_rejects_structurally_broken_documents() {
        assert!(load_chrome_trace("not json").is_none());
        assert!(
            load_chrome_trace(r#"{"events":[]}"#).is_none(),
            "no traceEvents"
        );
        assert!(
            load_chrome_trace(r#"{"traceEvents":{}}"#).is_none(),
            "not an array"
        );
        assert!(
            load_chrome_trace(r#"{"traceEvents":[{"name":"x"}]}"#).is_none(),
            "event without ph"
        );
        assert!(
            load_chrome_trace(r#"{"traceEvents":[{"ph":"X","ts":1,"dur":2,"pid":1}]}"#).is_none(),
            "span without tid"
        );
        // The empty trace is valid — a disabled flight recorder dumps it.
        let empty = load_chrome_trace(r#"{"traceEvents":[]}"#).expect("empty is valid");
        assert_eq!(empty.events, 0);
        assert_eq!(empty.render().chars().next(), Some('0'));
    }
}
