//! Journal analysis for the QoS simulator: the consume side of
//! `pqos-telemetry`.
//!
//! The telemetry crate records what the simulator *did*; this crate turns
//! that record into answers:
//!
//! * [`span`] — folds the flat event stream into per-job causal span
//!   trees (negotiating → queued → running → checkpointing → downtime),
//!   with phase durations that sum to each job's wall interval by
//!   construction.
//! * [`doctor`] — streams a journal and reports every invariant violation
//!   (time running backwards, starts without quotes, two jobs on one
//!   node, checkpoint completions without requests, verdicts that
//!   contradict the recorded commitment) as machine-readable findings.
//! * [`trace`] — exports any journal as Chrome `trace_event` JSON, one
//!   track per job and per node, openable in `about://tracing` or
//!   <https://ui.perfetto.dev> — and loads/validates any such document,
//!   including the daemon flight recorder's `dump` payload.
//! * [`diff`] — locates and explains the first line where two journals
//!   fork (seed-determinism debugging).
//! * [`bisect`] — delta-debugs a failing request trace (recorded by
//!   `pqos-qosd --record`) down to a minimal subsequence that still
//!   reproduces a finding, replaying every candidate through the real
//!   engine (`pqos-doctor bisect`).
//! * [`manifest`] — the `expected.json` pinned-findings format the
//!   failing-trace corpus uses in CI.
//! * [`crosscheck`] — verifies a journal against the daemon's exported
//!   metrics snapshot: every `journal.<kind>` gauge must agree with the
//!   journal's own per-kind event counts, in both directions — and the
//!   `pqos_promise_*` gauges must agree with the journal's promise ledger.
//! * [`slo`] — re-derives SLO alerts from a journal with the same
//!   windowed evaluator the daemon runs (`pqos_telemetry::slo`) and diffs
//!   them against the journaled `slo_alert` records.
//! * [`audit`] — folds the journal's quote → outcome pairs into a
//!   calibration ledger (fixed quoted-probability bins + exact-p groups,
//!   Wilson bounds, Brier scores) and flags overconfident buckets,
//!   unresolved promises and ledger gaps.
//!
//! The `pqos-doctor` binary wraps all of it for the command line:
//!
//! ```text
//! pqos-doctor check  journal.jsonl        # invariant findings, exit 1 on errors
//! pqos-doctor audit  journal.jsonl        # promise calibration ledger + findings
//! pqos-doctor spans  journal.jsonl        # per-job phase accounting table
//! pqos-doctor trace  journal.jsonl -o t.json   # Perfetto export
//! pqos-doctor trace-check t.json          # validate a Chrome trace document
//! pqos-doctor diff   a.jsonl b.jsonl      # first divergence, exit 1 if any
//! pqos-doctor crosscheck journal.jsonl metrics.json   # journal vs counters
//! pqos-doctor slo --slo RULE journal.jsonl   # re-derive alerts, exit 1 on diff
//! ```
//!
//! # Example
//!
//! ```
//! use pqos_obs::doctor::Doctor;
//! use pqos_obs::span::SpanForest;
//! use pqos_telemetry::one_of_each;
//!
//! let journal: String = one_of_each()
//!     .iter()
//!     .map(|e| e.to_jsonl() + "\n")
//!     .collect();
//! // one_of_each() is a schema sampler, not a causal story — the doctor
//! // has plenty to say about it; every line still parses.
//! let report = Doctor::check_str(&journal);
//! assert!(!report.findings.iter().any(|f| f.code == "unparseable_line"));
//!
//! // Span reconstruction over the same events:
//! let events: Vec<_> = journal
//!     .lines()
//!     .filter_map(pqos_telemetry::TelemetryEvent::from_jsonl)
//!     .collect();
//! let forest = SpanForest::from_events(&events);
//! assert!(!forest.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bisect;
pub mod crosscheck;
pub mod diff;
pub mod doctor;
pub mod manifest;
pub mod slo;
pub mod span;
pub mod trace;

pub use audit::{audit, audit_str, AuditOutcome, CalibrationBucket, CalibrationLedger};
pub use bisect::{bisect_trace, ddmin, finding_codes, findings_for_trace, TraceBisect};
pub use diff::{first_divergence, Divergence};
pub use doctor::{Doctor, DoctorReport, Finding, Severity};
pub use manifest::{ExpectedFindings, FindingsDelta};
pub use slo::{check_journal, AlertKey, SloCheck};
pub use span::{JobSpan, Outcome, PhaseKind, PhaseSpan, SpanForest};
pub use trace::{chrome_trace, load_chrome_trace, ChromeTraceSummary};
