//! Promise audit: does the daemon's quoted probability mean anything?
//!
//! Every accepted quote is a promise — "this job meets its deadline with
//! probability at least p" — journaled as `quote_negotiated` and resolved
//! by a `promise_resolved` record next to the job's terminal event. This
//! module folds a journal into a **calibration ledger**: quoted
//! probabilities partition into the [`PROMISE_BINS`] fixed bins the live
//! session gauges use, plus one exact-p group per distinct quoted value,
//! and each bucket tracks promised/kept/broken/cancelled/pending counts,
//! the observed success rate with its Wilson score interval, the Brier
//! score, and the reliability residual (observed − mean quoted).
//!
//! The ledger *tiles*: every accepted quote lands in exactly one fixed
//! bin, and `kept + broken + cancelled + pending == promised` holds per
//! bucket and in total. A journal whose resolutions cannot be joined back
//! to their quotes ([`CODE_LEDGER_GAP`]), whose terminated jobs never
//! resolved their promise ([`CODE_UNRESOLVED`]), or whose observed
//! success rate sits provably below what was quoted
//! ([`CODE_OVERCONFIDENT`]) fails the audit — `pqos-doctor audit` exits 1
//! on any of these, which is how CI keeps the daemon's promises honest,
//! not just its throughput.

use crate::doctor::{DoctorReport, Finding, Severity};
use pqos_core::session::{promise_bin, PROMISE_BINS};
use pqos_sim_core::table::Table;
use pqos_telemetry::{PromiseVerdict, TelemetryEvent};
use std::collections::{BTreeMap, HashMap};
use std::io::BufRead;

/// Stable finding code: a bucket kept so few of its promises that the
/// count is binomially implausible (lower tail below a Bonferroni-
/// corrected 2.5%) under the bucket's own mean quoted probability — the
/// daemon promised more than it delivered, beyond what sampling noise
/// explains.
pub const CODE_OVERCONFIDENT: &str = "overconfident_bucket";
/// Stable finding code: a bucket kept implausibly *more* promises than it
/// quoted (upper tail below the same corrected threshold). Harmless for
/// the user (promises under-sell), but a sign the quoting model is
/// leaving admission on the table.
pub const CODE_UNDERCONFIDENT: &str = "underconfident_bucket";
/// Stable finding code: a job reached its terminal event (completion or
/// cancellation) but the journal never resolved its promise.
pub const CODE_UNRESOLVED: &str = "unresolved_promise";
/// Stable finding code: a `promise_resolved` record cannot be joined back
/// to an accepted quote — no promise outstanding for the job, a duplicate
/// resolution, or a resolution restating a different probability than the
/// quote made.
pub const CODE_LEDGER_GAP: &str = "ledger_gap";

/// Two-sided Wilson score interval for `successes` out of `trials` at
/// z = 1.96 (~95%). Returns `(0.0, 1.0)` for zero trials. The bounds are
/// exact at the extremes: all successes yield an upper bound of exactly
/// 1.0 and no successes a lower bound of exactly 0.0, so a perfectly kept
/// bucket can never be flagged overconfident by floating-point jitter.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((phat * (1.0 - phat) / n) + z2 / (4.0 * n * n)).sqrt();
    let lo = if successes == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (lo, hi)
}

/// Exact lower-tail binomial CDF `P(X ≤ k)` for `X ~ Binomial(n, p)`.
/// This is the audit's flag test: the Wilson interval (reported in the
/// ledger for display) is miscalibrated near p → 1 — 298 kept of 299 at a
/// mean quote of 0.9997 puts the Wilson upper a hair *below* the quote
/// even though one break in 299 is a ~9% event — while the exact tail
/// flags only counts that are genuinely implausible under the quote.
/// Terms are evaluated in log space, so extreme `n`/`p` underflow to a
/// zero tail instead of poisoning the sum.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    if n == 0 || p <= 0.0 || k >= n {
        return 1.0;
    }
    if p >= 1.0 {
        return 0.0; // k < n is certain evidence against p = 1.
    }
    let logit = (p / (1.0 - p)).ln();
    let mut log_pmf = n as f64 * (1.0 - p).ln();
    let mut cdf = log_pmf.exp();
    for i in 0..k {
        log_pmf += ((n - i) as f64 / (i + 1) as f64).ln() + logit;
        cdf += log_pmf.exp();
    }
    cdf.min(1.0)
}

/// One calibration bucket: either a fixed quoted-probability bin or an
/// exact-p group. All counters are over accepted quotes only (a quote
/// never accepted promised nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CalibrationBucket {
    /// Promises made: accepted quotes whose quoted p falls in this bucket.
    pub promised: u64,
    /// Promises kept (job completed at or before its effective deadline).
    pub kept: u64,
    /// Promises broken (job completed late).
    pub broken: u64,
    /// Promises voided by cancellation (excluded from calibration).
    pub cancelled: u64,
    /// Sum of quoted probabilities over kept + broken promises.
    pub sum_quoted: f64,
    /// Sum of `(quoted − outcome)²` over kept + broken promises.
    pub brier_sum: f64,
}

impl CalibrationBucket {
    /// Promises with a calibration verdict (kept + broken).
    pub fn resolved(&self) -> u64 {
        self.kept + self.broken
    }

    /// Promises still awaiting a terminal event.
    pub fn pending(&self) -> u64 {
        self.promised - self.kept - self.broken - self.cancelled
    }

    /// Observed success rate over resolved promises.
    pub fn observed(&self) -> Option<f64> {
        let n = self.resolved();
        (n > 0).then(|| self.kept as f64 / n as f64)
    }

    /// Mean quoted probability over resolved promises.
    pub fn mean_quoted(&self) -> Option<f64> {
        let n = self.resolved();
        (n > 0).then(|| self.sum_quoted / n as f64)
    }

    /// Reliability residual: observed − mean quoted. Negative means
    /// overconfident.
    pub fn residual(&self) -> Option<f64> {
        Some(self.observed()? - self.mean_quoted()?)
    }

    /// Mean Brier score over resolved promises (0 is perfect).
    pub fn brier(&self) -> Option<f64> {
        let n = self.resolved();
        (n > 0).then(|| self.brier_sum / n as f64)
    }

    /// Wilson interval of the observed success rate (see
    /// [`wilson_interval`]); `(0.0, 1.0)` when nothing resolved.
    pub fn wilson(&self) -> (f64, f64) {
        wilson_interval(self.kept, self.resolved())
    }

    fn resolve(&mut self, quoted: f64, verdict: PromiseVerdict) {
        match verdict {
            PromiseVerdict::Kept | PromiseVerdict::Broken => {
                let outcome = if verdict == PromiseVerdict::Kept {
                    self.kept += 1;
                    1.0
                } else {
                    self.broken += 1;
                    0.0
                };
                self.sum_quoted += quoted;
                self.brier_sum += (quoted - outcome) * (quoted - outcome);
            }
            PromiseVerdict::Cancelled => self.cancelled += 1,
        }
    }
}

/// The folded calibration ledger: the fixed bins plus one exact-p group
/// per distinct quoted probability. Bucket counts exactly tile the
/// accepted quotes — see [`CalibrationLedger::tiling_holds`].
#[derive(Debug, Clone, Default)]
pub struct CalibrationLedger {
    /// The [`PROMISE_BINS`] fixed bins `[i/10, (i+1)/10)` (last closed
    /// above), indexed by [`promise_bin`].
    pub bins: [CalibrationBucket; PROMISE_BINS],
    /// Exact-p groups, keyed by the quoted probability's bit pattern
    /// (order-preserving for probabilities, which are non-negative).
    pub exact: BTreeMap<u64, CalibrationBucket>,
    /// Total promises made (accepted quotes).
    pub accepted: u64,
}

impl CalibrationLedger {
    /// The half-open bounds of fixed bin `i` (the last bin includes 1.0).
    pub fn bin_bounds(i: usize) -> (f64, f64) {
        (
            i as f64 / PROMISE_BINS as f64,
            (i + 1) as f64 / PROMISE_BINS as f64,
        )
    }

    /// Exact-p groups with their quoted probability, in ascending order.
    pub fn exact_groups(&self) -> impl Iterator<Item = (f64, &CalibrationBucket)> {
        self.exact
            .iter()
            .map(|(bits, b)| (f64::from_bits(*bits), b))
    }

    /// Total promises kept.
    pub fn kept(&self) -> u64 {
        self.bins.iter().map(|b| b.kept).sum()
    }

    /// Total promises broken.
    pub fn broken(&self) -> u64 {
        self.bins.iter().map(|b| b.broken).sum()
    }

    /// Total promises voided by cancellation.
    pub fn cancelled(&self) -> u64 {
        self.bins.iter().map(|b| b.cancelled).sum()
    }

    /// Total promises awaiting a terminal event.
    pub fn pending(&self) -> u64 {
        self.bins.iter().map(|b| b.pending()).sum()
    }

    /// The tiling invariant: every accepted quote lands in exactly one
    /// fixed bin and exactly one exact-p group, and
    /// `kept + broken + cancelled + pending == promised` in each bucket
    /// and in total. The fold maintains this by construction; the
    /// property suite asserts it over randomized journals.
    pub fn tiling_holds(&self) -> bool {
        let fixed: u64 = self.bins.iter().map(|b| b.promised).sum();
        let exact: u64 = self.exact.values().map(|b| b.promised).sum();
        fixed == self.accepted
            && exact == self.accepted
            && self
                .bins
                .iter()
                .chain(self.exact.values())
                .all(|b| b.kept + b.broken + b.cancelled + b.pending() == b.promised)
    }

    fn record_promise(&mut self, quoted: f64) {
        self.accepted += 1;
        self.bins[promise_bin(quoted)].promised += 1;
        self.exact.entry(quoted.to_bits()).or_default().promised += 1;
    }

    fn record_verdict(&mut self, quoted: f64, verdict: PromiseVerdict) {
        self.bins[promise_bin(quoted)].resolve(quoted, verdict);
        self.exact
            .entry(quoted.to_bits())
            .or_default()
            .resolve(quoted, verdict);
    }

    /// Renders the ledger as an aligned table: the occupied fixed bins
    /// followed by the exact-p groups.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            [
                "bucket",
                "promised",
                "kept",
                "broken",
                "cancel",
                "pending",
                "observed",
                "quoted",
                "wilson_lo",
                "wilson_hi",
                "residual",
                "brier",
            ]
            .map(String::from)
            .to_vec(),
        );
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".into(), |v| format!("{v:.4}"));
        let mut push = |label: String, b: &CalibrationBucket| {
            let (lo, hi) = b.wilson();
            let wilson = if b.resolved() > 0 {
                (format!("{lo:.4}"), format!("{hi:.4}"))
            } else {
                ("-".into(), "-".into())
            };
            table.row(vec![
                label,
                b.promised.to_string(),
                b.kept.to_string(),
                b.broken.to_string(),
                b.cancelled.to_string(),
                b.pending().to_string(),
                fmt(b.observed()),
                fmt(b.mean_quoted()),
                wilson.0,
                wilson.1,
                fmt(b.residual()),
                fmt(b.brier()),
            ]);
        };
        for (i, b) in self.bins.iter().enumerate() {
            if b.promised == 0 {
                continue;
            }
            let (lo, hi) = Self::bin_bounds(i);
            push(format!("[{lo:.1},{hi:.1})"), b);
        }
        for (p, b) in self.exact_groups() {
            push(format!("p={p}"), b);
        }
        format!(
            "{}\n{} promised, {} kept, {} broken, {} cancelled, {} pending\n",
            table.render().trim_end(),
            self.accepted,
            self.kept(),
            self.broken(),
            self.cancelled(),
            self.pending()
        )
    }
}

/// What [`audit`] returns: the folded ledger and the findings report.
#[derive(Debug, Clone, Default)]
pub struct AuditOutcome {
    /// The calibration ledger.
    pub ledger: CalibrationLedger,
    /// Audit findings (ledger gaps, unresolved promises, miscalibrated
    /// buckets), in the doctor's machine-readable shape.
    pub report: DoctorReport,
}

/// One outstanding promise while folding.
#[derive(Debug, Clone, Copy)]
struct OpenPromise {
    quoted: f64,
    terminal_at: Option<u64>,
}

/// Folds a journal into a calibration ledger and audits it.
///
/// Unparseable lines are skipped (they are `pqos-doctor check`'s
/// department); the audit joins `quote_negotiated` to `promise_resolved`
/// per job, tallies verdicts into the bucket of the *quoted* probability
/// (so the tiling invariant survives even a corrupt restatement, which is
/// flagged as [`CODE_LEDGER_GAP`]), and closes with the per-bucket
/// Wilson-bound calibration checks.
pub fn audit(journal: impl BufRead) -> std::io::Result<AuditOutcome> {
    let mut fold = AuditFold::default();
    for line in journal.lines() {
        fold.feed_line(&line?);
    }
    Ok(fold.finish())
}

/// [`audit`] over an in-memory journal string.
pub fn audit_str(journal: &str) -> AuditOutcome {
    audit(journal.as_bytes()).expect("in-memory reads cannot fail")
}

/// The streaming fold behind [`audit`]. Feed lines or events, then call
/// [`AuditFold::finish`].
#[derive(Debug, Default)]
pub struct AuditFold {
    outcome: AuditOutcome,
    /// job → outstanding promise (accepted quote awaiting resolution).
    open: HashMap<u64, OpenPromise>,
    /// job → quoted p of an already-resolved promise (duplicate detection).
    closed: HashMap<u64, f64>,
}

impl AuditFold {
    /// Feeds one raw journal line.
    pub fn feed_line(&mut self, line: &str) {
        self.outcome.report.lines += 1;
        if line.trim().is_empty() {
            return;
        }
        if let Some(event) = TelemetryEvent::from_jsonl(line) {
            self.feed(&event);
        }
    }

    /// Feeds one already-parsed event.
    pub fn feed(&mut self, event: &TelemetryEvent) {
        self.outcome.report.events += 1;
        match event {
            TelemetryEvent::QuoteNegotiated {
                job,
                success_probability,
                ..
            } => {
                if self.open.contains_key(job) || self.closed.contains_key(job) {
                    self.gap(
                        Some(event.at().as_secs()),
                        *job,
                        format!("job {job} made a second promise; one lifecycle makes one"),
                    );
                    return;
                }
                self.open.insert(
                    *job,
                    OpenPromise {
                        quoted: *success_probability,
                        terminal_at: None,
                    },
                );
                self.outcome.ledger.record_promise(*success_probability);
            }
            TelemetryEvent::JobCompleted { job, at, .. }
            | TelemetryEvent::JobCancelled { job, at, .. } => {
                if let Some(p) = self.open.get_mut(job) {
                    p.terminal_at = Some(at.as_secs());
                }
            }
            TelemetryEvent::PromiseResolved {
                job,
                success_probability,
                verdict,
                at,
                ..
            } => {
                let Some(promise) = self.open.remove(job) else {
                    let detail = if self.closed.contains_key(job) {
                        format!("job {job}'s promise resolved twice")
                    } else {
                        format!("job {job} resolved a promise no accepted quote made")
                    };
                    self.gap(Some(at.as_secs()), *job, detail);
                    return;
                };
                if promise.quoted != *success_probability {
                    self.gap(
                        Some(at.as_secs()),
                        *job,
                        format!(
                            "job {job} resolved quoting p={success_probability} but the quote \
                             promised p={}",
                            promise.quoted
                        ),
                    );
                }
                // Tally under the quote's own p so buckets keep tiling.
                self.outcome.ledger.record_verdict(promise.quoted, *verdict);
                self.closed.insert(*job, promise.quoted);
            }
            _ => {}
        }
    }

    /// Ends the stream: reports promises whose job terminated without a
    /// resolution, then runs the per-bucket calibration checks.
    pub fn finish(mut self) -> AuditOutcome {
        let mut unresolved: Vec<(u64, u64)> = self
            .open
            .iter()
            .filter_map(|(job, p)| p.terminal_at.map(|at| (*job, at)))
            .collect();
        unresolved.sort_unstable();
        for (job, at) in unresolved {
            self.outcome.report.findings.push(Finding {
                code: CODE_UNRESOLVED,
                severity: Severity::Error,
                line: 0,
                at: Some(at),
                job: Some(job),
                node: None,
                detail: format!(
                    "job {job} terminated at t={at} but its promise was never resolved"
                ),
            });
        }
        let mut calibration: Vec<Finding> = Vec::new();
        // Bonferroni-correct across every bucket the audit tests: a
        // journal of oracle quotes makes hundreds of n = 1 exact-p
        // groups, and at a fixed 2.5% per bucket a perfectly calibrated
        // daemon would accumulate false alarms with journal size. The
        // corrected threshold keeps the *family-wise* false-alarm rate at
        // 2.5% per side; real corruption concentrates in the fixed bins,
        // whose tails shrink geometrically with every flipped verdict.
        let tested = self
            .outcome
            .ledger
            .bins
            .iter()
            .filter(|b| b.resolved() > 0)
            .count()
            + self
                .outcome
                .ledger
                .exact_groups()
                .filter(|(_, b)| b.resolved() > 0)
                .count();
        let threshold = 0.025 / tested.max(1) as f64;
        let mut check = |label: String, b: &CalibrationBucket| {
            let (Some(quoted), n) = (b.mean_quoted(), b.resolved()) else {
                return;
            };
            // One-sided exact binomial tail tests at the bucket's own
            // mean quote; 2.5% per side (before correction) matches the
            // z = 1.96 Wilson interval the ledger reports (see
            // [`binomial_cdf`] for why the flag does not reuse that
            // interval directly).
            let below = binomial_cdf(b.kept, n, quoted);
            if below < threshold {
                calibration.push(Finding {
                    code: CODE_OVERCONFIDENT,
                    severity: Severity::Error,
                    line: 0,
                    at: None,
                    job: None,
                    node: None,
                    detail: format!(
                        "bucket {label}: kept {}/{n} promises at mean quoted probability \
                         {quoted:.4} — a count this low has probability {below:.2e} under the \
                         quotes (threshold {threshold:.2e}); the daemon promised more than it \
                         delivered",
                        b.kept
                    ),
                });
                return;
            }
            let above = if b.kept == 0 {
                1.0
            } else {
                1.0 - binomial_cdf(b.kept - 1, n, quoted)
            };
            if above < threshold {
                calibration.push(Finding {
                    code: CODE_UNDERCONFIDENT,
                    severity: Severity::Warning,
                    line: 0,
                    at: None,
                    job: None,
                    node: None,
                    detail: format!(
                        "bucket {label}: kept {}/{n} promises at mean quoted probability \
                         {quoted:.4} — a count this high has probability {above:.2e} under the \
                         quotes (threshold {threshold:.2e}); the quoting model is under-selling",
                        b.kept
                    ),
                });
            }
        };
        for (i, b) in self.outcome.ledger.bins.iter().enumerate() {
            let (lo, hi) = CalibrationLedger::bin_bounds(i);
            check(format!("[{lo:.1},{hi:.1})"), b);
        }
        for (p, b) in self.outcome.ledger.exact_groups() {
            check(format!("p={p}"), b);
        }
        self.outcome.report.findings.extend(calibration);
        debug_assert!(self.outcome.ledger.tiling_holds());
        self.outcome
    }

    fn gap(&mut self, at: Option<u64>, job: u64, detail: String) {
        let line = self.outcome.report.lines.max(self.outcome.report.events);
        self.outcome.report.findings.push(Finding {
            code: CODE_LEDGER_GAP,
            severity: Severity::Error,
            line,
            at,
            job: Some(job),
            node: None,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_sim_core::time::SimTime;
    use pqos_telemetry::PromiseVerdict as V;
    use pqos_telemetry::TelemetryEvent as E;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn quote(job: u64, p: f64) -> E {
        E::QuoteNegotiated {
            at: t(job),
            job,
            start_secs: job,
            promised_secs: 1000 + job,
            deadline_secs: 1000 + job,
            success_probability: p,
        }
    }

    fn complete(job: u64, met: bool) -> E {
        E::JobCompleted {
            at: t(2000 + job),
            job,
            met_deadline: met,
        }
    }

    fn resolve(job: u64, p: f64, verdict: V) -> E {
        E::PromiseResolved {
            at: t(2000 + job),
            job,
            success_probability: p,
            deadline_secs: 1000 + job,
            verdict,
        }
    }

    fn audit_events(events: &[E]) -> AuditOutcome {
        let journal: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        audit_str(&journal)
    }

    #[test]
    fn a_kept_promise_lands_in_its_bin_and_exact_group() {
        let out = audit_events(&[quote(1, 0.95), complete(1, true), resolve(1, 0.95, V::Kept)]);
        assert!(out.report.is_clean(), "{}", out.report.render());
        let bin = &out.ledger.bins[9];
        assert_eq!((bin.promised, bin.kept, bin.broken), (1, 1, 0));
        assert_eq!(bin.pending(), 0);
        let (p, exact) = out.ledger.exact_groups().next().unwrap();
        assert_eq!(p, 0.95);
        assert_eq!(exact.kept, 1);
        assert!(out.ledger.tiling_holds());
    }

    #[test]
    fn pending_and_cancelled_promises_keep_the_tiling() {
        let out = audit_events(&[
            quote(1, 0.8),
            quote(2, 0.8),
            quote(3, 0.8),
            E::JobCancelled { at: t(10), job: 2 },
            resolve(2, 0.8, V::Cancelled),
            complete(3, true),
            resolve(3, 0.8, V::Kept),
            // Job 1 never terminates: pending, not a finding.
        ]);
        assert!(out.report.is_clean(), "{}", out.report.render());
        let bin = &out.ledger.bins[8];
        assert_eq!(bin.promised, 3);
        assert_eq!(bin.kept, 1);
        assert_eq!(bin.cancelled, 1);
        assert_eq!(bin.pending(), 1);
        assert!(out.ledger.tiling_holds());
        assert_eq!(out.ledger.pending(), 1);
    }

    #[test]
    fn a_terminated_job_without_resolution_is_flagged() {
        let out = audit_events(&[quote(1, 0.9), complete(1, true)]);
        let f = out
            .report
            .findings
            .iter()
            .find(|f| f.code == CODE_UNRESOLVED)
            .expect("unresolved promise flagged");
        assert_eq!(f.job, Some(1));
        assert_eq!(f.severity, Severity::Error);
    }

    #[test]
    fn unjoinable_resolutions_are_ledger_gaps() {
        // Resolution with no promise.
        let out = audit_events(&[resolve(7, 0.9, V::Kept)]);
        assert!(out
            .report
            .findings
            .iter()
            .any(|f| f.code == CODE_LEDGER_GAP));

        // Duplicate resolution.
        let out = audit_events(&[
            quote(1, 0.9),
            complete(1, true),
            resolve(1, 0.9, V::Kept),
            resolve(1, 0.9, V::Kept),
        ]);
        let gaps: Vec<_> = out
            .report
            .findings
            .iter()
            .filter(|f| f.code == CODE_LEDGER_GAP)
            .collect();
        assert_eq!(gaps.len(), 1);
        assert!(gaps[0].detail.contains("twice"));

        // Restating a different probability than the quote promised.
        let out = audit_events(&[quote(1, 0.9), complete(1, true), resolve(1, 0.5, V::Kept)]);
        assert!(out
            .report
            .findings
            .iter()
            .any(|f| f.code == CODE_LEDGER_GAP));
        // The verdict still tallies — under the quote's own p.
        assert_eq!(out.ledger.bins[9].kept, 1);
        assert!(out.ledger.tiling_holds());
    }

    #[test]
    fn an_overconfident_bucket_fails_the_audit() {
        // 20 promises at p = 0.95, only 4 kept: the Wilson upper bound of
        // 4/20 is far below 0.95.
        let mut events = Vec::new();
        for job in 0..20u64 {
            events.push(quote(job, 0.95));
        }
        for job in 0..20u64 {
            let met = job < 4;
            events.push(complete(job, met));
            events.push(resolve(job, 0.95, if met { V::Kept } else { V::Broken }));
        }
        let out = audit_events(&events);
        assert!(out.report.errors() > 0);
        let f = out
            .report
            .findings
            .iter()
            .find(|f| f.code == CODE_OVERCONFIDENT)
            .expect("overconfidence flagged");
        assert!(f.detail.contains("0.95"), "{}", f.detail);
    }

    #[test]
    fn perfectly_kept_p1_promises_never_flag() {
        // The NullPredictor daemon's case: every quote at p = 1.0, every
        // promise kept. Wilson upper must be exactly 1.0, not 1 − ε.
        let mut events = Vec::new();
        for job in 0..50u64 {
            events.push(quote(job, 1.0));
            events.push(complete(job, true));
            events.push(resolve(job, 1.0, V::Kept));
        }
        let out = audit_events(&events);
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert_eq!(out.ledger.bins[9].wilson().1, 1.0);
    }

    #[test]
    fn sandbagged_quotes_warn_underconfident() {
        // 50 promises at p = 0.05 that all complete on time.
        let mut events = Vec::new();
        for job in 0..50u64 {
            events.push(quote(job, 0.05));
            events.push(complete(job, true));
            events.push(resolve(job, 0.05, V::Kept));
        }
        let out = audit_events(&events);
        assert_eq!(out.report.errors(), 0);
        assert!(out
            .report
            .findings
            .iter()
            .any(|f| f.code == CODE_UNDERCONFIDENT));
    }

    #[test]
    fn one_break_in_many_near_certain_quotes_is_not_overconfident() {
        // 299 promises at p = 0.999, one broken. The Wilson upper bound
        // of 298/299 sits below 0.999, but a single break is a ~26%
        // event under the quotes — the exact tail must not flag it.
        let mut events = Vec::new();
        for job in 0..299u64 {
            let met = job != 7;
            events.push(quote(job, 0.999));
            events.push(complete(job, met));
            events.push(resolve(job, 0.999, if met { V::Kept } else { V::Broken }));
        }
        let out = audit_events(&events);
        assert!(out.report.is_clean(), "{}", out.report.render());
    }

    #[test]
    fn binomial_cdf_shapes() {
        assert_eq!(binomial_cdf(10, 10, 0.3), 1.0);
        assert_eq!(binomial_cdf(0, 0, 0.5), 1.0);
        assert_eq!(binomial_cdf(5, 10, 1.0), 0.0);
        assert_eq!(binomial_cdf(0, 10, 0.0), 1.0);
        // P(X ≤ 50 | n=100, p=0.5) ≈ 0.5398.
        let mid = binomial_cdf(50, 100, 0.5);
        assert!((mid - 0.5398).abs() < 1e-3, "{mid}");
        // P(X ≤ 0 | n=1, p=0.918) ≈ 0.082: one broken near-certain
        // promise is rare but not 2.5%-rare.
        let one = binomial_cdf(0, 1, 0.918);
        assert!((one - 0.082).abs() < 1e-9, "{one}");
        // Deep tails underflow to ~0 instead of NaN.
        let deep = binomial_cdf(4, 20, 0.95);
        assert!(deep > 0.0 && deep < 1e-10, "{deep}");
    }

    #[test]
    fn wilson_interval_shapes() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        assert_eq!(wilson_interval(10, 10).1, 1.0);
        assert_eq!(wilson_interval(0, 10).0, 0.0);
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25, "interval is reasonably tight at n=100");
        // Tighter with more data.
        let (lo2, hi2) = wilson_interval(500, 1000);
        assert!(hi2 - lo2 < hi - lo);
    }

    #[test]
    fn brier_and_residual_are_per_bucket_means() {
        let out = audit_events(&[
            quote(1, 0.8),
            complete(1, true),
            resolve(1, 0.8, V::Kept),
            quote(2, 0.8),
            complete(2, false),
            resolve(2, 0.8, V::Broken),
        ]);
        let bin = &out.ledger.bins[8];
        assert_eq!(bin.observed(), Some(0.5));
        assert!((bin.mean_quoted().unwrap() - 0.8).abs() < 1e-12);
        assert!((bin.residual().unwrap() + 0.3).abs() < 1e-12);
        // Brier: ((0.8-1)² + (0.8-0)²) / 2 = (0.04 + 0.64) / 2 = 0.34.
        assert!((bin.brier().unwrap() - 0.34).abs() < 1e-12);
    }

    #[test]
    fn render_lists_occupied_bins_and_exact_groups() {
        let out = audit_events(&[quote(1, 0.95), complete(1, true), resolve(1, 0.95, V::Kept)]);
        let text = out.ledger.render();
        assert!(text.contains("[0.9,1.0)"), "{text}");
        assert!(text.contains("p=0.95"), "{text}");
        assert!(text.contains("1 promised, 1 kept"), "{text}");
    }
}
