//! Journal ↔ metrics cross-check: do the daemon's exported counters agree
//! with the journal it wrote?
//!
//! The telemetry handle publishes cumulative per-kind event counts as
//! `journal.<kind>` gauges on every flush, and `pqos-qosd --metrics-dump`
//! writes the final snapshot next to the journal. Those are two
//! independent records of the same run — the gauges come from atomic
//! counters on the emission path, the journal from the sink pipeline. If
//! they disagree, either the journal lost lines (ring overflow, write
//! errors, truncation) or the snapshot predates the end of the run.
//! Either way the run's observability story is broken, and CI should say
//! so before anyone trusts a benchmark built on it.
//!
//! Findings reuse the doctor's machine-readable shape
//! ([`Finding`](crate::doctor::Finding)) so one JSONL consumer handles
//! both `pqos-doctor check` and `pqos-doctor crosscheck`.

use crate::doctor::{DoctorReport, Finding, Severity};
use pqos_telemetry::{PromiseVerdict, Snapshot, TelemetryEvent};
use std::collections::BTreeMap;
use std::io::BufRead;

/// Stable finding code: a `journal.<kind>` gauge disagrees with the
/// journal's own event count.
pub const CODE_COUNT_MISMATCH: &str = "metrics_count_mismatch";
/// Stable finding code: the journal has events of a kind the snapshot
/// exported no gauge for.
pub const CODE_GAUGE_MISSING: &str = "metrics_gauge_missing";
/// Stable finding code: the snapshot claims events of a kind the journal
/// never recorded (journal truncation or the wrong file pair).
pub const CODE_JOURNAL_MISSING: &str = "metrics_journal_missing_kind";
/// Stable finding code: the snapshot itself admits sink loss
/// (`telemetry.ring_dropped` / `telemetry.write_errors` gauges).
pub const CODE_SINK_LOSS: &str = "metrics_sink_loss";
/// Stable finding code: a `promise.*` gauge (exported on `/metrics` as
/// `pqos_promise_*`) disagrees with the journal's own promise ledger —
/// quotes accepted vs `promise.made`, resolution verdicts vs
/// `promise.kept` / `promise.broken` / `promise.cancelled`.
pub const CODE_PROMISE_MISMATCH: &str = "metrics_promise_mismatch";

/// Cross-checks a journal against a metrics snapshot, line by line.
///
/// Every `journal.<kind>` gauge must equal the number of journal lines of
/// that kind, in both directions; nonzero sink-loss gauges are surfaced as
/// warnings that explain an otherwise-confusing undercount.
pub fn crosscheck(journal: impl BufRead, snapshot: &Snapshot) -> std::io::Result<DoctorReport> {
    let mut report = DoctorReport::default();
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    // Promise ledger from the journal: made (accepted quotes) and the
    // three resolution verdicts.
    let mut promises = [0u64; 4];
    for line in journal.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        // Unparseable lines are `pqos-doctor check`'s department; the
        // cross-check only accounts for what did make it into the record.
        if let Some(event) = TelemetryEvent::from_jsonl(&line) {
            report.events += 1;
            *counts.entry(event.name()).or_insert(0) += 1;
            match event {
                TelemetryEvent::QuoteNegotiated { .. } => promises[0] += 1,
                TelemetryEvent::PromiseResolved { verdict, .. } => {
                    promises[match verdict {
                        PromiseVerdict::Kept => 1,
                        PromiseVerdict::Broken => 2,
                        PromiseVerdict::Cancelled => 3,
                    }] += 1;
                }
                _ => {}
            }
        }
    }

    for kind in TelemetryEvent::kind_names() {
        let journal_count = counts.get(kind).copied().unwrap_or(0);
        let gauge = snapshot.gauge(&format!("journal.{kind}"));
        match (journal_count, gauge) {
            (0, None) => {}
            (n, None) => report.findings.push(Finding {
                code: CODE_GAUGE_MISSING,
                severity: Severity::Error,
                line: 0,
                at: None,
                job: None,
                node: None,
                detail: format!(
                    "journal has {n} {kind} events but the snapshot exported no journal.{kind} gauge \
                     (snapshot taken before the final flush?)"
                ),
            }),
            (0, Some(g)) => report.findings.push(Finding {
                code: CODE_JOURNAL_MISSING,
                severity: Severity::Error,
                line: 0,
                at: None,
                job: None,
                node: None,
                detail: format!(
                    "snapshot gauge journal.{kind} = {g} but the journal has no {kind} events \
                     (truncated journal, or mismatched journal/snapshot pair)"
                ),
            }),
            (n, Some(g)) if g != n as i64 => report.findings.push(Finding {
                code: CODE_COUNT_MISMATCH,
                severity: Severity::Error,
                line: 0,
                at: None,
                job: None,
                node: None,
                detail: format!(
                    "journal.{kind}: snapshot says {g}, journal says {n} ({})",
                    if (g as i128) > (n as i128) {
                        "journal lost lines"
                    } else {
                        "snapshot is stale"
                    }
                ),
            }),
            _ => {}
        }
    }

    // Promise reconciliation: only when the snapshot exports the promise
    // gauges at all (the trace simulator's runs do not; the daemon's do).
    let promise_gauges = [
        "promise.made",
        "promise.kept",
        "promise.broken",
        "promise.cancelled",
    ];
    if promise_gauges.iter().any(|g| snapshot.gauge(g).is_some()) {
        for (gauge, journal_count) in promise_gauges.iter().zip(promises) {
            let exported = snapshot.gauge(gauge).unwrap_or(0);
            if exported != journal_count as i64 {
                report.findings.push(Finding {
                    code: CODE_PROMISE_MISMATCH,
                    severity: Severity::Error,
                    line: 0,
                    at: None,
                    job: None,
                    node: None,
                    detail: format!(
                        "{gauge}: snapshot says {exported}, the journal's promise ledger says \
                         {journal_count}"
                    ),
                });
            }
        }
    }

    for loss in ["telemetry.ring_dropped", "telemetry.write_errors"] {
        if let Some(v) = snapshot.gauge(loss).filter(|v| *v != 0) {
            report.findings.push(Finding {
                code: CODE_SINK_LOSS,
                severity: Severity::Warning,
                line: 0,
                at: None,
                job: None,
                node: None,
                detail: format!(
                    "snapshot reports {loss} = {v}: the journal is knowingly incomplete"
                ),
            });
        }
    }

    Ok(report)
}

/// [`crosscheck`] over an in-memory journal string.
pub fn crosscheck_str(journal: &str, snapshot: &Snapshot) -> DoctorReport {
    crosscheck(journal.as_bytes(), snapshot).expect("in-memory reads cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_sim_core::time::SimTime;
    use pqos_telemetry::TelemetryEvent as E;

    fn journal_of(events: &[TelemetryEvent]) -> String {
        events.iter().map(|e| e.to_jsonl() + "\n").collect()
    }

    fn events() -> Vec<TelemetryEvent> {
        vec![
            E::JobSubmitted {
                at: SimTime::from_secs(0),
                job: 1,
                size: 2,
                runtime_secs: 100,
            },
            E::JobSubmitted {
                at: SimTime::from_secs(1),
                job: 2,
                size: 4,
                runtime_secs: 50,
            },
            E::QuoteNegotiated {
                at: SimTime::from_secs(1),
                job: 1,
                start_secs: 10,
                promised_secs: 300,
                deadline_secs: 300,
                success_probability: 1.0,
            },
        ]
    }

    fn matching_snapshot() -> Snapshot {
        Snapshot {
            gauges: vec![
                ("journal.job_submitted".into(), 2),
                ("journal.quote_negotiated".into(), 1),
            ],
            ..Snapshot::default()
        }
    }

    #[test]
    fn agreeing_records_are_clean() {
        let report = crosscheck_str(&journal_of(&events()), &matching_snapshot());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.events, 3);
    }

    #[test]
    fn a_stale_snapshot_is_a_count_mismatch() {
        let mut snapshot = matching_snapshot();
        snapshot.gauges[0].1 = 1; // journal.job_submitted: snapshot missed one
        let report = crosscheck_str(&journal_of(&events()), &snapshot);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.findings[0].code, CODE_COUNT_MISMATCH);
        assert!(report.findings[0].detail.contains("snapshot is stale"));
    }

    #[test]
    fn a_missing_gauge_is_an_error() {
        let mut snapshot = matching_snapshot();
        snapshot.gauges.remove(1); // drop journal.quote_negotiated
        let report = crosscheck_str(&journal_of(&events()), &snapshot);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.findings[0].code, CODE_GAUGE_MISSING);
    }

    #[test]
    fn a_truncated_journal_is_caught_from_the_gauge_side() {
        let only_submits = journal_of(&events()[..2]);
        let report = crosscheck_str(&only_submits, &matching_snapshot());
        assert_eq!(report.errors(), 1);
        assert_eq!(report.findings[0].code, CODE_JOURNAL_MISSING);
    }

    #[test]
    fn promise_gauges_reconcile_against_the_journal_ledger() {
        use pqos_telemetry::PromiseVerdict as V;
        let mut events = events();
        events.push(E::JobCompleted {
            at: SimTime::from_secs(200),
            job: 1,
            met_deadline: true,
        });
        events.push(E::PromiseResolved {
            at: SimTime::from_secs(200),
            job: 1,
            success_probability: 1.0,
            deadline_secs: 300,
            verdict: V::Kept,
        });
        let mut snapshot = matching_snapshot();
        snapshot.gauges.push(("journal.job_completed".into(), 1));
        snapshot.gauges.push(("journal.promise_resolved".into(), 1));
        snapshot.gauges.push(("promise.made".into(), 1));
        snapshot.gauges.push(("promise.kept".into(), 1));
        snapshot.gauges.push(("promise.broken".into(), 0));
        snapshot.gauges.push(("promise.cancelled".into(), 0));
        let report = crosscheck_str(&journal_of(&events), &snapshot);
        assert!(report.is_clean(), "{}", report.render());

        // A daemon claiming more kept promises than it journaled is caught.
        snapshot.gauges.iter_mut().for_each(|(name, v)| {
            if name == "promise.kept" {
                *v = 3;
            }
        });
        let report = crosscheck_str(&journal_of(&events), &snapshot);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.findings[0].code, CODE_PROMISE_MISMATCH);
        assert!(report.findings[0].detail.contains("promise.kept"));
    }

    #[test]
    fn promise_checks_are_skipped_when_the_gauges_are_absent() {
        // The trace simulator exports no promise gauges; a journal full of
        // quotes must not trip the reconciliation.
        let report = crosscheck_str(&journal_of(&events()), &matching_snapshot());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn sink_loss_gauges_become_warnings() {
        let mut snapshot = matching_snapshot();
        snapshot.gauges.push(("telemetry.ring_dropped".into(), 7));
        let report = crosscheck_str(&journal_of(&events()), &snapshot);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.findings[0].code, CODE_SINK_LOSS);
    }

    #[test]
    fn unparseable_lines_do_not_count_as_events() {
        let mut journal = journal_of(&events());
        journal.push_str("not json at all\n\n");
        let report = crosscheck_str(&journal, &matching_snapshot());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.lines, 4, "blank lines skipped, garbage counted");
        assert_eq!(report.events, 3);
    }
}
