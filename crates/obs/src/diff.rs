//! Journal diff: explain the first divergence between two runs.
//!
//! Identically seeded runs journal byte-identically, so the *first*
//! differing line of two journals is where their histories forked — the
//! right place to start when a code change moves results or determinism
//! breaks. This module finds that line and explains it in event terms
//! rather than raw JSON.

use pqos_telemetry::TelemetryEvent;

/// The first point where two journals disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 1-based line number of the first difference.
    pub line: u64,
    /// The line in journal A (`None` when A ended first).
    pub a: Option<String>,
    /// The line in journal B (`None` when B ended first).
    pub b: Option<String>,
}

impl Divergence {
    /// Explains the divergence in event terms: what each run did at the
    /// fork point.
    pub fn explain(&self) -> String {
        let describe = |line: &Option<String>, label: &str| match line {
            None => format!("run {label} has no line here (journal ended)"),
            Some(raw) => match TelemetryEvent::from_jsonl(raw) {
                Some(e) => format!("run {label}: {} at t={}  {raw}", e.name(), e.at().as_secs()),
                None => format!("run {label}: unparseable line  {raw}"),
            },
        };
        format!(
            "journals diverge at line {}\n  {}\n  {}\n",
            self.line,
            describe(&self.a, "A"),
            describe(&self.b, "B"),
        )
    }
}

/// Compares two journals line by line and returns the first divergence,
/// or `None` when they are identical.
pub fn first_divergence(a: &str, b: &str) -> Option<Divergence> {
    let mut a_lines = a.lines();
    let mut b_lines = b.lines();
    let mut line = 0u64;
    loop {
        line += 1;
        match (a_lines.next(), b_lines.next()) {
            (None, None) => return None,
            (la, lb) if la == lb => {}
            (la, lb) => {
                return Some(Divergence {
                    line,
                    a: la.map(str::to_string),
                    b: lb.map(str::to_string),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = "{\"event\":\"job_rejected\",\"at\":1,\"job\":1}\n{\"event\":\"job_rejected\",\"at\":2,\"job\":2}\n";

    #[test]
    fn identical_journals_have_no_divergence() {
        assert_eq!(first_divergence(A, A), None);
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn differing_line_is_located_and_explained() {
        let b = A.replace("\"job\":2", "\"job\":3");
        let d = first_divergence(A, &b).expect("diverges");
        assert_eq!(d.line, 2);
        let text = d.explain();
        assert!(text.contains("line 2"));
        assert!(text.contains("job_rejected"));
        assert!(text.contains("t=2"));
    }

    #[test]
    fn truncation_is_a_divergence() {
        let b = A.lines().next().unwrap().to_string() + "\n";
        let d = first_divergence(A, &b).expect("diverges");
        assert_eq!(d.line, 2);
        assert!(d.b.is_none());
        assert!(d.explain().contains("journal ended"));
    }

    #[test]
    fn unparseable_fork_is_still_explained() {
        let b = A.replace("{\"event\":\"job_rejected\",\"at\":2,\"job\":2}", "garbage");
        let d = first_divergence(A, &b).expect("diverges");
        assert!(d.explain().contains("unparseable"));
    }
}
