//! Offline SLO re-derivation: replays a finished journal through the same
//! evaluator the daemon runs and diffs the derived alerts against the
//! journaled ones.
//!
//! The daemon closes windows at engine ticks; a journal reader does not
//! know the tick times, so the closure limit here is the *provable* one:
//! the maximum of the last lifecycle event's timestamp and the last
//! journaled alert's timestamp. Any window the daemon closed beyond that
//! limit either held no events (neutral by construction, see
//! [`pqos_telemetry::slo`]) or produced an alert that moved the limit —
//! so the derived alert sequence is complete. Alert `at` stamps are tick
//! times and are deliberately excluded from the comparison; byte-level
//! reproduction of the full journal (stamps included) is `pqos-replay`'s
//! job.

pub use pqos_telemetry::slo::{
    parse_rule, Cmp, Metric, SloAccum, SloEngine, SloRule, SloSink, WindowCounts,
    DEFAULT_WINDOW_SECS,
};

use pqos_telemetry::TelemetryEvent;

/// The comparable content of one alert: everything except the tick stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertKey {
    /// Rule name.
    pub rule: String,
    /// `fire` or `resolve`.
    pub state: &'static str,
    /// End boundary of the window that caused the transition.
    pub window_end_secs: u64,
    /// Metric value in that window.
    pub value: f64,
    /// Rule threshold.
    pub threshold: f64,
}

impl AlertKey {
    /// Extracts the key from an event; `None` for non-alert events.
    pub fn of(event: &TelemetryEvent) -> Option<AlertKey> {
        match event {
            TelemetryEvent::SloAlert {
                rule,
                state,
                window_end_secs,
                value,
                threshold,
                ..
            } => Some(AlertKey {
                rule: rule.clone(),
                state: state.as_str(),
                window_end_secs: *window_end_secs,
                value: *value,
                threshold: *threshold,
            }),
            _ => None,
        }
    }

    /// One-line rendering for diffs and logs.
    pub fn render(&self) -> String {
        format!(
            "{} {} window_end={} value={:?} threshold={:?}",
            self.rule, self.state, self.window_end_secs, self.value, self.threshold
        )
    }
}

/// Result of re-deriving a journal's alerts.
#[derive(Debug)]
pub struct SloCheck {
    /// Alerts recorded in the journal, in journal order.
    pub journaled: Vec<AlertKey>,
    /// Alerts the evaluator derives from the journal's lifecycle events.
    pub derived: Vec<AlertKey>,
    /// Lifecycle (non-alert) events folded into windows.
    pub events: u64,
    /// Journal lines that did not parse as events.
    pub unparsed: u64,
    /// The closure limit used, in virtual seconds.
    pub limit_secs: u64,
}

impl SloCheck {
    /// True when the derived sequence matches the journaled one exactly.
    pub fn matches(&self) -> bool {
        self.journaled == self.derived
    }

    /// Human-readable mismatch lines (`empty` when [`matches`](Self::matches)).
    pub fn diff_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        let n = self.journaled.len().max(self.derived.len());
        for i in 0..n {
            match (self.journaled.get(i), self.derived.get(i)) {
                (Some(j), Some(d)) if j == d => {}
                (j, d) => {
                    out.push(format!(
                        "alert {i}: journal={} derived={}",
                        j.map_or_else(|| "<none>".to_string(), AlertKey::render),
                        d.map_or_else(|| "<none>".to_string(), AlertKey::render),
                    ));
                }
            }
        }
        out
    }
}

/// Runs the SLO evaluator over a journal held in memory. `width_secs` and
/// `rules` must match what the daemon ran with (the trace records them).
pub fn check_journal(journal: &str, rules: Vec<SloRule>, width_secs: u64) -> SloCheck {
    let accum = SloAccum::new(width_secs);
    let mut engine = SloEngine::new(rules);
    let mut journaled = Vec::new();
    let mut events = 0u64;
    let mut unparsed = 0u64;
    let mut limit_secs = 0u64;
    for line in journal.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(event) = TelemetryEvent::from_jsonl(line) else {
            unparsed += 1;
            continue;
        };
        limit_secs = limit_secs.max(event.at().as_secs());
        if let Some(key) = AlertKey::of(&event) {
            journaled.push(key);
        } else {
            events += 1;
            accum.observe(&event);
        }
    }
    let derived = engine
        .drain(&accum, limit_secs)
        .iter()
        .filter_map(AlertKey::of)
        .collect();
    SloCheck {
        journaled,
        derived,
        events,
        unparsed,
        limit_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_sim_core::time::SimTime;
    use pqos_telemetry::AlertState;

    fn reject(at: u64, job: u64) -> String {
        TelemetryEvent::JobRejected {
            at: SimTime::from_secs(at),
            job,
        }
        .to_jsonl()
    }

    fn quote(at: u64, job: u64) -> String {
        TelemetryEvent::QuoteNegotiated {
            at: SimTime::from_secs(at),
            job,
            start_secs: at,
            promised_secs: at + 10,
            deadline_secs: at + 10,
            success_probability: 0.9,
        }
        .to_jsonl()
    }

    fn alert(at: u64, state: AlertState, window_end: u64, value: f64) -> String {
        TelemetryEvent::SloAlert {
            at: SimTime::from_secs(at),
            rule: "r".to_string(),
            state,
            window_end_secs: window_end,
            value,
            threshold: 0.0,
        }
        .to_jsonl()
    }

    fn rules() -> Vec<SloRule> {
        vec![parse_rule("r:rejects<=0@1").unwrap()]
    }

    #[test]
    fn rederivation_matches_a_consistent_journal() {
        // Window [0,60): one reject → fire at the t=120 tick.
        // Window [120,180): a clean quote → resolve at the t=240 tick.
        let journal = [
            reject(10, 1),
            alert(120, AlertState::Fire, 60, 1.0),
            quote(130, 2),
            alert(240, AlertState::Resolve, 180, 0.0),
        ]
        .join("\n");
        let check = check_journal(&journal, rules(), 60);
        assert!(check.matches(), "diff: {:?}", check.diff_lines());
        assert_eq!(check.journaled.len(), 2);
        assert_eq!(check.events, 2);
        assert_eq!(check.limit_secs, 240);
    }

    #[test]
    fn tampered_alert_is_caught() {
        let journal = [
            reject(10, 1),
            // Claims a resolve that the events do not support.
            alert(120, AlertState::Resolve, 60, 0.0),
        ]
        .join("\n");
        let check = check_journal(&journal, rules(), 60);
        assert!(!check.matches());
        assert_eq!(check.diff_lines().len(), 1);
    }

    #[test]
    fn missing_alert_is_caught() {
        let journal = reject(10, 1) + "\n" + &quote(120, 2);
        let check = check_journal(&journal, rules(), 60);
        assert!(
            !check.matches(),
            "the fire at window 60 was never journaled"
        );
        assert_eq!(check.journaled.len(), 0);
        assert_eq!(check.derived.len(), 1);
    }

    #[test]
    fn trailing_partial_window_is_not_evaluated() {
        // The reject sits in window [60,120) whose end exceeds the event
        // watermark (61): the daemon never closed it, neither do we.
        let journal = quote(10, 1) + "\n" + &reject(61, 2);
        let check = check_journal(&journal, rules(), 60);
        assert!(check.matches());
        assert!(check.derived.is_empty());
    }
}
