//! Causal span reconstruction: folding the flat journal back into per-job
//! phase trees.
//!
//! The journal records *instants*; diagnosing a missed deadline needs
//! *intervals* — how long the job queued, computed, checkpointed, and sat
//! in post-failure downtime. This module rebuilds those intervals the same
//! way a distributed tracer rebuilds spans from log events: each lifecycle
//! event closes the phase the job was in and opens the next, so a job's
//! phases tile its wall interval `[submit, finish]` contiguously and their
//! durations sum to it *by construction* (verified by
//! [`JobSpan::accounting_gap`]).

use pqos_sim_core::table::Table;
use pqos_sim_core::time::SimTime;
use pqos_telemetry::TelemetryEvent;
use std::collections::BTreeMap;

/// What a job was doing over one contiguous interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseKind {
    /// Between submission and the accepted quote (instantaneous in the
    /// current simulator, kept for when negotiation gains latency).
    Negotiating,
    /// Holding a reservation, waiting for the committed start instant.
    Queued,
    /// Computing on its partition.
    Running,
    /// Paying the checkpoint overhead `C`.
    Checkpointing,
    /// Killed by a node failure; waiting to restart (includes the rework
    /// the next attempt will redo — the rollback already happened).
    Downtime,
}

impl PhaseKind {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseKind::Negotiating => "negotiating",
            PhaseKind::Queued => "queued",
            PhaseKind::Running => "running",
            PhaseKind::Checkpointing => "checkpointing",
            PhaseKind::Downtime => "downtime",
        }
    }
}

/// One contiguous phase of a job's life: `[start, end]` doing `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// What the job was doing.
    pub kind: PhaseKind,
    /// When the phase began.
    pub start: SimTime,
    /// When the phase ended (the next phase begins here).
    pub end: SimTime,
}

impl PhaseSpan {
    /// Length of the phase in seconds.
    pub fn secs(&self) -> u64 {
        self.end.saturating_since(self.start).as_secs()
    }
}

/// How a job's story ended (as far as the journal goes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Finished; `met_deadline` is the journaled verdict.
    Completed {
        /// Whether the effective deadline was met.
        met_deadline: bool,
    },
    /// Negotiation failed; the job never ran.
    Rejected,
    /// The submitter withdrew the job before it started running.
    Cancelled,
    /// The journal ended mid-flight (truncated journal or still-running
    /// job).
    Unfinished,
}

/// The reconstructed life of one job.
#[derive(Debug, Clone)]
pub struct JobSpan {
    /// Job identifier.
    pub job: u64,
    /// Submission instant.
    pub submit: SimTime,
    /// Completion instant (None while [`Outcome::Unfinished`]).
    pub finish: Option<SimTime>,
    /// Final verdict.
    pub outcome: Outcome,
    /// Negotiated promise (completion instant, before slack), if quoted.
    pub promised: Option<SimTime>,
    /// Effective deadline (promise plus slack), if quoted.
    pub deadline: Option<SimTime>,
    /// Quoted probability of success (Eq. 2), if quoted.
    pub success_probability: Option<f64>,
    /// Restarts absorbed (failures that killed an attempt).
    pub restarts: u32,
    /// Checkpoints performed / skipped.
    pub checkpoints: (u32, u32),
    /// Contiguous phases tiling `[submit, finish]`, in order.
    pub phases: Vec<PhaseSpan>,
    /// What the job was doing when its last phase closed (used to label
    /// the open tail of unfinished jobs).
    open_kind: PhaseKind,
    /// Where the next phase would begin.
    cursor: SimTime,
}

impl JobSpan {
    fn new(job: u64, submit: SimTime) -> Self {
        JobSpan {
            job,
            submit,
            finish: None,
            outcome: Outcome::Unfinished,
            promised: None,
            deadline: None,
            success_probability: None,
            restarts: 0,
            checkpoints: (0, 0),
            phases: Vec::new(),
            open_kind: PhaseKind::Negotiating,
            cursor: submit,
        }
    }

    /// Closes the currently open phase at `end` and opens `next`.
    fn close(&mut self, end: SimTime, next: PhaseKind) {
        self.phases.push(PhaseSpan {
            kind: self.open_kind,
            start: self.cursor,
            end,
        });
        self.open_kind = next;
        self.cursor = end;
    }

    /// Wall-clock interval in seconds, submission to finish (None while
    /// unfinished).
    pub fn wall_secs(&self) -> Option<u64> {
        self.finish
            .map(|f| f.saturating_since(self.submit).as_secs())
    }

    /// Sum of all phase durations, in seconds.
    pub fn accounted_secs(&self) -> u64 {
        self.phases.iter().map(|p| p.secs()).sum()
    }

    /// `wall_secs - accounted_secs` for finished jobs: zero when the
    /// phases tile the wall interval exactly (the reconstruction
    /// invariant). `None` while unfinished.
    pub fn accounting_gap(&self) -> Option<i64> {
        self.wall_secs()
            .map(|w| w as i64 - self.accounted_secs() as i64)
    }

    /// Total seconds spent in `kind` across all phases.
    pub fn secs_in(&self, kind: PhaseKind) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.kind == kind)
            .map(|p| p.secs())
            .sum()
    }
}

/// All job spans reconstructed from one journal, keyed by job id.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    jobs: BTreeMap<u64, JobSpan>,
    /// Events that referenced a job never submitted (shape errors the
    /// doctor reports in detail; counted here so the forest is honest
    /// about what it ignored).
    pub orphan_events: u64,
}

impl SpanForest {
    /// Folds an event stream into per-job spans.
    ///
    /// Malformed causality (e.g. a start for an unknown job) is skipped
    /// and counted in [`orphan_events`](SpanForest::orphan_events) — run
    /// the [`doctor`](crate::doctor) for line-level findings.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TelemetryEvent>) -> Self {
        let mut forest = SpanForest::default();
        for event in events {
            forest.apply(event);
        }
        forest
    }

    fn apply(&mut self, event: &TelemetryEvent) {
        // Borrow the span for job-scoped events; count orphans.
        macro_rules! span {
            ($job:expr) => {
                match self.jobs.get_mut($job) {
                    Some(s) => s,
                    None => {
                        self.orphan_events += 1;
                        return;
                    }
                }
            };
        }
        match event {
            TelemetryEvent::JobSubmitted { at, job, .. } => {
                self.jobs
                    .entry(*job)
                    .or_insert_with(|| JobSpan::new(*job, *at));
            }
            TelemetryEvent::QuoteNegotiated {
                at,
                job,
                promised_secs,
                deadline_secs,
                success_probability,
                ..
            } => {
                let s = span!(job);
                s.promised = Some(SimTime::from_secs(*promised_secs));
                s.deadline = Some(SimTime::from_secs(*deadline_secs));
                s.success_probability = Some(*success_probability);
                // Negotiation resolved: the job is now queued for its slot.
                s.close(*at, PhaseKind::Queued);
            }
            TelemetryEvent::JobRejected { at, job } => {
                let s = span!(job);
                s.close(*at, PhaseKind::Negotiating);
                s.finish = Some(*at);
                s.outcome = Outcome::Rejected;
            }
            TelemetryEvent::JobPlaced { .. } => {}
            TelemetryEvent::JobStarted {
                at, job, restarts, ..
            } => {
                let s = span!(job);
                s.restarts = (*restarts).max(s.restarts);
                // Closes Queued on the first attempt, Downtime on
                // restarts.
                s.close(*at, PhaseKind::Running);
            }
            TelemetryEvent::CheckpointRequested { .. } => {}
            TelemetryEvent::CheckpointTaken {
                at,
                job,
                overhead_secs,
            } => {
                let s = span!(job);
                s.checkpoints.0 += 1;
                // The journal records completion; the overhead interval
                // started `overhead_secs` earlier.
                let began =
                    at.saturating_sub(pqos_sim_core::time::SimDuration::from_secs(*overhead_secs));
                s.close(began.max(s.cursor), PhaseKind::Checkpointing);
                s.close(*at, PhaseKind::Running);
            }
            TelemetryEvent::CheckpointSkipped { job, .. } => {
                let s = span!(job);
                s.checkpoints.1 += 1;
            }
            TelemetryEvent::NodeFailed {
                at,
                victim_job: Some(job),
                ..
            } => {
                let s = span!(job);
                // An in-flight checkpoint dies with the attempt; the time
                // since the last closed phase counts as (lost) running.
                s.close(*at, PhaseKind::Downtime);
            }
            TelemetryEvent::NodeFailed { .. } | TelemetryEvent::NodeRecovered { .. } => {}
            TelemetryEvent::JobRequeued { .. } => {}
            TelemetryEvent::JobCompleted {
                at,
                job,
                met_deadline,
            } => {
                let s = span!(job);
                s.close(*at, PhaseKind::Running);
                s.finish = Some(*at);
                s.outcome = Outcome::Completed {
                    met_deadline: *met_deadline,
                };
            }
            TelemetryEvent::DeadlineMissed { .. } => {}
            TelemetryEvent::JobCancelled { at, job } => {
                let s = span!(job);
                // Closes Negotiating for never-quoted jobs, Queued for jobs
                // holding a reservation.
                s.close(*at, PhaseKind::Queued);
                s.finish = Some(*at);
                s.outcome = Outcome::Cancelled;
            }
            // Promise resolution restates the terminal event for the
            // calibration audit; it spans no wall time of its own.
            TelemetryEvent::PromiseResolved { .. } => {}
            // System-wide, not job-scoped; spans ignore it.
            TelemetryEvent::SloAlert { .. } => {}
        }
    }

    /// The span for one job.
    pub fn get(&self, job: u64) -> Option<&JobSpan> {
        self.jobs.get(&job)
    }

    /// All spans, in job-id order.
    pub fn iter(&self) -> impl Iterator<Item = &JobSpan> {
        self.jobs.values()
    }

    /// Number of jobs seen.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs were seen.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Renders a per-job accounting table: one row per job with the wall
    /// interval and the seconds spent in each phase.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "job".into(),
            "outcome".into(),
            "submit".into(),
            "finish".into(),
            "wall".into(),
            "queued".into(),
            "running".into(),
            "ckpt".into(),
            "downtime".into(),
            "restarts".into(),
            "deadline".into(),
        ]);
        for s in self.iter() {
            let outcome = match s.outcome {
                Outcome::Completed { met_deadline: true } => "ok",
                Outcome::Completed {
                    met_deadline: false,
                } => "LATE",
                Outcome::Rejected => "rejected",
                Outcome::Cancelled => "cancelled",
                Outcome::Unfinished => "unfinished",
            };
            table.row(vec![
                s.job.to_string(),
                outcome.into(),
                s.submit.as_secs().to_string(),
                s.finish.map_or("-".into(), |f| f.as_secs().to_string()),
                s.wall_secs().map_or("-".into(), |w| w.to_string()),
                s.secs_in(PhaseKind::Queued).to_string(),
                s.secs_in(PhaseKind::Running).to_string(),
                s.secs_in(PhaseKind::Checkpointing).to_string(),
                s.secs_in(PhaseKind::Downtime).to_string(),
                s.restarts.to_string(),
                s.deadline.map_or("-".into(), |d| d.as_secs().to_string()),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_telemetry::TelemetryEvent as E;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// A clean two-attempt life: submit 0, start 100, checkpoint at
    /// 3700..4420, failure 5000, restart 6000, finish 8000.
    fn failing_life() -> Vec<TelemetryEvent> {
        vec![
            E::JobSubmitted {
                at: t(0),
                job: 7,
                size: 4,
                runtime_secs: 7200,
            },
            E::QuoteNegotiated {
                at: t(0),
                job: 7,
                start_secs: 100,
                promised_secs: 9000,
                deadline_secs: 9500,
                success_probability: 0.9,
            },
            E::JobPlaced {
                at: t(0),
                job: 7,
                nodes: vec![0, 1, 2, 3],
                failure_probability: 0.05,
            },
            E::JobStarted {
                at: t(100),
                job: 7,
                restarts: 0,
            },
            E::CheckpointRequested {
                at: t(3700),
                job: 7,
            },
            E::CheckpointTaken {
                at: t(4420),
                job: 7,
                overhead_secs: 720,
            },
            E::NodeFailed {
                at: t(5000),
                node: 1,
                victim_job: Some(7),
                lost_node_seconds: 2320,
                predicted: false,
            },
            E::JobRequeued {
                at: t(5000),
                job: 7,
                remaining_secs: 3600,
            },
            E::JobPlaced {
                at: t(5000),
                job: 7,
                nodes: vec![4, 5, 6, 7],
                failure_probability: 0.01,
            },
            E::JobStarted {
                at: t(6000),
                job: 7,
                restarts: 1,
            },
            E::JobCompleted {
                at: t(8000),
                job: 7,
                met_deadline: true,
            },
        ]
    }

    #[test]
    fn phases_tile_the_wall_interval() {
        let forest = SpanForest::from_events(&failing_life());
        let s = forest.get(7).expect("job reconstructed");
        assert_eq!(s.wall_secs(), Some(8000));
        assert_eq!(s.accounted_secs(), 8000);
        assert_eq!(s.accounting_gap(), Some(0));
        // Phase boundaries are contiguous.
        for pair in s.phases.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap between phases");
        }
        assert_eq!(s.phases.first().unwrap().start, s.submit);
        assert_eq!(s.phases.last().unwrap().end, s.finish.unwrap());
    }

    #[test]
    fn phase_accounting_matches_the_story() {
        let forest = SpanForest::from_events(&failing_life());
        let s = forest.get(7).unwrap();
        assert_eq!(s.secs_in(PhaseKind::Queued), 100);
        // Attempt 1 ran 100..3700, checkpointed 3700..4420, ran 4420..5000;
        // attempt 2 ran 6000..8000.
        assert_eq!(s.secs_in(PhaseKind::Checkpointing), 720);
        assert_eq!(s.secs_in(PhaseKind::Running), 3600 + 580 + 2000);
        assert_eq!(s.secs_in(PhaseKind::Downtime), 1000);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.checkpoints, (1, 0));
        assert_eq!(s.deadline, Some(t(9500)));
        assert_eq!(s.promised, Some(t(9000)));
        assert!(matches!(
            s.outcome,
            Outcome::Completed { met_deadline: true }
        ));
    }

    #[test]
    fn rejected_and_unfinished_jobs_are_classified() {
        let events = vec![
            E::JobSubmitted {
                at: t(10),
                job: 1,
                size: 999,
                runtime_secs: 100,
            },
            E::JobRejected { at: t(10), job: 1 },
            E::JobSubmitted {
                at: t(20),
                job: 2,
                size: 1,
                runtime_secs: 100,
            },
            E::QuoteNegotiated {
                at: t(20),
                job: 2,
                start_secs: 30,
                promised_secs: 200,
                deadline_secs: 200,
                success_probability: 1.0,
            },
            E::JobStarted {
                at: t(30),
                job: 2,
                restarts: 0,
            },
        ];
        let forest = SpanForest::from_events(&events);
        assert_eq!(forest.get(1).unwrap().outcome, Outcome::Rejected);
        assert_eq!(forest.get(1).unwrap().wall_secs(), Some(0));
        let s2 = forest.get(2).unwrap();
        assert_eq!(s2.outcome, Outcome::Unfinished);
        assert_eq!(s2.finish, None);
        assert_eq!(s2.secs_in(PhaseKind::Queued), 10);
    }

    #[test]
    fn orphan_events_are_counted_not_applied() {
        let events = vec![E::JobStarted {
            at: t(5),
            job: 42,
            restarts: 0,
        }];
        let forest = SpanForest::from_events(&events);
        assert!(forest.is_empty());
        assert_eq!(forest.orphan_events, 1);
    }

    #[test]
    fn render_tabulates_every_job() {
        let forest = SpanForest::from_events(&failing_life());
        let text = forest.render();
        assert!(text.contains("job"));
        assert!(text.contains("8000"));
        assert!(text.lines().count() >= 3);
    }
}
