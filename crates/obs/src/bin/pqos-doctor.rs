//! `pqos-doctor`: journal analysis from the command line.
//!
//! ```text
//! pqos-doctor check  <journal> [--json]      invariant findings; exit 1 on errors
//! pqos-doctor audit  <journal> [--json]      promise calibration ledger; exit 1 on errors
//! pqos-doctor spans  <journal>               per-job phase accounting table
//! pqos-doctor trace  <journal> [-o FILE]     Chrome trace_event JSON (stdout default)
//! pqos-doctor trace-check <trace.json>       validate a Chrome trace document
//! pqos-doctor diff   <a> <b>                 first divergence; exit 1 if any
//! pqos-doctor crosscheck <journal> <metrics.json> [--json]
//!                                            journal vs exported counters
//! pqos-doctor bisect <trace.jsonl> [--target CODE] [-o FILE]
//!                                            shrink a failing request trace to a
//!                                            minimal reproducer (delta debugging)
//! pqos-doctor slo <journal> --slo RULE [--slo RULE ...] [--slo-window-secs N]
//!                                            re-derive SLO alerts from the journal
//!                                            and diff against the recorded ones;
//!                                            exit 1 on any difference
//! ```
//!
//! `--check` is accepted as an alias for `check` so CI invocations read
//! naturally (`pqos-doctor --check journal.jsonl`). `check`, `audit`,
//! `spans`, and `crosscheck` accept `-` as the journal path to read from
//! stdin, so a live service journal can be piped straight in
//! (`pqos-qosd ... | pqos-doctor check -`).

use pqos_obs::doctor::Doctor;
use pqos_obs::span::SpanForest;
use pqos_obs::{
    audit, bisect_trace, chrome_trace, crosscheck, first_divergence, load_chrome_trace,
};
use pqos_telemetry::{RequestTrace, Snapshot, TelemetryEvent};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:
  pqos-doctor check  <journal.jsonl> [--json]   report invariant violations (exit 1 on errors)
  pqos-doctor audit  <journal.jsonl> [--json]   promise calibration ledger: quoted probability
                                                vs realized success per bucket, with Wilson
                                                bounds; flags overconfident buckets, unresolved
                                                promises and ledger gaps (exit 1 on errors)
  pqos-doctor spans  <journal.jsonl>            per-job phase accounting table
  pqos-doctor trace  <journal.jsonl> [-o FILE]  export Chrome trace_event JSON
  pqos-doctor trace-check <trace.json>          validate a Chrome trace document (exit 1 if invalid)
  pqos-doctor diff   <a.jsonl> <b.jsonl>        explain the first divergence (exit 1 if any)
  pqos-doctor crosscheck <journal.jsonl> <metrics.json> [--json]
                                                verify journal event counts against the
                                                exported metrics snapshot (exit 1 on errors)
  pqos-doctor bisect <trace.jsonl> [--target CODE] [-o FILE]
                                                delta-debug a failing request trace (from
                                                pqos-qosd --record) to a minimal reproducer
                                                that still produces CODE; writes the shrunk
                                                trace to FILE and a JSON summary to stdout
                                                (exit 1 when the trace replays clean)
  pqos-doctor slo <journal.jsonl> --slo RULE [--slo RULE ...] [--slo-window-secs N]
                                                re-run the windowed SLO evaluator over the
                                                journal's lifecycle events and diff the
                                                derived alerts against the journaled
                                                slo_alert records (exit 1 on any diff);
                                                RULE grammar: NAME:METRIC{<,<=,>,>=}VALUE@NEED[/OVER]
check, audit, spans, slo, and crosscheck accept '-' as the journal path to read from stdin.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "check" | "--check" => cmd_check(rest),
        "audit" | "--audit" => cmd_audit(rest),
        "spans" | "--spans" => cmd_spans(rest),
        "trace" | "--trace" => cmd_trace(rest),
        "trace-check" | "--trace-check" => cmd_trace_check(rest),
        "diff" | "--diff" => cmd_diff(rest),
        "crosscheck" | "--crosscheck" => cmd_crosscheck(rest),
        "bisect" | "--bisect" => cmd_bisect(rest),
        "slo" | "--slo" => cmd_slo(rest),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command: {other}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        // Downstream closing the pipe (`pqos-doctor spans j | head`) is a
        // normal way to consume tabular output, not an error.
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pqos-doctor: {e}");
            ExitCode::from(2)
        }
    }
}

/// Writes to stdout, propagating errors (notably `BrokenPipe`) instead of
/// panicking like the `print!` macro does.
fn emit(text: &str) -> std::io::Result<()> {
    std::io::stdout().lock().write_all(text.as_bytes())
}

/// Opens `path` for buffered line reading, with `-` meaning stdin.
fn open_journal(path: &str) -> std::io::Result<Box<dyn BufRead>> {
    if path == "-" {
        Ok(Box::new(BufReader::new(std::io::stdin())))
    } else {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }
}

fn cmd_check(args: &[String]) -> std::io::Result<ExitCode> {
    let json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| std::io::Error::other("check: missing journal path"))?;
    let report = Doctor::check_reader(open_journal(path)?)?;
    if json {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for f in &report.findings {
            writeln!(out, "{}", f.to_jsonl())?;
        }
    } else {
        emit(&report.render())?;
    }
    Ok(if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_audit(args: &[String]) -> std::io::Result<ExitCode> {
    let json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| std::io::Error::other("audit: missing journal path"))?;
    let outcome = audit(open_journal(path)?)?;
    if json {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for f in &outcome.report.findings {
            writeln!(out, "{}", f.to_jsonl())?;
        }
    } else {
        emit(&outcome.ledger.render())?;
        emit(&outcome.report.render())?;
    }
    Ok(if outcome.report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn read_events(path: &str) -> std::io::Result<Vec<TelemetryEvent>> {
    let mut events = Vec::new();
    for line in open_journal(path)?.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // Unparseable lines are the doctor's department; skip them here.
        if let Some(e) = TelemetryEvent::from_jsonl(&line) {
            events.push(e);
        }
    }
    Ok(events)
}

fn cmd_spans(args: &[String]) -> std::io::Result<ExitCode> {
    let path = args
        .first()
        .ok_or_else(|| std::io::Error::other("spans: missing journal path"))?;
    let events = read_events(path)?;
    let forest = SpanForest::from_events(&events);
    emit(&forest.render())?;
    if forest.orphan_events > 0 {
        eprintln!(
            "warning: {} events referenced jobs never submitted (run `pqos-doctor check`)",
            forest.orphan_events
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace(args: &[String]) -> std::io::Result<ExitCode> {
    let o_index = args.iter().position(|a| a == "-o");
    let out_path = o_index.and_then(|i| args.get(i + 1));
    let path = args
        .iter()
        .enumerate()
        .find(|(i, _)| o_index.is_none_or(|o| *i != o && *i != o + 1))
        .map(|(_, a)| a)
        .ok_or_else(|| std::io::Error::other("trace: missing journal path"))?;
    let events = read_events(path)?;
    let doc = chrome_trace(&events);
    match out_path {
        Some(p) => {
            std::fs::write(p, doc)?;
            eprintln!("trace written to {p} ({} events)", events.len());
        }
        None => emit(&doc)?,
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace_check(args: &[String]) -> std::io::Result<ExitCode> {
    let path = args
        .first()
        .ok_or_else(|| std::io::Error::other("trace-check: missing trace path"))?;
    let text = std::fs::read_to_string(path)?;
    match load_chrome_trace(&text) {
        Some(summary) => {
            emit(&summary.render())?;
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!("trace-check: {path} is not a valid Chrome trace_event document");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_crosscheck(args: &[String]) -> std::io::Result<ExitCode> {
    let json = args.iter().any(|a| a == "--json");
    let mut paths = args.iter().filter(|a| !a.starts_with("--"));
    let (journal, metrics) = match (paths.next(), paths.next()) {
        (Some(j), Some(m)) => (j, m),
        _ => {
            return Err(std::io::Error::other(
                "crosscheck: need a journal path and a metrics snapshot path",
            ))
        }
    };
    let snapshot_text = std::fs::read_to_string(metrics)?;
    let snapshot = Snapshot::from_json(&snapshot_text).ok_or_else(|| {
        std::io::Error::other(format!("{metrics}: not a metrics snapshot document"))
    })?;
    let report = crosscheck::crosscheck(open_journal(journal)?, &snapshot)?;
    if json {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for f in &report.findings {
            writeln!(out, "{}", f.to_jsonl())?;
        }
    } else {
        emit(&report.render())?;
    }
    Ok(if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_bisect(args: &[String]) -> std::io::Result<ExitCode> {
    let target_index = args.iter().position(|a| a == "--target");
    let target = target_index.and_then(|i| args.get(i + 1)).cloned();
    let o_index = args.iter().position(|a| a == "-o");
    let out_path = o_index.and_then(|i| args.get(i + 1)).cloned();
    let consumed = |i: usize| {
        target_index.is_some_and(|t| i == t || i == t + 1)
            || o_index.is_some_and(|o| i == o || i == o + 1)
    };
    let path = args
        .iter()
        .enumerate()
        .find(|(i, _)| !consumed(*i))
        .map(|(_, a)| a)
        .ok_or_else(|| std::io::Error::other("bisect: missing trace path"))?;
    let text = std::fs::read_to_string(path)?;
    let trace =
        RequestTrace::parse(&text).map_err(|e| std::io::Error::other(format!("{path}: {e}")))?;
    // Progress goes to stderr; stdout carries only the JSON summary so CI
    // can pipe it straight into a parser.
    eprintln!(
        "bisecting {path}: {} request(s), replaying candidates...",
        trace.entries.len()
    );
    match bisect_trace(&trace, target.as_deref()) {
        Ok(result) => {
            if let Some(out) = &out_path {
                std::fs::write(out, result.minimal.encode())?;
                eprintln!(
                    "minimal reproducer ({} of {} request(s), target `{}`, {} replays) written to {out}",
                    result.minimal_requests, result.original_requests, result.target, result.tests_run
                );
            } else {
                eprintln!(
                    "minimal reproducer: {} of {} request(s) (target `{}`, {} replays); use -o FILE to save it",
                    result.minimal_requests, result.original_requests, result.target, result.tests_run
                );
            }
            emit(&result.summary_json())?;
            emit("\n")?;
            Ok(ExitCode::SUCCESS)
        }
        Err(msg) => {
            eprintln!("bisect: {msg}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_slo(args: &[String]) -> std::io::Result<ExitCode> {
    let mut rules = Vec::new();
    let mut width_secs = pqos_obs::slo::DEFAULT_WINDOW_SECS;
    let mut path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slo" => {
                let spec = it
                    .next()
                    .ok_or_else(|| std::io::Error::other("slo: --slo needs a rule spec"))?;
                rules.push(pqos_obs::slo::parse_rule(spec).map_err(std::io::Error::other)?);
            }
            "--slo-window-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| std::io::Error::other("slo: --slo-window-secs needs a value"))?;
                width_secs = v.parse().map_err(|_| {
                    std::io::Error::other("slo: --slo-window-secs must be an integer")
                })?;
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(arg),
            other => {
                return Err(std::io::Error::other(format!(
                    "slo: unexpected argument {other}"
                )))
            }
        }
    }
    let path = path.ok_or_else(|| std::io::Error::other("slo: missing journal path"))?;
    if rules.is_empty() {
        return Err(std::io::Error::other(
            "slo: need at least one --slo rule (the rules the daemon ran with)",
        ));
    }
    let mut journal = String::new();
    open_journal(path)?.read_to_string(&mut journal)?;
    let check = pqos_obs::slo::check_journal(&journal, rules, width_secs);
    emit(&format!(
        "slo: {} event(s), {} journaled alert(s), {} derived alert(s), closure limit t={}s\n",
        check.events,
        check.journaled.len(),
        check.derived.len(),
        check.limit_secs
    ))?;
    if check.unparsed > 0 {
        eprintln!(
            "warning: {} unparseable line(s) skipped (run `pqos-doctor check`)",
            check.unparsed
        );
    }
    if check.matches() {
        emit("slo: derived alerts match the journal exactly\n")?;
        Ok(ExitCode::SUCCESS)
    } else {
        for line in check.diff_lines() {
            emit(&format!("{line}\n"))?;
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_diff(args: &[String]) -> std::io::Result<ExitCode> {
    let (a, b) = match args {
        [a, b] => (a, b),
        _ => {
            return Err(std::io::Error::other(
                "diff: need exactly two journal paths",
            ))
        }
    };
    let a_text = std::fs::read_to_string(a)?;
    let b_text = std::fs::read_to_string(b)?;
    match first_divergence(&a_text, &b_text) {
        None => {
            emit(&format!(
                "journals are identical ({} lines)\n",
                a_text.lines().count()
            ))?;
            Ok(ExitCode::SUCCESS)
        }
        Some(d) => {
            emit(&d.explain())?;
            Ok(ExitCode::FAILURE)
        }
    }
}
