//! `pqos-doctor`: journal analysis from the command line.
//!
//! ```text
//! pqos-doctor check  <journal> [--json]      invariant findings; exit 1 on errors
//! pqos-doctor spans  <journal>               per-job phase accounting table
//! pqos-doctor trace  <journal> [-o FILE]     Chrome trace_event JSON (stdout default)
//! pqos-doctor diff   <a> <b>                 first divergence; exit 1 if any
//! ```
//!
//! `--check` is accepted as an alias for `check` so CI invocations read
//! naturally (`pqos-doctor --check journal.jsonl`). `check` and `spans`
//! accept `-` as the journal path to read from stdin, so a live service
//! journal can be piped straight in (`pqos-qosd ... | pqos-doctor check -`).

use pqos_obs::doctor::Doctor;
use pqos_obs::span::SpanForest;
use pqos_obs::{chrome_trace, first_divergence};
use pqos_telemetry::TelemetryEvent;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:
  pqos-doctor check  <journal.jsonl> [--json]   report invariant violations (exit 1 on errors)
  pqos-doctor spans  <journal.jsonl>            per-job phase accounting table
  pqos-doctor trace  <journal.jsonl> [-o FILE]  export Chrome trace_event JSON
  pqos-doctor diff   <a.jsonl> <b.jsonl>        explain the first divergence (exit 1 if any)
check and spans accept '-' as the journal path to read from stdin.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "check" | "--check" => cmd_check(rest),
        "spans" | "--spans" => cmd_spans(rest),
        "trace" | "--trace" => cmd_trace(rest),
        "diff" | "--diff" => cmd_diff(rest),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command: {other}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        // Downstream closing the pipe (`pqos-doctor spans j | head`) is a
        // normal way to consume tabular output, not an error.
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pqos-doctor: {e}");
            ExitCode::from(2)
        }
    }
}

/// Writes to stdout, propagating errors (notably `BrokenPipe`) instead of
/// panicking like the `print!` macro does.
fn emit(text: &str) -> std::io::Result<()> {
    std::io::stdout().lock().write_all(text.as_bytes())
}

/// Opens `path` for buffered line reading, with `-` meaning stdin.
fn open_journal(path: &str) -> std::io::Result<Box<dyn BufRead>> {
    if path == "-" {
        Ok(Box::new(BufReader::new(std::io::stdin())))
    } else {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }
}

fn cmd_check(args: &[String]) -> std::io::Result<ExitCode> {
    let json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| std::io::Error::other("check: missing journal path"))?;
    let report = Doctor::check_reader(open_journal(path)?)?;
    if json {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for f in &report.findings {
            writeln!(out, "{}", f.to_jsonl())?;
        }
    } else {
        emit(&report.render())?;
    }
    Ok(if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn read_events(path: &str) -> std::io::Result<Vec<TelemetryEvent>> {
    let mut events = Vec::new();
    for line in open_journal(path)?.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // Unparseable lines are the doctor's department; skip them here.
        if let Some(e) = TelemetryEvent::from_jsonl(&line) {
            events.push(e);
        }
    }
    Ok(events)
}

fn cmd_spans(args: &[String]) -> std::io::Result<ExitCode> {
    let path = args
        .first()
        .ok_or_else(|| std::io::Error::other("spans: missing journal path"))?;
    let events = read_events(path)?;
    let forest = SpanForest::from_events(&events);
    emit(&forest.render())?;
    if forest.orphan_events > 0 {
        eprintln!(
            "warning: {} events referenced jobs never submitted (run `pqos-doctor check`)",
            forest.orphan_events
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace(args: &[String]) -> std::io::Result<ExitCode> {
    let o_index = args.iter().position(|a| a == "-o");
    let out_path = o_index.and_then(|i| args.get(i + 1));
    let path = args
        .iter()
        .enumerate()
        .find(|(i, _)| o_index.is_none_or(|o| *i != o && *i != o + 1))
        .map(|(_, a)| a)
        .ok_or_else(|| std::io::Error::other("trace: missing journal path"))?;
    let events = read_events(path)?;
    let doc = chrome_trace(&events);
    match out_path {
        Some(p) => {
            std::fs::write(p, doc)?;
            eprintln!("trace written to {p} ({} events)", events.len());
        }
        None => emit(&doc)?,
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> std::io::Result<ExitCode> {
    let (a, b) = match args {
        [a, b] => (a, b),
        _ => {
            return Err(std::io::Error::other(
                "diff: need exactly two journal paths",
            ))
        }
    };
    let a_text = std::fs::read_to_string(a)?;
    let b_text = std::fs::read_to_string(b)?;
    match first_divergence(&a_text, &b_text) {
        None => {
            emit(&format!(
                "journals are identical ({} lines)\n",
                a_text.lines().count()
            ))?;
            Ok(ExitCode::SUCCESS)
        }
        Some(d) => {
            emit(&d.explain())?;
            Ok(ExitCode::FAILURE)
        }
    }
}
