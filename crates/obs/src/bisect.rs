//! Delta-debugging for failing request traces (`pqos-doctor bisect`).
//!
//! Given a recorded trace whose replay produces findings — doctor
//! invariant violations in the replayed journal, or response-parity
//! mismatches against the recorded responses — [`bisect_trace`] shrinks
//! the trace to a (locally) minimal subsequence of requests that still
//! produces the targeted finding code. The shrinking engine is classic
//! ddmin (Zeller's delta debugging): try chunks, then complements, then
//! double the granularity, until no single removal keeps the failure.
//!
//! Every candidate subsequence is judged by *actually replaying it*
//! through the real engine code path, so a minimal reproducer from this
//! module is a real incident you can step through with
//! `pqos-replay run --step`. Candidates that fail to replay at all (a
//! dangling accept for a dropped negotiate is still replayable; a
//! malformed trace is not) simply count as uninteresting.

use crate::doctor::Doctor;
use pqos_service::replay::{replay, ReplayOptions};
use pqos_telemetry::reqtrace::RequestTrace;
use std::collections::BTreeMap;

/// The finding code bisect uses for response-parity mismatches, which the
/// doctor (a journal tool) does not know about.
pub const RESPONSE_MISMATCH: &str = "response_mismatch";

/// Replays `trace` and returns every finding code it produces with its
/// count: the doctor's codes over the replayed journal, plus
/// [`RESPONSE_MISMATCH`] when any replayed response differs from the
/// recorded one.
///
/// # Errors
///
/// A trace that cannot be replayed at all (wrong source, unknown
/// predictor, inconsistent entries) is an error, not a finding.
pub fn findings_for_trace(trace: &RequestTrace) -> Result<BTreeMap<String, u64>, String> {
    let report = replay(trace, &ReplayOptions::default()).map_err(|e| e.to_string())?;
    Ok(finding_codes(&report.journal, report.mismatches.len()))
}

/// Counts finding codes for an already-replayed trace: the doctor's codes
/// over `journal`, plus [`RESPONSE_MISMATCH`] when any response diverged.
pub fn finding_codes(journal: &str, response_mismatches: usize) -> BTreeMap<String, u64> {
    let mut codes: BTreeMap<String, u64> = BTreeMap::new();
    for finding in Doctor::check_str(journal).findings {
        *codes.entry(finding.code.to_string()).or_insert(0) += 1;
    }
    if response_mismatches > 0 {
        codes.insert(RESPONSE_MISMATCH.into(), response_mismatches as u64);
    }
    codes
}

/// Minimizes the index set `0..n` with ddmin: returns a subset for which
/// `interesting` still holds and from which no chunk at final granularity
/// can be removed. `interesting` always receives indices in increasing
/// order, and is assumed to hold for the full set.
pub fn ddmin(n: usize, interesting: &mut dyn FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut current: Vec<usize> = (0..n).collect();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(granularity);
        let chunks: Vec<Vec<usize>> = current.chunks(chunk_len).map(<[usize]>::to_vec).collect();
        let mut reduced = false;
        // Reduce to one chunk: the biggest single step.
        for chunk in &chunks {
            if chunk.len() < current.len() && interesting(chunk) {
                current = chunk.clone();
                granularity = 2;
                reduced = true;
                break;
            }
        }
        // Remove one chunk: the complement step.
        if !reduced && chunks.len() > 1 {
            for skip in 0..chunks.len() {
                let complement: Vec<usize> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                if complement.len() < current.len() && interesting(&complement) {
                    current = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break; // 1-minimal at single-entry granularity
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// What [`bisect_trace`] found: the shrunk trace and the numbers CI
/// asserts on.
#[derive(Debug, Clone)]
pub struct TraceBisect {
    /// The finding code the minimal trace preserves.
    pub target: String,
    /// Request entries in the original trace.
    pub original_requests: usize,
    /// Request entries in the minimal trace.
    pub minimal_requests: usize,
    /// Candidate replays executed while shrinking.
    pub tests_run: u64,
    /// The minimal reproducer, ready to encode and replay.
    pub minimal: RequestTrace,
}

impl TraceBisect {
    /// One JSON object with the shrink summary (for CI to parse).
    pub fn summary_json(&self) -> String {
        let mut w = pqos_telemetry::json::ObjWriter::new();
        w.str("target", &self.target)
            .u64("original_requests", self.original_requests as u64)
            .u64("minimal_requests", self.minimal_requests as u64)
            .u64("tests_run", self.tests_run);
        w.finish()
    }
}

/// Shrinks `trace` to a minimal subsequence that still produces `target`
/// (default: the alphabetically first code the full trace produces).
///
/// # Errors
///
/// The full trace must replay (see [`findings_for_trace`]) and must
/// actually produce the targeted finding; a clean trace has nothing to
/// bisect.
pub fn bisect_trace(trace: &RequestTrace, target: Option<&str>) -> Result<TraceBisect, String> {
    let full = findings_for_trace(trace)?;
    let target: String = match target {
        Some(t) if full.contains_key(t) => t.to_string(),
        Some(t) => {
            let have: Vec<&str> = full.keys().map(String::as_str).collect();
            return Err(format!(
                "trace does not produce finding `{t}` (it produces: {})",
                if have.is_empty() {
                    "none — it replays clean".to_string()
                } else {
                    have.join(", ")
                }
            ));
        }
        None => match full.keys().next() {
            Some(first) => first.clone(),
            None => return Err("trace replays clean (no findings); nothing to bisect".into()),
        },
    };

    let mut tests_run = 0u64;
    let mut interesting = |indices: &[usize]| -> bool {
        tests_run += 1;
        let candidate = RequestTrace {
            meta: trace.meta.clone(),
            entries: indices.iter().map(|&i| trace.entries[i].clone()).collect(),
        };
        matches!(findings_for_trace(&candidate), Ok(codes) if codes.contains_key(&target))
    };
    let kept = ddmin(trace.entries.len(), &mut interesting);
    let minimal = RequestTrace {
        meta: trace.meta.clone(),
        entries: kept.iter().map(|&i| trace.entries[i].clone()).collect(),
    };
    Ok(TraceBisect {
        target,
        original_requests: trace.entries.len(),
        minimal_requests: minimal.entries.len(),
        tests_run,
        minimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_isolates_a_single_culprit() {
        let culprit = 17usize;
        let mut tests = 0;
        let kept = ddmin(40, &mut |idx| {
            tests += 1;
            idx.contains(&culprit)
        });
        assert_eq!(kept, vec![culprit]);
        assert!(tests < 200, "ddmin should not brute-force: {tests} tests");
    }

    #[test]
    fn ddmin_keeps_an_interacting_pair() {
        // Failure needs BOTH 3 and 30 — ddmin must not drop either.
        let kept = ddmin(32, &mut |idx| idx.contains(&3) && idx.contains(&30));
        assert_eq!(kept, vec![3, 30]);
    }

    #[test]
    fn ddmin_handles_degenerate_sizes() {
        assert!(ddmin(0, &mut |_| true).is_empty());
        assert_eq!(ddmin(1, &mut |_| true), vec![0]);
    }
}
