//! The journal invariant doctor: streams a journal and reports every way
//! it contradicts the simulator's own rules.
//!
//! A journal that passes the doctor is internally consistent: time never
//! runs backwards, every lifecycle edge has its prerequisite, no two jobs
//! occupy a node at once, and every recorded verdict matches the recorded
//! commitment. A journal that fails pinpoints the first line where the
//! simulator (or a hand-edited journal) broke its word — which is exactly
//! where debugging should start.
//!
//! Findings are machine-readable ([`Finding::to_jsonl`]) so CI can gate on
//! them and humans can grep them.

use pqos_telemetry::json::ObjWriter;
use pqos_telemetry::{AlertState, PromiseVerdict, TelemetryEvent};
use std::collections::{BTreeSet, HashMap};
use std::io::BufRead;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but explainable (e.g. a truncated journal).
    Warning,
    /// The journal is inconsistent with the simulator's invariants.
    Error,
}

impl Severity {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One invariant violation, anchored to a journal line.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable machine-readable code (e.g. `out_of_time_order`).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// 1-based journal line the finding anchors to (0 = end of journal).
    pub line: u64,
    /// Sim time of the offending event, when applicable.
    pub at: Option<u64>,
    /// Job involved, when applicable.
    pub job: Option<u64>,
    /// Node involved, when applicable.
    pub node: Option<u64>,
    /// Human-readable explanation with the concrete numbers.
    pub detail: String,
}

impl Finding {
    /// Encodes the finding as one JSON line.
    pub fn to_jsonl(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("code", self.code)
            .str("severity", self.severity.as_str())
            .u64("line", self.line)
            .opt_u64("at", self.at)
            .opt_u64("job", self.job)
            .opt_u64("node", self.node)
            .str("detail", &self.detail);
        w.finish()
    }
}

/// Everything the doctor found in one journal.
#[derive(Debug, Clone, Default)]
pub struct DoctorReport {
    /// All findings, in journal order.
    pub findings: Vec<Finding>,
    /// Journal lines examined.
    pub lines: u64,
    /// Lines that parsed into events.
    pub events: u64,
}

impl DoctorReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether the journal is clean (no findings at all).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders a human-readable summary, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} [{}] line {}: {}\n",
                f.severity.as_str(),
                f.code,
                f.line,
                f.detail
            ));
        }
        out.push_str(&format!(
            "{} lines, {} events, {} errors, {} warnings\n",
            self.lines,
            self.events,
            self.errors(),
            self.warnings()
        ));
        out
    }
}

/// Per-job bookkeeping while streaming.
#[derive(Debug, Default)]
struct JobTrack {
    negotiated: bool,
    /// Effective deadline (secs) from the quote.
    deadline: Option<u64>,
    /// Quoted success probability from the quote.
    quoted_p: Option<f64>,
    /// `met_deadline` from `job_completed` (None while unfinished or
    /// cancelled).
    met: Option<bool>,
    /// A `promise_resolved` has landed for this job.
    resolved: bool,
    running: bool,
    done: bool,
    /// A checkpoint request is outstanding (unresolved).
    pending_request: bool,
    /// Current placement (most recent `job_placed`).
    nodes: Vec<u64>,
    /// Set when `job_completed` said `met_deadline: false`: a
    /// `deadline_missed` for this job is now owed.
    owes_missed: Option<u64>,
}

/// The streaming invariant checker. Feed it lines (or events), then call
/// [`Doctor::finish`].
#[derive(Debug, Default)]
pub struct Doctor {
    report: DoctorReport,
    last_at: u64,
    jobs: HashMap<u64, JobTrack>,
    /// node -> job currently occupying it.
    owner: HashMap<u64, u64>,
    /// SLO rules currently in the fired state.
    firing_rules: BTreeSet<String>,
}

impl Doctor {
    /// A fresh doctor.
    pub fn new() -> Self {
        Doctor::default()
    }

    /// Checks everything a reader yields and returns the report.
    pub fn check_reader(reader: impl BufRead) -> std::io::Result<DoctorReport> {
        let mut doctor = Doctor::new();
        for line in reader.lines() {
            doctor.feed_line(&line?);
        }
        Ok(doctor.finish())
    }

    /// Checks a full journal held in memory.
    pub fn check_str(journal: &str) -> DoctorReport {
        let mut doctor = Doctor::new();
        for line in journal.lines() {
            doctor.feed_line(line);
        }
        doctor.finish()
    }

    /// Feeds one raw journal line.
    pub fn feed_line(&mut self, line: &str) {
        self.report.lines += 1;
        if line.trim().is_empty() {
            return;
        }
        match TelemetryEvent::from_jsonl(line) {
            Some(event) => self.feed_event(&event),
            None => {
                let shown: String = line.chars().take(80).collect();
                self.finding(
                    "unparseable_line",
                    Severity::Error,
                    None,
                    None,
                    None,
                    format!("line does not parse as a journal event: {shown:?}"),
                );
            }
        }
    }

    /// Feeds one already-parsed event (counts as one line).
    pub fn feed_event(&mut self, event: &TelemetryEvent) {
        self.report.events += 1;
        let at = event.at().as_secs();
        if at < self.last_at {
            self.finding(
                "out_of_time_order",
                Severity::Error,
                Some(at),
                None,
                None,
                format!(
                    "{} at t={at} precedes the previous event at t={}",
                    event.name(),
                    self.last_at
                ),
            );
        }
        self.last_at = self.last_at.max(at);
        match event {
            TelemetryEvent::JobSubmitted { job, .. } => {
                let track = self.jobs.entry(*job).or_default();
                if track.negotiated || track.done {
                    let detail = format!("job {job} submitted twice");
                    self.finding(
                        "duplicate_submit",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
            }
            TelemetryEvent::QuoteNegotiated {
                job,
                deadline_secs,
                success_probability,
                ..
            } => {
                if !self.jobs.contains_key(job) {
                    self.finding(
                        "negotiate_before_submit",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        format!("quote for job {job} with no prior job_submitted"),
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                track.negotiated = true;
                track.deadline = Some(*deadline_secs);
                track.quoted_p = Some(*success_probability);
            }
            TelemetryEvent::JobRejected { job, .. } => {
                self.jobs.entry(*job).or_default().done = true;
            }
            TelemetryEvent::JobPlaced { job, nodes, .. } => {
                let known = self.jobs.get(job).is_some_and(|t| t.negotiated);
                if !known {
                    self.finding(
                        "place_before_negotiate",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        format!("placement for job {job} with no prior quote_negotiated"),
                    );
                }
                self.jobs.entry(*job).or_default().nodes = nodes.clone();
            }
            TelemetryEvent::JobStarted { job, .. } => {
                let track = self.jobs.entry(*job).or_default();
                if !track.negotiated {
                    let detail = format!("job {job} started with no prior quote_negotiated");
                    self.finding(
                        "start_before_negotiate",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                if track.running {
                    let detail = format!("job {job} started while already running");
                    self.finding(
                        "double_start",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                track.running = true;
                track.pending_request = false;
                // Occupancy: this attempt claims its placed partition.
                let nodes = track.nodes.clone();
                for node in nodes {
                    let occupier = self.owner.get(&node).copied();
                    if let Some(other) = occupier {
                        if other != *job {
                            let detail = format!(
                                "job {job} started on node {node} still occupied by job {other}"
                            );
                            self.finding(
                                "overlapping_runs",
                                Severity::Error,
                                Some(at),
                                Some(*job),
                                Some(node),
                                detail,
                            );
                        }
                    }
                    self.owner.insert(node, *job);
                }
            }
            TelemetryEvent::CheckpointRequested { job, .. } => {
                let track = self.jobs.entry(*job).or_default();
                if !track.running {
                    let detail = format!("checkpoint requested for job {job} that is not running");
                    self.finding(
                        "ckpt_outside_run",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                if track.pending_request {
                    let detail =
                        format!("job {job} requested a checkpoint with one already outstanding");
                    self.finding(
                        "double_request",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                self.jobs.entry(*job).or_default().pending_request = true;
            }
            TelemetryEvent::CheckpointTaken { job, .. } => {
                let track = self.jobs.entry(*job).or_default();
                if !track.pending_request {
                    let detail = format!(
                        "checkpoint finished for job {job} with no outstanding checkpoint_requested"
                    );
                    self.finding(
                        "ckpt_finish_without_request",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                self.jobs.entry(*job).or_default().pending_request = false;
            }
            TelemetryEvent::CheckpointSkipped { job, .. } => {
                let track = self.jobs.entry(*job).or_default();
                if !track.pending_request {
                    let detail = format!(
                        "checkpoint skipped for job {job} with no outstanding checkpoint_requested"
                    );
                    self.finding(
                        "ckpt_finish_without_request",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                self.jobs.entry(*job).or_default().pending_request = false;
            }
            TelemetryEvent::NodeFailed {
                node, victim_job, ..
            } => {
                if let Some(victim) = victim_job {
                    let track = self.jobs.entry(*victim).or_default();
                    if !track.running {
                        let detail =
                            format!("node {node} failure names victim job {victim}, not running");
                        self.finding(
                            "victim_not_running",
                            Severity::Error,
                            Some(at),
                            Some(*victim),
                            Some(*node),
                            detail,
                        );
                    }
                    let track = self.jobs.entry(*victim).or_default();
                    track.running = false;
                    // The pending checkpoint (if any) dies with the attempt.
                    track.pending_request = false;
                    self.owner.retain(|_, j| j != victim);
                }
            }
            TelemetryEvent::NodeRecovered { .. } => {}
            TelemetryEvent::JobRequeued { job, .. } => {
                let track = self.jobs.entry(*job).or_default();
                if track.running {
                    let detail = format!("job {job} requeued while still running");
                    self.finding(
                        "requeue_while_running",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
            }
            TelemetryEvent::JobCompleted {
                job, met_deadline, ..
            } => {
                let track = self.jobs.entry(*job).or_default();
                if !track.running {
                    let detail = format!("job {job} completed without a running attempt");
                    self.finding(
                        "complete_without_start",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let deadline = self.jobs.get(job).and_then(|t| t.deadline);
                if let Some(d) = deadline {
                    let should_meet = at <= d;
                    if should_meet != *met_deadline {
                        let detail = format!(
                            "job {job} finished at t={at} against deadline {d} but journal says \
                             met_deadline={met_deadline}"
                        );
                        self.finding(
                            "deadline_mismatch",
                            Severity::Error,
                            Some(at),
                            Some(*job),
                            None,
                            detail,
                        );
                    }
                }
                let track = self.jobs.entry(*job).or_default();
                track.running = false;
                track.done = true;
                track.met = Some(*met_deadline);
                track.owes_missed = (!met_deadline).then_some(at);
                self.owner.retain(|_, j| j != job);
            }
            TelemetryEvent::JobCancelled { job, .. } => {
                if !self.jobs.contains_key(job) {
                    self.finding(
                        "cancel_without_submit",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        format!("job {job} cancelled with no prior job_submitted"),
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                if track.running {
                    let detail = format!("job {job} cancelled while running");
                    self.finding(
                        "cancel_while_running",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                if track.done {
                    let detail = format!("job {job} cancelled after it already finished");
                    self.finding(
                        "cancel_after_done",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                track.done = true;
                track.running = false;
                track.pending_request = false;
                self.owner.retain(|_, j| j != job);
            }
            TelemetryEvent::DeadlineMissed {
                job, late_by_secs, ..
            } => {
                let track = self.jobs.entry(*job).or_default();
                let owed = track.owes_missed.take();
                if owed.is_none() {
                    let detail = format!(
                        "deadline_missed for job {job} without a preceding late job_completed"
                    );
                    self.finding(
                        "orphan_deadline_missed",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let deadline = self.jobs.get(job).and_then(|t| t.deadline);
                if let Some(d) = deadline {
                    let expected = at.saturating_sub(d);
                    if expected != *late_by_secs {
                        let detail = format!(
                            "job {job} finished at t={at} with deadline {d}: late_by should be \
                             {expected}, journal says {late_by_secs}"
                        );
                        self.finding(
                            "late_by_mismatch",
                            Severity::Error,
                            Some(at),
                            Some(*job),
                            None,
                            detail,
                        );
                    }
                }
            }
            TelemetryEvent::PromiseResolved {
                job,
                success_probability,
                deadline_secs,
                verdict,
                ..
            } => {
                let track = self.jobs.entry(*job).or_default();
                if !track.negotiated {
                    let detail =
                        format!("promise resolved for job {job} with no prior quote_negotiated");
                    self.finding(
                        "orphan_promise_resolved",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                if track.resolved {
                    let detail = format!("job {job}'s promise resolved twice");
                    self.finding(
                        "duplicate_promise_resolution",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
                let track = self.jobs.entry(*job).or_default();
                track.resolved = true;
                // The resolution restates the quote; a disagreement means
                // the link between promise and outcome is corrupt.
                let (quoted_p, deadline, met, done) =
                    (track.quoted_p, track.deadline, track.met, track.done);
                if let Some(p) = quoted_p {
                    if p != *success_probability {
                        let detail = format!(
                            "job {job} resolved with quoted p {success_probability} but the \
                             quote said {p}"
                        );
                        self.finding(
                            "promise_quote_mismatch",
                            Severity::Error,
                            Some(at),
                            Some(*job),
                            None,
                            detail,
                        );
                    }
                }
                if let Some(d) = deadline {
                    if d != *deadline_secs {
                        let detail = format!(
                            "job {job} resolved against deadline {deadline_secs} but the quote \
                             said {d}"
                        );
                        self.finding(
                            "promise_quote_mismatch",
                            Severity::Error,
                            Some(at),
                            Some(*job),
                            None,
                            detail,
                        );
                    }
                }
                let consistent = match verdict {
                    PromiseVerdict::Kept => met == Some(true),
                    PromiseVerdict::Broken => met == Some(false),
                    PromiseVerdict::Cancelled => done && met.is_none(),
                };
                if !consistent {
                    let detail = format!(
                        "job {job} resolved {} but the journal's terminal outcome disagrees",
                        verdict.as_str()
                    );
                    self.finding(
                        "promise_verdict_mismatch",
                        Severity::Error,
                        Some(at),
                        Some(*job),
                        None,
                        detail,
                    );
                }
            }
            // Alerts are system-wide annotations; full re-derivation lives
            // in `pqos-doctor slo`. Here the doctor only checks the state
            // machine: a rule alternates fire → resolve → fire.
            TelemetryEvent::SloAlert { rule, state, .. } => match state {
                AlertState::Fire => {
                    if !self.firing_rules.insert(rule.clone()) {
                        let detail = format!("slo rule {rule} fired while already firing");
                        self.finding(
                            "alert_double_fire",
                            Severity::Error,
                            Some(at),
                            None,
                            None,
                            detail,
                        );
                    }
                }
                AlertState::Resolve => {
                    if !self.firing_rules.remove(rule) {
                        let detail = format!("slo rule {rule} resolved while not firing");
                        self.finding(
                            "alert_resolve_without_fire",
                            Severity::Error,
                            Some(at),
                            None,
                            None,
                            detail,
                        );
                    }
                }
            },
        }
    }

    /// Ends the stream: reports owed `deadline_missed` events and jobs the
    /// journal left mid-flight.
    pub fn finish(mut self) -> DoctorReport {
        let mut jobs: Vec<(u64, JobTrack)> = self.jobs.drain().collect();
        jobs.sort_by_key(|(id, _)| *id);
        for (id, track) in jobs {
            if let Some(finished_at) = track.owes_missed {
                self.report.findings.push(Finding {
                    code: "missed_deadline_not_journaled",
                    severity: Severity::Error,
                    line: 0,
                    at: Some(finished_at),
                    job: Some(id),
                    node: None,
                    detail: format!(
                        "job {id} completed late at t={finished_at} but no deadline_missed follows"
                    ),
                });
            }
            if !track.done {
                self.report.findings.push(Finding {
                    code: "unfinished_job",
                    severity: Severity::Warning,
                    line: 0,
                    at: None,
                    job: Some(id),
                    node: None,
                    detail: format!(
                        "job {id} never completed or was rejected (truncated journal?)"
                    ),
                });
            }
        }
        self.report
    }

    fn finding(
        &mut self,
        code: &'static str,
        severity: Severity,
        at: Option<u64>,
        job: Option<u64>,
        node: Option<u64>,
        detail: String,
    ) {
        self.report.findings.push(Finding {
            code,
            severity,
            line: self.report.lines.max(self.report.events),
            at,
            job,
            node,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqos_sim_core::time::SimTime;
    use pqos_telemetry::TelemetryEvent as E;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn clean_life() -> Vec<TelemetryEvent> {
        vec![
            E::JobSubmitted {
                at: t(0),
                job: 1,
                size: 2,
                runtime_secs: 7200,
            },
            E::QuoteNegotiated {
                at: t(0),
                job: 1,
                start_secs: 0,
                promised_secs: 8000,
                deadline_secs: 8000,
                success_probability: 1.0,
            },
            E::JobPlaced {
                at: t(0),
                job: 1,
                nodes: vec![0, 1],
                failure_probability: 0.0,
            },
            E::JobStarted {
                at: t(0),
                job: 1,
                restarts: 0,
            },
            E::CheckpointRequested {
                at: t(3600),
                job: 1,
            },
            E::CheckpointTaken {
                at: t(4320),
                job: 1,
                overhead_secs: 720,
            },
            E::JobCompleted {
                at: t(7920),
                job: 1,
                met_deadline: true,
            },
        ]
    }

    fn check(events: &[TelemetryEvent]) -> DoctorReport {
        let journal: String = events
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect::<String>();
        Doctor::check_str(&journal)
    }

    #[test]
    fn a_clean_journal_has_no_findings() {
        let report = check(&clean_life());
        assert!(report.is_clean(), "unexpected: {}", report.render());
        assert_eq!(report.events, 7);
        assert_eq!(report.lines, 7);
    }

    #[test]
    fn detects_out_of_time_order() {
        let mut events = clean_life();
        events.swap(4, 5); // checkpoint_taken before its request, time runs backwards
        let report = check(&events);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "out_of_time_order"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "ckpt_finish_without_request"));
        assert!(report.errors() >= 2);
    }

    #[test]
    fn detects_start_before_negotiate() {
        let events = vec![
            E::JobSubmitted {
                at: t(0),
                job: 1,
                size: 1,
                runtime_secs: 10,
            },
            E::JobStarted {
                at: t(0),
                job: 1,
                restarts: 0,
            },
            E::JobCompleted {
                at: t(10),
                job: 1,
                met_deadline: true,
            },
        ];
        let report = check(&events);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "start_before_negotiate")
            .expect("finding emitted");
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.job, Some(1));
        assert_eq!(f.line, 2);
    }

    #[test]
    fn detects_overlapping_runs_on_one_partition() {
        let mut events = clean_life();
        // A second job placed onto node 1 while job 1 still runs (inserted
        // between job 1's start at t=0 and its request at t=3600, keeping
        // the journal time-ordered).
        events.splice(
            4..4,
            vec![
                E::JobSubmitted {
                    at: t(100),
                    job: 2,
                    size: 1,
                    runtime_secs: 100,
                },
                E::QuoteNegotiated {
                    at: t(100),
                    job: 2,
                    start_secs: 100,
                    promised_secs: 300,
                    deadline_secs: 300,
                    success_probability: 1.0,
                },
                E::JobPlaced {
                    at: t(100),
                    job: 2,
                    nodes: vec![1],
                    failure_probability: 0.0,
                },
                E::JobStarted {
                    at: t(100),
                    job: 2,
                    restarts: 0,
                },
                E::JobCompleted {
                    at: t(200),
                    job: 2,
                    met_deadline: true,
                },
            ],
        );
        let report = check(&events);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "overlapping_runs")
            .expect("overlap detected");
        assert_eq!(f.node, Some(1));
        assert_eq!(f.job, Some(2));
        // Everything else about that journal is well-formed.
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn detects_deadline_verdict_mismatches() {
        let mut events = clean_life();
        // Flip the verdict: finished at 7920 <= 8000 but claims a miss.
        events[6] = E::JobCompleted {
            at: t(7920),
            job: 1,
            met_deadline: false,
        };
        let report = check(&events);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "deadline_mismatch"));
        // A late verdict also owes a deadline_missed event.
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "missed_deadline_not_journaled"));
    }

    #[test]
    fn detects_wrong_late_by() {
        let mut events = clean_life();
        events[6] = E::JobCompleted {
            at: t(9000),
            job: 1,
            met_deadline: false,
        };
        events.push(E::DeadlineMissed {
            at: t(9000),
            job: 1,
            late_by_secs: 1, // should be 1000
        });
        let report = check(&events);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "late_by_mismatch")
            .expect("late_by checked");
        assert!(f.detail.contains("1000"));
        assert!(!report
            .findings
            .iter()
            .any(|f| f.code == "missed_deadline_not_journaled"));
    }

    #[test]
    fn detects_orphan_deadline_missed() {
        let mut events = clean_life();
        events.push(E::DeadlineMissed {
            at: t(7920),
            job: 1,
            late_by_secs: 0,
        });
        let report = check(&events);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "orphan_deadline_missed"));
    }

    #[test]
    fn a_cancelled_job_is_a_clean_lifecycle() {
        let events = vec![
            E::JobSubmitted {
                at: t(0),
                job: 1,
                size: 2,
                runtime_secs: 7200,
            },
            E::QuoteNegotiated {
                at: t(0),
                job: 1,
                start_secs: 100,
                promised_secs: 8000,
                deadline_secs: 8000,
                success_probability: 1.0,
            },
            E::JobPlaced {
                at: t(0),
                job: 1,
                nodes: vec![0, 1],
                failure_probability: 0.0,
            },
            E::JobCancelled { at: t(50), job: 1 },
        ];
        let report = check(&events);
        assert!(report.is_clean(), "unexpected: {}", report.render());
    }

    #[test]
    fn detects_invalid_cancels() {
        // Cancel of a never-submitted job.
        let report = check(&[E::JobCancelled { at: t(0), job: 9 }]);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "cancel_without_submit"));

        // Cancel while the job is running.
        let mut events = clean_life();
        events.truncate(5); // up to checkpoint_requested; job 1 is running
        events.push(E::JobCancelled {
            at: t(3600),
            job: 1,
        });
        let report = check(&events);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "cancel_while_running"));

        // Cancel after completion.
        let mut events = clean_life();
        events.push(E::JobCancelled {
            at: t(7920),
            job: 1,
        });
        let report = check(&events);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "cancel_after_done"));
    }

    #[test]
    fn promise_resolutions_are_checked_against_the_terminal_outcome() {
        use pqos_telemetry::PromiseVerdict as V;
        let resolve = |verdict| E::PromiseResolved {
            at: t(7920),
            job: 1,
            success_probability: 1.0,
            deadline_secs: 8000,
            verdict,
        };
        // A kept promise after an on-time completion is clean.
        let mut events = clean_life();
        events.push(resolve(V::Kept));
        assert!(check(&events).is_clean());

        // A broken verdict contradicting met_deadline=true is flagged.
        let mut events = clean_life();
        events.push(resolve(V::Broken));
        let report = check(&events);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "promise_verdict_mismatch"));

        // Restating the quote wrongly is flagged.
        let mut events = clean_life();
        events.push(E::PromiseResolved {
            at: t(7920),
            job: 1,
            success_probability: 0.5,
            deadline_secs: 9000,
            verdict: V::Kept,
        });
        let report = check(&events);
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.code == "promise_quote_mismatch")
                .count(),
            2,
            "both the probability and the deadline restatements are checked"
        );

        // Resolving twice, or without a quote, is flagged.
        let mut events = clean_life();
        events.push(resolve(V::Kept));
        events.push(resolve(V::Kept));
        assert!(check(&events)
            .findings
            .iter()
            .any(|f| f.code == "duplicate_promise_resolution"));
        let report = check(&[E::PromiseResolved {
            at: t(0),
            job: 9,
            success_probability: 1.0,
            deadline_secs: 100,
            verdict: V::Cancelled,
        }]);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "orphan_promise_resolved"));
    }

    #[test]
    fn warns_on_truncated_journals() {
        let mut events = clean_life();
        events.truncate(5); // chop off the checkpoint completion + finish
        let report = check(&events);
        assert_eq!(report.errors(), 0);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "unfinished_job")
            .expect("truncation warned");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.line, 0, "end-of-journal finding");
    }

    #[test]
    fn reports_unparseable_lines_with_position() {
        let mut journal: String = clean_life()
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect::<String>();
        journal.push_str("{\"event\":\"garbage\"}\n");
        let report = Doctor::check_str(&journal);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "unparseable_line")
            .expect("garbage flagged");
        assert_eq!(f.line, 8);
        assert!(f.detail.contains("garbage"));
    }

    #[test]
    fn findings_serialize_as_jsonl() {
        let f = Finding {
            code: "overlapping_runs",
            severity: Severity::Error,
            line: 42,
            at: Some(100),
            job: Some(2),
            node: Some(1),
            detail: "job 2 started on node 1 still occupied by job 1".into(),
        };
        let line = f.to_jsonl();
        let v = pqos_telemetry::json::Json::parse(&line).expect("valid json");
        assert_eq!(v.get("code").unwrap().as_str(), Some("overlapping_runs"));
        assert_eq!(v.get("severity").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("line").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("node").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn check_reader_streams() {
        let journal: String = clean_life()
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect::<String>();
        let report = Doctor::check_reader(std::io::Cursor::new(journal)).unwrap();
        assert!(report.is_clean());
    }
}
