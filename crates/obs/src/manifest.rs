//! Pinned-findings manifests for the failing-trace corpus.
//!
//! Each corpus directory under `traces/failing/` pairs a trace with what
//! its replay is *expected* to produce: an `expected.json` manifest
//! listing finding codes and counts (absent manifest = expected clean).
//! CI replays the corpus and fails on any drift in either direction —
//! a pinned finding that disappeared (the bug stopped reproducing, or
//! the detector regressed) or a new finding nobody pinned.

use pqos_telemetry::json::{Json, ObjWriter};
use std::collections::BTreeMap;
use std::fmt;

/// The findings a corpus trace is pinned to produce on replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpectedFindings {
    /// Expected count per finding code.
    pub findings: BTreeMap<String, u64>,
}

impl ExpectedFindings {
    /// The clean expectation: replay must produce no findings at all.
    pub fn clean() -> Self {
        ExpectedFindings::default()
    }

    /// Parses an `expected.json` document:
    /// `{"findings": [{"code": "...", "count": N}, ...]}`.
    pub fn from_json(text: &str) -> Option<ExpectedFindings> {
        let v = Json::parse(text)?;
        let mut findings = BTreeMap::new();
        for item in v.get("findings")?.as_arr()? {
            let code = item.get("code")?.as_str()?.to_string();
            let count = item.get("count")?.as_u64()?;
            findings.insert(code, count);
        }
        Some(ExpectedFindings { findings })
    }

    /// Renders the manifest back as `expected.json`.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self
            .findings
            .iter()
            .map(|(code, count)| {
                let mut w = ObjWriter::new();
                w.str("code", code).u64("count", *count);
                w.finish()
            })
            .collect();
        format!("{{\"findings\": [{}]}}\n", items.join(", "))
    }

    /// Compares pinned findings against what a replay actually produced.
    pub fn compare(&self, actual: &BTreeMap<String, u64>) -> FindingsDelta {
        let mut delta = FindingsDelta::default();
        for (code, &expected) in &self.findings {
            let got = actual.get(code).copied().unwrap_or(0);
            if got != expected {
                delta.missing.push((code.clone(), expected, got));
            }
        }
        for (code, &got) in actual {
            if !self.findings.contains_key(code) {
                delta.unpinned.push((code.clone(), got));
            }
        }
        delta
    }
}

/// How a replay's findings differ from the pinned expectation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FindingsDelta {
    /// Pinned codes whose count changed: `(code, expected, actual)`.
    pub missing: Vec<(String, u64, u64)>,
    /// Codes the replay produced that nothing pinned: `(code, actual)`.
    pub unpinned: Vec<(String, u64)>,
}

impl FindingsDelta {
    /// Whether the replay matched the manifest exactly.
    pub fn is_match(&self) -> bool {
        self.missing.is_empty() && self.unpinned.is_empty()
    }
}

impl fmt::Display for FindingsDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (code, expected, actual) in &self.missing {
            writeln!(
                f,
                "  pinned `{code}` expected {expected}, replay produced {actual}"
            )?;
        }
        for (code, actual) in &self.unpinned {
            writeln!(f, "  unpinned finding `{code}` appeared {actual} time(s)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_and_compares() {
        let mut expected = ExpectedFindings::clean();
        expected.findings.insert("response_mismatch".into(), 1);
        expected.findings.insert("start_before_quote".into(), 2);
        let parsed = ExpectedFindings::from_json(&expected.to_json()).unwrap();
        assert_eq!(parsed, expected);

        let mut actual = BTreeMap::new();
        actual.insert("response_mismatch".to_string(), 1u64);
        actual.insert("start_before_quote".to_string(), 2u64);
        assert!(expected.compare(&actual).is_match());

        actual.insert("out_of_time_order".to_string(), 3);
        actual.insert("start_before_quote".to_string(), 1);
        let delta = expected.compare(&actual);
        assert_eq!(delta.missing, vec![("start_before_quote".into(), 2, 1)]);
        assert_eq!(delta.unpinned, vec![("out_of_time_order".into(), 3)]);
        assert!(!delta.is_match());
        assert!(delta
            .to_string()
            .contains("unpinned finding `out_of_time_order`"));
    }

    #[test]
    fn clean_manifest_rejects_any_finding() {
        let clean = ExpectedFindings::clean();
        assert!(clean.compare(&BTreeMap::new()).is_match());
        let mut actual = BTreeMap::new();
        actual.insert("node_overcommit".to_string(), 1u64);
        assert!(!clean.compare(&actual).is_match());
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(ExpectedFindings::from_json("not json").is_none());
        assert!(ExpectedFindings::from_json("{}").is_none());
        assert!(ExpectedFindings::from_json("{\"findings\": [{\"code\": 3}]}").is_none());
    }
}
