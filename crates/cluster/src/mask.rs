//! Dense node-set bitmasks.
//!
//! A [`NodeMask`] represents a subset of a fixed-width cluster as packed
//! `u64` words, one bit per node. Set algebra (union, difference,
//! intersection tests) runs word-at-a-time, which is what makes the
//! scheduler's availability timeline cheap: a 128-node cluster is two
//! words, and even a 4096-node machine is only 64.
//!
//! Masks convert losslessly to and from [`Partition`]s and [`NodeId`]
//! lists, so the bitmask representation stays an internal detail of hot
//! paths while public APIs keep speaking in sorted node lists.

use crate::node::NodeId;
use crate::partition::Partition;
use std::fmt;

/// A fixed-width set of nodes packed one bit per node into `u64` words.
///
/// The width is the cluster size; node indices at or beyond the width are
/// ignored by [`set`](NodeMask::set) and never reported by iteration, so
/// callers may pass unvalidated node lists (mirroring how the reservation
/// book tolerates out-of-range exclusions).
///
/// # Examples
///
/// ```
/// use pqos_cluster::mask::NodeMask;
/// use pqos_cluster::node::NodeId;
/// use pqos_cluster::partition::Partition;
///
/// let mut m = NodeMask::from_partition(&Partition::contiguous(0, 3), 8);
/// m.set(NodeId::new(7));
/// assert_eq!(m.count_ones(), 4);
/// assert!(m.contains(NodeId::new(2)));
/// let free: Vec<NodeId> = m.complement_nodes();
/// assert_eq!(free.len(), 4); // n3, n4, n5, n6
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeMask {
    width: u32,
    words: Vec<u64>,
}

impl NodeMask {
    /// An empty mask over a cluster of `width` nodes.
    pub fn empty(width: u32) -> Self {
        NodeMask {
            width,
            words: vec![0; width.div_ceil(64) as usize],
        }
    }

    /// A mask with every one of the `width` nodes set.
    pub fn full(width: u32) -> Self {
        let mut mask = NodeMask::empty(width);
        for w in &mut mask.words {
            *w = u64::MAX;
        }
        mask.clear_padding();
        mask
    }

    /// Builds a mask from a partition's members; out-of-range members are
    /// ignored.
    pub fn from_partition(partition: &Partition, width: u32) -> Self {
        NodeMask::from_nodes(partition.iter(), width)
    }

    /// Builds a mask from any iterator of node ids; out-of-range ids are
    /// ignored.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I, width: u32) -> Self {
        let mut mask = NodeMask::empty(width);
        for n in nodes {
            mask.set(n);
        }
        mask
    }

    /// Cluster width this mask covers (number of addressable nodes).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Adds `node` to the set; ignored if out of range.
    pub fn set(&mut self, node: NodeId) {
        let i = node.index();
        if i < self.width as usize {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Removes `node` from the set; ignored if out of range.
    pub fn clear(&mut self, node: NodeId) {
        let i = node.index();
        if i < self.width as usize {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Whether `node` is in the set (always `false` out of range).
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        i < self.width as usize && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether no node is set.
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of nodes in the set.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of nodes *not* in the set.
    pub fn count_zeros(&self) -> u32 {
        self.width - self.count_ones()
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or_assign(&mut self, other: &NodeMask) {
        assert_eq!(self.width, other.width, "mask width mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and_not_assign(&mut self, other: &NodeMask) {
        assert_eq!(self.width, other.width, "mask width mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether the two sets share any node.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersects(&self, other: &NodeMask) -> bool {
        assert_eq!(self.width, other.width, "mask width mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Empties the set in place, keeping the width.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over member nodes in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = wi as u32 * 64;
            BitIter { word }.map(move |bit| NodeId::new(base + bit))
        })
    }

    /// Member nodes as a sorted list.
    pub fn to_nodes(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// Nodes *not* in the set, sorted ascending.
    pub fn complement_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.count_zeros() as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let base = wi as u32 * 64;
            let tail = self.width.saturating_sub(base).min(64);
            let valid = if tail == 64 {
                u64::MAX
            } else {
                (1 << tail) - 1
            };
            out.extend(
                BitIter {
                    word: !word & valid,
                }
                .map(|bit| NodeId::new(base + bit)),
            );
        }
        out
    }

    /// Converts the set to a [`Partition`], or `None` if it is empty.
    pub fn to_partition(&self) -> Option<Partition> {
        Partition::new(self.iter()).ok()
    }

    /// The packed words, low indices first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a mask from packed words (the inverse of
    /// [`words`](NodeMask::words)). Bits at or beyond `width` in the last
    /// word are cleared, so callers may hand in scratch buffers that were
    /// only maintained word-at-a-time.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not exactly `width.div_ceil(64)`.
    pub fn from_words(width: u32, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            width.div_ceil(64) as usize,
            "word count must match width"
        );
        let mut mask = NodeMask { width, words };
        mask.clear_padding();
        mask
    }

    /// Word-parallel union on raw packed slices: `dst |= src`.
    ///
    /// The word-slice helpers exist so hot walks (the scheduler's quote
    /// cache) can slide a union window over a flat arena of profile rows
    /// without materializing a `NodeMask` per segment.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn or_words(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "word count mismatch");
        for (a, b) in dst.iter_mut().zip(src) {
            *a |= b;
        }
    }

    /// Population count of a raw packed slice.
    pub fn count_ones_words(words: &[u64]) -> u32 {
        words.iter().map(|w| w.count_ones()).sum()
    }

    /// Zeroes any bits at or beyond the width in the last word.
    fn clear_padding(&mut self) {
        let tail = self.width % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1 << tail) - 1;
            }
        }
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the set bit positions of a single word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = NodeMask::empty(100);
        assert_eq!(e.width(), 100);
        assert!(e.is_clear());
        assert_eq!(e.count_ones(), 0);
        assert_eq!(e.count_zeros(), 100);

        let f = NodeMask::full(100);
        assert_eq!(f.count_ones(), 100);
        assert_eq!(f.count_zeros(), 0);
        assert!(f.contains(NodeId::new(99)));
        assert!(!f.contains(NodeId::new(100)));
        assert!(f.complement_nodes().is_empty());
    }

    #[test]
    fn set_clear_contains() {
        let mut m = NodeMask::empty(70);
        m.set(NodeId::new(0));
        m.set(NodeId::new(63));
        m.set(NodeId::new(64));
        m.set(NodeId::new(69));
        m.set(NodeId::new(70)); // out of range, ignored
        m.set(NodeId::new(1000)); // out of range, ignored
        assert_eq!(m.count_ones(), 4);
        assert!(m.contains(NodeId::new(63)));
        assert!(m.contains(NodeId::new(64)));
        assert!(!m.contains(NodeId::new(70)));
        m.clear(NodeId::new(63));
        assert!(!m.contains(NodeId::new(63)));
        assert_eq!(m.count_ones(), 3);
        m.clear_all();
        assert!(m.is_clear());
    }

    #[test]
    fn partition_round_trip() {
        let p = Partition::new([NodeId::new(2), NodeId::new(65), NodeId::new(7)]).unwrap();
        let m = NodeMask::from_partition(&p, 128);
        assert_eq!(m.to_partition().unwrap(), p);
        assert_eq!(
            m.to_nodes(),
            vec![NodeId::new(2), NodeId::new(7), NodeId::new(65)]
        );
        assert!(NodeMask::empty(4).to_partition().is_none());
    }

    #[test]
    fn set_algebra() {
        let w = 130;
        let a = NodeMask::from_nodes([NodeId::new(0), NodeId::new(64), NodeId::new(129)], w);
        let b = NodeMask::from_nodes([NodeId::new(64), NodeId::new(70)], w);
        assert!(a.intersects(&b));

        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.count_ones(), 4);

        let mut d = u.clone();
        d.and_not_assign(&b);
        // Difference strips everything in b, including the shared n64.
        assert_eq!(
            d,
            NodeMask::from_nodes([NodeId::new(0), NodeId::new(129)], w)
        );

        let c = NodeMask::from_nodes([NodeId::new(1)], w);
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic(expected = "mask width mismatch")]
    fn width_mismatch_panics() {
        let mut a = NodeMask::empty(64);
        let b = NodeMask::empty(65);
        a.or_assign(&b);
    }

    #[test]
    fn complement_respects_width() {
        let m = NodeMask::from_nodes([NodeId::new(1)], 3);
        assert_eq!(m.complement_nodes(), vec![NodeId::new(0), NodeId::new(2)]);
        // Exactly one full word: no padding bits to leak.
        let m64 = NodeMask::from_nodes((0..64).map(NodeId::new), 64);
        assert!(m64.complement_nodes().is_empty());
    }

    #[test]
    fn display_lists_members() {
        let m = NodeMask::from_nodes([NodeId::new(3), NodeId::new(1)], 8);
        assert_eq!(m.to_string(), "{n1,n3}");
    }

    #[test]
    fn words_round_trip_and_raw_ops() {
        let m = NodeMask::from_nodes([NodeId::new(3), NodeId::new(64), NodeId::new(99)], 100);
        let rebuilt = NodeMask::from_words(100, m.words().to_vec());
        assert_eq!(rebuilt, m);
        // Padding bits are scrubbed on the way in.
        let dirty = vec![u64::MAX, u64::MAX];
        let full = NodeMask::from_words(100, dirty);
        assert_eq!(full, NodeMask::full(100));
        assert_eq!(NodeMask::count_ones_words(full.words()), 100);

        let mut dst = vec![0b0011u64, 0];
        NodeMask::or_words(&mut dst, &[0b0110, 1 << 40]);
        assert_eq!(dst, vec![0b0111, 1 << 40]);
    }

    #[test]
    #[should_panic(expected = "word count must match width")]
    fn from_words_rejects_wrong_length() {
        let _ = NodeMask::from_words(100, vec![0]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let ids = [0u32, 63, 64, 127, 128];
        let m = NodeMask::from_nodes(ids.iter().copied().map(NodeId::new), 200);
        let got: Vec<u32> = m.iter().map(|n| n.as_u32()).collect();
        assert_eq!(got, ids);
    }
}
