//! The cluster: a fixed population of homogeneous nodes that fail and
//! recover independently (§4.1).

use crate::node::{NodeId, NodeState};
use crate::partition::Partition;
use crate::topology::Topology;
use pqos_sim_core::time::SimTime;
use std::fmt;

/// Errors from cluster occupancy operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A node id beyond the cluster size was used.
    UnknownNode(NodeId),
    /// Tried to claim a node that is already claimed or down.
    NodeUnavailable(NodeId),
    /// Tried to release a node that is not claimed.
    NotClaimed(NodeId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::NodeUnavailable(n) => write!(f, "node {n} is not available"),
            ClusterError::NotClaimed(n) => write!(f, "node {n} is not claimed"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A fixed-size cluster of nodes with up/down state and exclusive
/// occupancy.
///
/// The cluster does not know about jobs — the simulator maps jobs to
/// partitions; the cluster only enforces the two §3.3 invariants:
/// one claim per node, and failed nodes stay down until their recovery
/// instant.
///
/// # Examples
///
/// ```
/// use pqos_cluster::machine::Cluster;
/// use pqos_cluster::node::NodeId;
/// use pqos_cluster::partition::Partition;
/// use pqos_sim_core::time::SimTime;
///
/// let mut c = Cluster::new(4);
/// let p = Partition::contiguous(0, 2);
/// c.claim(&p)?;
/// assert_eq!(c.free_nodes().len(), 2);
/// c.release(&p)?;
/// c.mark_down(NodeId::new(3), SimTime::from_secs(120));
/// assert_eq!(c.free_nodes().len(), 3);
/// # Ok::<(), pqos_cluster::machine::ClusterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    states: Vec<NodeState>,
    claimed: Vec<bool>,
    topology: Topology,
}

impl Cluster {
    /// Creates a cluster of `n` up, unclaimed nodes with the default
    /// (flat) topology.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        Cluster::with_topology(n, Topology::default())
    }

    /// Creates a cluster with an explicit topology.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_topology(n: u32, topology: Topology) -> Self {
        assert!(n > 0, "cluster must have at least one node");
        Cluster {
            states: vec![NodeState::Up; n as usize],
            claimed: vec![false; n as usize],
            topology,
        }
    }

    /// Total number of nodes, up or down.
    pub fn size(&self) -> u32 {
        self.states.len() as u32
    }

    /// The cluster's communication topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// State of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn state(&self, node: NodeId) -> NodeState {
        self.states[node.index()]
    }

    /// Whether `node` is up and unclaimed.
    pub fn is_free(&self, node: NodeId) -> bool {
        node.index() < self.states.len()
            && self.states[node.index()].is_up()
            && !self.claimed[node.index()]
    }

    /// Sorted list of nodes that are up and unclaimed.
    pub fn free_nodes(&self) -> Vec<NodeId> {
        (0..self.size())
            .map(NodeId::new)
            .filter(|&n| self.is_free(n))
            .collect()
    }

    /// Number of nodes currently up (claimed or not).
    pub fn up_count(&self) -> u32 {
        self.states.iter().filter(|s| s.is_up()).count() as u32
    }

    /// Marks every node of `partition` as claimed.
    ///
    /// # Errors
    ///
    /// Fails with [`ClusterError::NodeUnavailable`] (without claiming
    /// anything) if any member is down or already claimed, and
    /// [`ClusterError::UnknownNode`] if any member is out of range.
    pub fn claim(&mut self, partition: &Partition) -> Result<(), ClusterError> {
        for n in partition.iter() {
            if n.index() >= self.states.len() {
                return Err(ClusterError::UnknownNode(n));
            }
            if !self.is_free(n) {
                return Err(ClusterError::NodeUnavailable(n));
            }
        }
        for n in partition.iter() {
            self.claimed[n.index()] = true;
        }
        Ok(())
    }

    /// Releases every node of `partition`.
    ///
    /// # Errors
    ///
    /// Fails with [`ClusterError::NotClaimed`] (without releasing anything)
    /// if any member is not currently claimed.
    pub fn release(&mut self, partition: &Partition) -> Result<(), ClusterError> {
        for n in partition.iter() {
            if n.index() >= self.states.len() {
                return Err(ClusterError::UnknownNode(n));
            }
            if !self.claimed[n.index()] {
                return Err(ClusterError::NotClaimed(n));
            }
        }
        for n in partition.iter() {
            self.claimed[n.index()] = false;
        }
        Ok(())
    }

    /// Takes `node` down until `until`. The claim, if any, is *not*
    /// released: the simulator decides what happens to the job.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mark_down(&mut self, node: NodeId, until: SimTime) {
        self.states[node.index()] = NodeState::Down { until };
    }

    /// Brings `node` back up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mark_up(&mut self, node: NodeId) {
        self.states[node.index()] = NodeState::Up;
    }

    /// Whether every node in `partition` is up (ignores claims).
    pub fn all_up(&self, partition: &Partition) -> bool {
        partition.iter().all(|n| self.states[n.index()].is_up())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_cluster_is_all_free() {
        let c = Cluster::new(8);
        assert_eq!(c.size(), 8);
        assert_eq!(c.free_nodes().len(), 8);
        assert_eq!(c.up_count(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_size_panics() {
        let _ = Cluster::new(0);
    }

    #[test]
    fn claim_release_cycle() {
        let mut c = Cluster::new(4);
        let p = Partition::contiguous(1, 2);
        c.claim(&p).unwrap();
        assert!(!c.is_free(NodeId::new(1)));
        assert!(c.is_free(NodeId::new(0)));
        assert_eq!(
            c.claim(&p),
            Err(ClusterError::NodeUnavailable(NodeId::new(1)))
        );
        c.release(&p).unwrap();
        assert!(c.is_free(NodeId::new(1)));
        assert_eq!(c.release(&p), Err(ClusterError::NotClaimed(NodeId::new(1))));
    }

    #[test]
    fn claim_is_atomic_on_failure() {
        let mut c = Cluster::new(4);
        c.mark_down(NodeId::new(2), SimTime::from_secs(120));
        let p = Partition::contiguous(1, 2); // nodes 1, 2; 2 is down
        assert!(c.claim(&p).is_err());
        // Node 1 must not have been claimed by the failed attempt.
        assert!(c.is_free(NodeId::new(1)));
    }

    #[test]
    fn down_nodes_are_not_free() {
        let mut c = Cluster::new(4);
        c.mark_down(NodeId::new(0), SimTime::from_secs(10));
        assert!(!c.is_free(NodeId::new(0)));
        assert_eq!(c.up_count(), 3);
        c.mark_up(NodeId::new(0));
        assert!(c.is_free(NodeId::new(0)));
    }

    #[test]
    fn down_does_not_release_claim() {
        let mut c = Cluster::new(2);
        let p = Partition::contiguous(0, 1);
        c.claim(&p).unwrap();
        c.mark_down(NodeId::new(0), SimTime::from_secs(5));
        c.mark_up(NodeId::new(0));
        // Still claimed after recovery.
        assert!(!c.is_free(NodeId::new(0)));
        c.release(&p).unwrap();
        assert!(c.is_free(NodeId::new(0)));
    }

    #[test]
    fn unknown_node_errors() {
        let mut c = Cluster::new(2);
        let p = Partition::new([NodeId::new(9)]).unwrap();
        assert_eq!(c.claim(&p), Err(ClusterError::UnknownNode(NodeId::new(9))));
        assert_eq!(
            c.release(&p),
            Err(ClusterError::UnknownNode(NodeId::new(9)))
        );
        assert!(!c.is_free(NodeId::new(9)));
    }

    #[test]
    fn all_up_ignores_claims() {
        let mut c = Cluster::new(3);
        let p = Partition::contiguous(0, 3);
        c.claim(&p).unwrap();
        assert!(c.all_up(&p));
        c.mark_down(NodeId::new(1), SimTime::from_secs(1));
        assert!(!c.all_up(&p));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ClusterError::UnknownNode(NodeId::new(1)),
            ClusterError::NodeUnavailable(NodeId::new(1)),
            ClusterError::NotClaimed(NodeId::new(1)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
