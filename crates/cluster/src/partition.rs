//! Node partitions: the unit of allocation.
//!
//! A partition is a non-empty set of distinct nodes on which a single job
//! runs exclusively (§3.3: "only one job may run on a given node at a
//! time"). Nodes are stored sorted, which makes set operations cheap and
//! renders deterministic.

use crate::node::NodeId;
use std::fmt;

/// A sorted, duplicate-free, non-empty set of nodes.
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
/// use pqos_cluster::partition::Partition;
///
/// let p = Partition::new([NodeId::new(3), NodeId::new(1), NodeId::new(3)]).unwrap();
/// assert_eq!(p.len(), 2);
/// assert!(p.contains(NodeId::new(1)));
/// assert!(!p.contains(NodeId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    nodes: Vec<NodeId>,
}

/// Error returned when constructing an empty [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyPartitionError;

impl fmt::Display for EmptyPartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition must contain at least one node")
    }
}

impl std::error::Error for EmptyPartitionError {}

impl Partition {
    /// Builds a partition from any collection of node ids, sorting and
    /// deduplicating.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyPartitionError`] if no nodes are supplied.
    pub fn new<I: IntoIterator<Item = NodeId>>(nodes: I) -> Result<Self, EmptyPartitionError> {
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            Err(EmptyPartitionError)
        } else {
            Ok(Partition { nodes })
        }
    }

    /// A partition covering the contiguous index range `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn contiguous(start: u32, len: u32) -> Self {
        assert!(len > 0, "contiguous partition must be non-empty");
        Partition {
            nodes: (start..start + len).map(NodeId::new).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: partitions are non-empty by construction. Provided
    /// for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` belongs to this partition.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Iterates over member nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Member nodes as a sorted slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether the two partitions share any node.
    ///
    /// # Examples
    ///
    /// ```
    /// use pqos_cluster::partition::Partition;
    ///
    /// let a = Partition::contiguous(0, 4);
    /// let b = Partition::contiguous(3, 4);
    /// let c = Partition::contiguous(4, 4);
    /// assert!(a.overlaps(&b));
    /// assert!(!a.overlaps(&c));
    /// ```
    pub fn overlaps(&self, other: &Partition) -> bool {
        // Merge-walk over the two sorted lists.
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            match self.nodes[i].cmp(&other.nodes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a Partition {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let p = Partition::new([NodeId::new(5), NodeId::new(1), NodeId::new(5)]).unwrap();
        assert_eq!(p.as_slice(), &[NodeId::new(1), NodeId::new(5)]);
    }

    #[test]
    fn empty_is_an_error() {
        assert_eq!(Partition::new([]), Err(EmptyPartitionError));
        assert!(!EmptyPartitionError.to_string().is_empty());
    }

    #[test]
    fn contiguous_builds_range() {
        let p = Partition::contiguous(4, 3);
        assert_eq!(
            p.as_slice(),
            &[NodeId::new(4), NodeId::new(5), NodeId::new(6)]
        );
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn overlap_detection() {
        let a = Partition::new([NodeId::new(0), NodeId::new(2), NodeId::new(9)]).unwrap();
        let b = Partition::new([NodeId::new(1), NodeId::new(9)]).unwrap();
        let c = Partition::new([NodeId::new(3), NodeId::new(4)]).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display_lists_members() {
        let p = Partition::contiguous(0, 2);
        assert_eq!(p.to_string(), "{n0,n1}");
    }

    #[test]
    fn iterates_in_order() {
        let p = Partition::new([NodeId::new(9), NodeId::new(2)]).unwrap();
        let v: Vec<NodeId> = (&p).into_iter().collect();
        assert_eq!(v, vec![NodeId::new(2), NodeId::new(9)]);
    }
}
