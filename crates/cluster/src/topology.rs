//! Communication topologies and the allocation constraints they impose.
//!
//! The paper's experiments use a *flat (all-to-all)* architecture (§4.4):
//! any set of free nodes can host a job. Machines like BlueGene/L instead
//! require contiguous blocks; the [`Topology::Line`] variant models that
//! constraint in one dimension and is used by the scheduler ablations.

use crate::node::NodeId;
use crate::partition::Partition;
use std::fmt;

/// Connectivity model of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// All-to-all: any subset of nodes is a valid partition.
    #[default]
    Flat,
    /// One-dimensional machine: partitions must be contiguous index ranges
    /// (a simplification of BlueGene/L-style block allocation).
    Line,
    /// Three-dimensional mesh/torus of the given dimensions: partitions
    /// must be axis-aligned rectangular sub-boxes, as in BlueGene/L block
    /// allocation. Node index = `ix + x·(iy + y·iz)`.
    ///
    /// Only job sizes that factor into a box fitting the machine are
    /// placeable — which is why BlueGene/L-era workloads (like the NASA
    /// log) use power-of-two sizes.
    Torus3d {
        /// Extent in the X dimension.
        x: u8,
        /// Extent in the Y dimension.
        y: u8,
        /// Extent in the Z dimension.
        z: u8,
    },
}

impl Topology {
    /// Whether `partition` satisfies this topology's allocation constraint.
    ///
    /// # Examples
    ///
    /// ```
    /// use pqos_cluster::node::NodeId;
    /// use pqos_cluster::partition::Partition;
    /// use pqos_cluster::topology::Topology;
    ///
    /// let gap = Partition::new([NodeId::new(0), NodeId::new(2)]).unwrap();
    /// assert!(Topology::Flat.is_valid_partition(&gap));
    /// assert!(!Topology::Line.is_valid_partition(&gap));
    /// assert!(Topology::Line.is_valid_partition(&Partition::contiguous(4, 4)));
    /// ```
    pub fn is_valid_partition(self, partition: &Partition) -> bool {
        match self {
            Topology::Flat => true,
            Topology::Line => {
                let nodes = partition.as_slice();
                let first = nodes[0].as_u32();
                nodes
                    .iter()
                    .enumerate()
                    .all(|(i, n)| n.as_u32() == first + i as u32)
            }
            Topology::Torus3d { x, y, z } => {
                let (x, y, z) = (u32::from(x), u32::from(y), u32::from(z));
                let coords: Vec<(u32, u32, u32)> = partition
                    .iter()
                    .map(|n| {
                        let i = n.as_u32();
                        (i % x, (i / x) % y, i / (x * y))
                    })
                    .collect();
                if coords.iter().any(|&(_, _, cz)| cz >= z) {
                    return false; // node index beyond the machine
                }
                let min = coords.iter().fold((u32::MAX, u32::MAX, u32::MAX), |a, c| {
                    (a.0.min(c.0), a.1.min(c.1), a.2.min(c.2))
                });
                let max = coords.iter().fold((0, 0, 0), |a, c: &(u32, u32, u32)| {
                    (a.0.max(c.0), a.1.max(c.1), a.2.max(c.2))
                });
                let volume = (max.0 - min.0 + 1) * (max.1 - min.1 + 1) * (max.2 - min.2 + 1);
                // A box is exactly filled: distinct nodes, count == volume.
                volume as usize == partition.len()
            }
        }
    }

    /// Total number of nodes this topology describes, if it fixes one
    /// (`None` for [`Topology::Flat`] and [`Topology::Line`], which adapt
    /// to any cluster size).
    pub fn machine_size(self) -> Option<u32> {
        match self {
            Topology::Flat | Topology::Line => None,
            Topology::Torus3d { x, y, z } => Some(u32::from(x) * u32::from(y) * u32::from(z)),
        }
    }

    /// Enumerates candidate partitions of `size` nodes drawn from the sorted
    /// free list, respecting the topology constraint.
    ///
    /// For [`Topology::Flat`] the candidates are sliding windows over the
    /// sorted free list — a linear-size candidate set that still offers the
    /// scheduler genuinely different failure exposures to choose among. For
    /// [`Topology::Line`] only windows that are contiguous in node index are
    /// returned.
    ///
    /// Returns an empty vector when fewer than `size` nodes are free or
    /// `size == 0`.
    pub fn candidate_partitions(self, free_sorted: &[NodeId], size: usize) -> Vec<Partition> {
        if size == 0 || free_sorted.len() < size {
            return Vec::new();
        }
        debug_assert!(
            free_sorted.windows(2).all(|w| w[0] < w[1]),
            "free list must be sorted"
        );
        if let Topology::Torus3d { x, y, z } = self {
            return torus_boxes(free_sorted, size, u32::from(x), u32::from(y), u32::from(z));
        }
        let mut out = Vec::new();
        for window in free_sorted.windows(size) {
            let contiguous = window[size - 1].as_u32() - window[0].as_u32() == (size - 1) as u32;
            if matches!(self, Topology::Line) && !contiguous {
                continue;
            }
            out.push(Partition::new(window.iter().copied()).expect("window is non-empty"));
        }
        out
    }
}

/// Enumerates every all-free axis-aligned box of exactly `size` nodes.
fn torus_boxes(free_sorted: &[NodeId], size: usize, x: u32, y: u32, z: u32) -> Vec<Partition> {
    let machine = (x * y * z) as usize;
    let mut free = vec![false; machine];
    for n in free_sorted {
        if n.index() < machine {
            free[n.index()] = true;
        }
    }
    let mut out = Vec::new();
    let size = size as u32;
    for dx in 1..=x {
        if !size.is_multiple_of(dx) {
            continue;
        }
        let rest = size / dx;
        for dy in 1..=y {
            if !rest.is_multiple_of(dy) {
                continue;
            }
            let dz = rest / dy;
            if dz == 0 || dz > z {
                continue;
            }
            for x0 in 0..=(x - dx) {
                for y0 in 0..=(y - dy) {
                    'origin: for z0 in 0..=(z - dz) {
                        let mut nodes = Vec::with_capacity(size as usize);
                        for iz in z0..z0 + dz {
                            for iy in y0..y0 + dy {
                                for ix in x0..x0 + dx {
                                    let idx = ix + x * (iy + y * iz);
                                    if !free[idx as usize] {
                                        continue 'origin;
                                    }
                                    nodes.push(NodeId::new(idx));
                                }
                            }
                        }
                        out.push(Partition::new(nodes).expect("box is non-empty"));
                    }
                }
            }
        }
    }
    out
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Flat => write!(f, "flat"),
            Topology::Line => write!(f, "line"),
            Topology::Torus3d { x, y, z } => write!(f, "torus-{x}x{y}x{z}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn flat_accepts_any_set() {
        let p = Partition::new(ids(&[0, 5, 9])).unwrap();
        assert!(Topology::Flat.is_valid_partition(&p));
    }

    #[test]
    fn line_requires_contiguity() {
        assert!(Topology::Line.is_valid_partition(&Partition::contiguous(2, 5)));
        let gap = Partition::new(ids(&[2, 4])).unwrap();
        assert!(!Topology::Line.is_valid_partition(&gap));
    }

    #[test]
    fn flat_candidates_are_sliding_windows() {
        let free = ids(&[0, 3, 4, 7]);
        let cands = Topology::Flat.candidate_partitions(&free, 2);
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0].as_slice(), &ids(&[0, 3])[..]);
        assert_eq!(cands[2].as_slice(), &ids(&[4, 7])[..]);
    }

    #[test]
    fn line_candidates_skip_gaps() {
        let free = ids(&[0, 1, 3, 4, 5]);
        let cands = Topology::Line.candidate_partitions(&free, 2);
        // Valid windows: (0,1), (3,4), (4,5); (1,3) has a gap.
        assert_eq!(cands.len(), 3);
        for c in &cands {
            assert!(Topology::Line.is_valid_partition(c));
        }
    }

    #[test]
    fn insufficient_free_nodes_yields_nothing() {
        let free = ids(&[1, 2]);
        assert!(Topology::Flat.candidate_partitions(&free, 3).is_empty());
        assert!(Topology::Flat.candidate_partitions(&free, 0).is_empty());
    }

    #[test]
    fn exact_fit_single_candidate() {
        let free = ids(&[4, 9, 11]);
        let cands = Topology::Flat.candidate_partitions(&free, 3);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].len(), 3);
    }

    #[test]
    fn torus_validates_boxes() {
        let t = Topology::Torus3d { x: 4, y: 4, z: 8 };
        // A full X-row at y=0, z=0: nodes 0..4.
        assert!(t.is_valid_partition(&Partition::contiguous(0, 4)));
        // 2x2x1 box at origin: nodes 0, 1, 4, 5.
        let square = Partition::new(ids(&[0, 1, 4, 5])).unwrap();
        assert!(t.is_valid_partition(&square));
        // An L-shape is not a box.
        let ell = Partition::new(ids(&[0, 1, 4])).unwrap();
        assert!(!t.is_valid_partition(&ell));
        // Stacking the same X-pair across Z *is* a 2x1x2 box...
        let stack = Partition::new(ids(&[0, 1, 16, 17])).unwrap();
        assert!(t.is_valid_partition(&stack));
        // ...but a diagonal across Y and Z is not (bounding box 2x2x2,
        // only 4 members).
        let split = Partition::new(ids(&[0, 1, 20, 21])).unwrap();
        assert!(!t.is_valid_partition(&split));
        // Out-of-machine node index.
        let outside = Partition::new(ids(&[200])).unwrap();
        assert!(!t.is_valid_partition(&outside));
        assert_eq!(t.machine_size(), Some(128));
        assert_eq!(Topology::Flat.machine_size(), None);
    }

    #[test]
    fn torus_candidates_are_valid_boxes_of_right_size() {
        let t = Topology::Torus3d { x: 2, y: 2, z: 2 };
        let free: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        for size in [1usize, 2, 4, 8] {
            let cands = t.candidate_partitions(&free, size);
            assert!(!cands.is_empty(), "size {size} should have boxes");
            for c in &cands {
                assert_eq!(c.len(), size);
                assert!(t.is_valid_partition(c), "candidate {c} not a box");
            }
        }
        // Size 3 has no box in a 2x2x2 machine.
        assert!(t.candidate_partitions(&free, 3).is_empty());
        // Size 5, 6, 7 likewise.
        assert!(t.candidate_partitions(&free, 6).is_empty());
    }

    #[test]
    fn torus_candidates_respect_free_set() {
        let t = Topology::Torus3d { x: 2, y: 2, z: 2 };
        // Node 0 busy: no 8-box; 4-boxes avoiding node 0 remain.
        let free: Vec<NodeId> = (1..8).map(NodeId::new).collect();
        assert!(t.candidate_partitions(&free, 8).is_empty());
        let quads = t.candidate_partitions(&free, 4);
        assert!(!quads.is_empty());
        for q in &quads {
            assert!(!q.contains(NodeId::new(0)));
        }
    }

    #[test]
    fn torus_candidate_count_matches_combinatorics() {
        // 4x4x8 machine, all free, 2-node jobs: boxes 2x1x1 (3*4*8),
        // 1x2x1 (4*3*8), 1x1x2 (4*4*7) = 96 + 96 + 112 = 304.
        let t = Topology::Torus3d { x: 4, y: 4, z: 8 };
        let free: Vec<NodeId> = (0..128).map(NodeId::new).collect();
        assert_eq!(t.candidate_partitions(&free, 2).len(), 304);
    }

    #[test]
    fn default_and_display() {
        assert_eq!(Topology::default(), Topology::Flat);
        assert_eq!(Topology::Flat.to_string(), "flat");
        assert_eq!(Topology::Line.to_string(), "line");
        assert_eq!(
            Topology::Torus3d { x: 4, y: 4, z: 8 }.to_string(),
            "torus-4x4x8"
        );
    }
}
