//! Node identity and availability state.

use pqos_sim_core::time::SimTime;
use std::fmt;

/// Identifier of a node in the cluster, densely numbered from zero.
///
/// # Examples
///
/// ```
/// use pqos_cluster::node::NodeId;
///
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(n.to_string(), "n5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw numeric value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Availability of a single node.
///
/// The paper's failure model (§4.4) keeps a failed node down for a fixed
/// restart time (120 s for a BlueGene/L node), after which it recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeState {
    /// The node is operational.
    #[default]
    Up,
    /// The node is down and will recover at the given instant.
    Down {
        /// Instant at which the node becomes available again.
        until: SimTime,
    },
}

impl NodeState {
    /// Whether the node is operational.
    pub fn is_up(self) -> bool {
        matches!(self, NodeState::Up)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeState::Up => write!(f, "up"),
            NodeState::Down { until } => write!(f, "down(until {until})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let n = NodeId::new(17);
        assert_eq!(n.index(), 17);
        assert_eq!(n.as_u32(), 17);
        assert_eq!(NodeId::from(17u32), n);
    }

    #[test]
    fn node_ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn state_predicates() {
        assert!(NodeState::Up.is_up());
        assert!(!NodeState::Down {
            until: SimTime::from_secs(10)
        }
        .is_up());
        assert_eq!(NodeState::default(), NodeState::Up);
    }

    #[test]
    fn state_display() {
        assert_eq!(NodeState::Up.to_string(), "up");
        assert!(NodeState::Down {
            until: SimTime::from_secs(9)
        }
        .to_string()
        .contains("9"));
    }
}
