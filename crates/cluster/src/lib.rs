//! # pqos-cluster
//!
//! Machine model for the DSN 2005 *Probabilistic QoS Guarantees* reproduction:
//! a fixed population of homogeneous nodes (128 in the paper's experiments)
//! that may fail independently and recover after a fixed downtime.
//!
//! * [`node`] — [`node::NodeId`] and up/down [`node::NodeState`];
//! * [`partition`] — sorted node sets, the unit of allocation;
//! * [`mask`] — packed [`mask::NodeMask`] bitmasks for word-at-a-time set
//!   algebra on node sets (the scheduler's availability timeline);
//! * [`topology`] — allocation constraints and candidate-partition
//!   enumeration for flat (all-to-all), contiguous (line), and 3-D torus
//!   (sub-box) machines;
//! * [`machine`] — the [`machine::Cluster`] with exclusive occupancy.
//!
//! # Examples
//!
//! ```
//! use pqos_cluster::machine::Cluster;
//! use pqos_cluster::topology::Topology;
//!
//! let cluster = Cluster::new(128);
//! let free = cluster.free_nodes();
//! let candidates = Topology::Flat.candidate_partitions(&free, 32);
//! assert_eq!(candidates.len(), 128 - 32 + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod mask;
pub mod node;
pub mod partition;
pub mod topology;

pub use machine::Cluster;
pub use mask::NodeMask;
pub use node::{NodeId, NodeState};
pub use partition::Partition;
pub use topology::Topology;
