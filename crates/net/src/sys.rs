//! Raw `epoll` bindings for linux/x86_64, made of direct syscalls.
//!
//! The workspace is deliberately zero-dependency, so there is no `libc`
//! to lean on: the five syscalls the event loop needs — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `pipe2` (the waker), and `read`/`write`/
//! `close` on the waker pipe — are issued with inline assembly against
//! the stable linux syscall ABI. Everything here is private to the
//! crate; the portable fallback driver in [`crate::driver`] covers every
//! other platform without any of this.
//!
//! The linux syscall numbers and flag values used below are ABI — fixed
//! forever on x86_64 — so hardcoding them is as stable as libc itself.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::sync::Arc;

// x86_64 syscall numbers (arch/x86/entry/syscalls/syscall_64.tbl).
const SYS_READ: i64 = 0;
const SYS_WRITE: i64 = 1;
const SYS_CLOSE: i64 = 3;
const SYS_EPOLL_WAIT: i64 = 232;
const SYS_EPOLL_CTL: i64 = 233;
const SYS_EPOLL_CREATE1: i64 = 291;
const SYS_PIPE2: i64 = 293;

const EINTR: i64 = 4;
const EAGAIN: i64 = 11;

const O_NONBLOCK: i64 = 0x800;
const O_CLOEXEC: i64 = 0x8_0000;
const EPOLL_CLOEXEC: i64 = 0x8_0000;

pub const EPOLL_CTL_ADD: i64 = 1;
pub const EPOLL_CTL_DEL: i64 = 2;
pub const EPOLL_CTL_MOD: i64 = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness record as the kernel fills it. On x86_64 the struct is
/// packed (12 bytes): the kernel ABI predates the alignment rules.
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// Issues a raw 4-argument syscall. Returns the kernel's result:
/// negative values are `-errno`.
#[inline]
unsafe fn syscall4(nr: i64, a0: i64, a1: i64, a2: i64, a3: i64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a0,
        in("rsi") a1,
        in("rdx") a2,
        in("r10") a3,
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// A raw fd owned by this module (the epoll instance or a pipe end);
/// closed on drop.
struct OwnedFd(i32);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe {
            let _ = syscall4(SYS_CLOSE, self.0 as i64, 0, 0, 0);
        }
    }
}

/// The write end of the waker pipe, shared by every [`EpollWaker`].
pub struct PipeWriter(OwnedFd);

/// Wakes a blocked `epoll_wait` from any thread by writing one byte into
/// the waker pipe. Cheap to clone.
#[derive(Clone)]
pub struct EpollWaker(Arc<PipeWriter>);

impl EpollWaker {
    pub fn wake(&self) {
        let byte = [1u8];
        // A full pipe means a wake is already pending; a closed read end
        // (loop exited) means nobody cares. Both are fine to ignore.
        unsafe {
            let _ = syscall4(SYS_WRITE, self.0 .0 .0 as i64, byte.as_ptr() as i64, 1, 0);
        }
    }
}

/// An epoll instance plus its self-pipe waker.
pub struct Epoll {
    epfd: OwnedFd,
    pipe_read: OwnedFd,
    pipe_write: Arc<PipeWriter>,
    events: Vec<EpollEvent>,
}

/// Token reserved for the waker pipe's read end.
pub const WAKER_DATA: u64 = u64::MAX;

impl Epoll {
    /// Creates the epoll instance and the waker pipe, registering the
    /// pipe's read end under [`WAKER_DATA`].
    pub fn new() -> io::Result<Epoll> {
        let epfd =
            OwnedFd(check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })? as i32);
        let mut fds = [0i32; 2];
        check(unsafe {
            syscall4(
                SYS_PIPE2,
                fds.as_mut_ptr() as i64,
                O_NONBLOCK | O_CLOEXEC,
                0,
                0,
            )
        })?;
        let pipe_read = OwnedFd(fds[0]);
        let pipe_write = Arc::new(PipeWriter(OwnedFd(fds[1])));
        let epoll = Epoll {
            epfd,
            pipe_read,
            pipe_write,
            events: vec![EpollEvent::default(); 256],
        };
        epoll.ctl(EPOLL_CTL_ADD, epoll.pipe_read.0, EPOLLIN, WAKER_DATA)?;
        Ok(epoll)
    }

    pub fn waker(&self) -> EpollWaker {
        EpollWaker(Arc::clone(&self.pipe_write))
    }

    fn ctl(&self, op: i64, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let event = EpollEvent { events, data };
        check(unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                self.epfd.0 as i64,
                op,
                fd as i64,
                &event as *const EpollEvent as i64,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` under `data` with the given interest set.
    pub fn add(&self, fd: i32, data: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest(readable, writable), data)
    }

    /// Replaces `fd`'s interest set.
    pub fn modify(&self, fd: i32, data: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest(readable, writable), data)
    }

    /// Removes `fd` from the interest set. Errors are swallowed: the fd
    /// may already be closed, which deregisters implicitly.
    pub fn delete(&self, fd: i32) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until readiness or `timeout_ms`. Fills `out` with
    /// `(data, events)` pairs and returns whether the waker fired (its
    /// pipe is drained here, not surfaced).
    pub fn wait(&mut self, timeout_ms: i64, out: &mut Vec<(u64, u32)>) -> io::Result<bool> {
        out.clear();
        let n = loop {
            let ret = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.epfd.0 as i64,
                    self.events.as_mut_ptr() as i64,
                    self.events.len() as i64,
                    timeout_ms,
                )
            };
            if ret == -EINTR {
                continue;
            }
            break check(ret)? as usize;
        };
        let mut woke = false;
        for event in &self.events[..n] {
            let (data, bits) = (event.data, event.events);
            if data == WAKER_DATA {
                woke = true;
                self.drain_waker();
            } else {
                out.push((data, bits));
            }
        }
        if n == self.events.len() {
            // A full return means there may be more; grow for next time.
            let len = self.events.len() * 2;
            self.events.resize(len, EpollEvent::default());
        }
        Ok(woke)
    }

    fn drain_waker(&self) {
        let mut buf = [0u8; 64];
        loop {
            let ret = unsafe {
                syscall4(
                    SYS_READ,
                    self.pipe_read.0 as i64,
                    buf.as_mut_ptr() as i64,
                    buf.len() as i64,
                    0,
                )
            };
            if ret == -EINTR {
                continue;
            }
            if ret <= 0 || (ret as usize) < buf.len() {
                // Drained (EAGAIN lands here too via ret == -EAGAIN).
                debug_assert!(ret > 0 || ret == -EAGAIN || ret == 0);
                break;
            }
        }
    }
}

fn interest(readable: bool, writable: bool) -> u32 {
    let mut bits = EPOLLRDHUP;
    if readable {
        bits |= EPOLLIN;
    }
    if writable {
        bits |= EPOLLOUT;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_sees_a_readable_socket_and_the_waker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), 7, true, false).unwrap();

        // Nothing pending: a zero-timeout wait returns empty.
        let mut ready = Vec::new();
        let woke = epoll.wait(0, &mut ready).unwrap();
        assert!(!woke);
        assert!(ready.is_empty());

        // A connecting client makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        let woke = epoll.wait(5_000, &mut ready).unwrap();
        assert!(!woke);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, 7);
        assert_ne!(ready[0].1 & EPOLLIN, 0);

        // Accept it and watch the conversation both ways.
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        epoll.add(server_side.as_raw_fd(), 9, true, true).unwrap();
        client.write_all(b"hello\n").unwrap();
        let mut saw_conn = false;
        for _ in 0..10 {
            epoll.wait(5_000, &mut ready).unwrap();
            if ready.iter().any(|&(d, bits)| d == 9 && bits & EPOLLIN != 0) {
                saw_conn = true;
                break;
            }
        }
        assert!(saw_conn, "connection readability never surfaced");

        // The waker fires from another thread and is drained internally.
        epoll.delete(server_side.as_raw_fd());
        let waker = epoll.waker();
        let t = std::thread::spawn(move || waker.wake());
        let woke = epoll.wait(5_000, &mut ready).unwrap();
        t.join().unwrap();
        assert!(woke);
        // Drained: an immediate re-poll is quiet.
        let woke = epoll.wait(0, &mut ready).unwrap();
        assert!(!woke);
    }
}
