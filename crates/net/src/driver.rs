//! Readiness driver behind the event loop.
//!
//! On linux/x86_64 this is the raw-syscall epoll from [`crate::sys`]:
//! the loop sleeps in `epoll_wait` and only touches sockets the kernel
//! reports ready. Everywhere else (and if epoll creation fails at
//! runtime) a portable fallback takes over: it has no readiness source,
//! so it reports *every* registered token as ready on a short cadence
//! and relies on the sockets being nonblocking — correct, just not as
//! efficient. The [`Waker`] is a pipe write in epoll mode and a
//! mutex/condvar flag in fallback mode; both are `Clone + Send` and
//! safe to fire from any thread, including after the loop has exited.

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
use crate::sys;

/// Readiness bits reported per token, driver-independent.
#[derive(Clone, Copy)]
pub struct Ready {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

/// Wakes a blocked [`Poll::wait`] from another thread.
#[derive(Clone)]
pub struct Waker(WakerInner);

#[derive(Clone)]
enum WakerInner {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Pipe(sys::EpollWaker),
    Flag(Arc<Flag>),
}

impl Waker {
    pub fn wake(&self) {
        match &self.0 {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            WakerInner::Pipe(pipe) => pipe.wake(),
            WakerInner::Flag(flag) => flag.raise(),
        }
    }
}

pub struct Flag {
    raised: Mutex<bool>,
    bell: Condvar,
}

impl Flag {
    fn raise(&self) {
        *self.raised.lock().unwrap() = true;
        self.bell.notify_all();
    }
}

pub enum Poll {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Epoll(sys::Epoll),
    /// Portable fallback: token bookkeeping plus a condvar to sleep on.
    Sleep { tokens: Vec<u64>, flag: Arc<Flag> },
}

impl Poll {
    /// Picks the best driver available: epoll where the raw syscalls
    /// exist, the sleep-poller otherwise.
    pub fn new() -> Poll {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Ok(epoll) = sys::Epoll::new() {
            return Poll::Epoll(epoll);
        }
        Poll::Sleep {
            tokens: Vec::new(),
            flag: Arc::new(Flag {
                raised: Mutex::new(false),
                bell: Condvar::new(),
            }),
        }
    }

    /// Whether the driver has a real readiness source. When false the
    /// caller should keep wait timeouts short: every wait reports every
    /// token ready and the sockets themselves (nonblocking) say no.
    pub fn readiness(&self) -> bool {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poll::Epoll(_) => true,
            Poll::Sleep { .. } => false,
        }
    }

    pub fn waker(&self) -> Waker {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poll::Epoll(epoll) => Waker(WakerInner::Pipe(epoll.waker())),
            Poll::Sleep { flag, .. } => Waker(WakerInner::Flag(Arc::clone(flag))),
        }
    }

    pub fn add(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poll::Epoll(epoll) => epoll.add(fd, token, readable, writable),
            Poll::Sleep { tokens, .. } => {
                tokens.push(token);
                Ok(())
            }
        }
    }

    pub fn modify(
        &mut self,
        fd: i32,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poll::Epoll(epoll) => epoll.modify(fd, token, readable, writable),
            Poll::Sleep { .. } => Ok(()),
        }
    }

    pub fn delete(&mut self, fd: i32, token: u64) {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poll::Epoll(epoll) => {
                let _ = token;
                epoll.delete(fd);
            }
            Poll::Sleep { tokens, .. } => {
                let _ = fd;
                tokens.retain(|&t| t != token);
            }
        }
    }

    /// Sleeps until readiness, a wake, or `timeout`. Returns whether the
    /// waker fired; readiness records land in `out`.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Ready>) -> io::Result<bool> {
        out.clear();
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poll::Epoll(epoll) => {
                // Round sub-millisecond timeouts up so a short deadline
                // does not degenerate into a busy `epoll_wait(0)` spin.
                let ms = timeout.as_micros().div_ceil(1000).min(i64::MAX as u128) as i64;
                let mut raw = Vec::new();
                let woke = epoll.wait(ms, &mut raw)?;
                for (token, bits) in raw {
                    out.push(Ready {
                        token,
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        error: bits & sys::EPOLLERR != 0,
                    });
                }
                Ok(woke)
            }
            Poll::Sleep { tokens, flag } => {
                let mut raised = flag.raised.lock().unwrap();
                if !*raised {
                    let (guard, _) = flag.bell.wait_timeout(raised, timeout).unwrap();
                    raised = guard;
                }
                let woke = std::mem::replace(&mut *raised, false);
                drop(raised);
                for &token in tokens.iter() {
                    out.push(Ready {
                        token,
                        readable: true,
                        writable: true,
                        error: false,
                    });
                }
                Ok(woke)
            }
        }
    }
}
