//! `pqos-net`: a hand-rolled nonblocking connection layer.
//!
//! One thread owns every socket. On linux/x86_64 it sleeps in a raw
//! `epoll_wait` (no libc — see [`sys`]); elsewhere a portable polling
//! fallback drives the same nonblocking sockets. The loop speaks a
//! newline-delimited framing: callers receive whole lines and queue
//! whole replies, and never touch a socket directly.
//!
//! ```text
//!            accept/read/write readiness        callback
//!   kernel ────────────────────────────▶ loop ───────────▶ NetEvent
//!                                         ▲                  │
//!   other threads ── Waker::wake() ───────┘     Ctx::send ◀──┘
//! ```
//!
//! Events delivered to the callback:
//! - [`NetEvent::Opened`] — a connection was accepted.
//! - [`NetEvent::Line`] — one complete line, without the trailing `\n`.
//! - [`NetEvent::Flushed`] — write progress: the total number of bytes
//!   flushed to the socket so far (pairs with the watermark returned by
//!   [`Ctx::send`] for at-the-wire accounting).
//! - [`NetEvent::Closed`] — the connection is gone (peer close, error,
//!   overlong line, or backpressure overflow). Its token is dead.
//! - [`NetEvent::Wake`] — some thread called [`Waker::wake`]; drain
//!   whatever queue that thread filled.
//! - [`NetEvent::Tick`] — periodic heartbeat (`NetConfig::tick`) for
//!   housekeeping such as drain polling.
//!
//! Backpressure is bounded on both sides: a line longer than
//! `max_line` kills the connection, and a peer that stops reading has
//! its reads paused at `high_water` queued reply bytes and is dropped
//! at `hard_cap`.

mod driver;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys;

pub use driver::Waker;

use driver::{Poll, Ready};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Identifies one connection for the lifetime of the loop. Tokens are
/// never reused.
pub type Token = u64;

const LISTENER_TOKEN: Token = 0;
const READ_CHUNK: usize = 64 * 1024;
/// How long a draining loop waits for unflushed replies before giving
/// up on their connections.
const DRAIN_GRACE: Duration = Duration::from_secs(3);

/// Tuning knobs for the event loop. The defaults fit the JSON-lines
/// protocol: requests are a few hundred bytes, replies likewise (dumps
/// can reach a few hundred KiB).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// A connection sending a line longer than this is dropped.
    pub max_line: usize,
    /// Queued reply bytes at which the connection's reads are paused.
    pub high_water: usize,
    /// Queued reply bytes at which a slow reader is dropped.
    pub hard_cap: usize,
    /// Cadence of [`NetEvent::Tick`].
    pub tick: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_line: 1024 * 1024,
            high_water: 256 * 1024,
            hard_cap: 4 * 1024 * 1024,
            tick: Duration::from_millis(200),
        }
    }
}

/// What the loop tells its callback. Line payloads exclude the
/// trailing newline.
#[derive(Debug)]
pub enum NetEvent<'a> {
    Opened(Token),
    Line(Token, &'a [u8]),
    /// Total bytes flushed to this connection's socket so far.
    Flushed(Token, u64),
    Closed(Token),
    Wake,
    Tick,
}

struct Conn {
    stream: TcpStream,
    fd: i32,
    inbuf: Vec<u8>,
    scan_from: usize,
    outbuf: Vec<u8>,
    out_sent: usize,
    flushed_total: u64,
    queued_total: u64,
    peer_closed: bool,
    reg_read: bool,
    reg_write: bool,
    flush_dirty: bool,
}

impl Conn {
    fn pending(&self) -> usize {
        self.outbuf.len() - self.out_sent
    }

    /// Writes as much of the outbuf as the socket will take. Returns
    /// whether any bytes moved; errors mean the connection is dead.
    fn flush(&mut self) -> io::Result<bool> {
        let mut progress = false;
        loop {
            if self.out_sent == self.outbuf.len() {
                self.outbuf.clear();
                self.out_sent = 0;
                break;
            }
            match self.stream.write(&self.outbuf[self.out_sent..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_sent += n;
                    self.flushed_total += n as u64;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Reclaim flushed prefix once it is worth the memmove.
        if self.out_sent > READ_CHUNK {
            self.outbuf.drain(..self.out_sent);
            self.out_sent = 0;
        }
        Ok(progress)
    }
}

enum Ev {
    Opened(Token),
    Line(Token, Vec<u8>),
    Closed(Token),
}

struct LoopState {
    poll: Poll,
    conns: HashMap<Token, Conn>,
    cfg: NetConfig,
    draining: bool,
    drain_since: Option<Instant>,
    /// Tokens whose `Flushed` notification is owed this iteration.
    dirty: Vec<Token>,
    /// Tokens closed by the callback, owed a `Closed` event.
    closed_pending: Vec<Token>,
}

impl LoopState {
    fn kill(&mut self, token: Token) -> bool {
        if let Some(conn) = self.conns.remove(&token) {
            self.poll.delete(conn.fd, token);
            true
        } else {
            false
        }
    }

    fn mark_dirty(&mut self, token: Token) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.flush_dirty {
                conn.flush_dirty = true;
                self.dirty.push(token);
            }
        }
    }
}

/// Handle the callback uses to act on the loop: queue replies, close
/// connections, begin the shutdown drain.
pub struct Ctx<'a> {
    state: &'a mut LoopState,
}

impl Ctx<'_> {
    /// Queues `bytes` on the connection and flushes eagerly. Returns
    /// the connection's total queued-byte watermark (compare against
    /// [`NetEvent::Flushed`] to learn when these bytes hit the wire),
    /// or `None` if the connection is gone — including the case where
    /// this very send overflowed the hard cap or hit a write error and
    /// killed it (a `Closed` event follows).
    pub fn send(&mut self, token: Token, bytes: &[u8]) -> Option<u64> {
        let conn = self.state.conns.get_mut(&token)?;
        if conn.pending() + bytes.len() > self.state.cfg.hard_cap {
            self.state.kill(token);
            self.state.closed_pending.push(token);
            return None;
        }
        conn.outbuf.extend_from_slice(bytes);
        conn.queued_total += bytes.len() as u64;
        let watermark = conn.queued_total;
        match conn.flush() {
            Ok(progress) => {
                if progress {
                    self.state.mark_dirty(token);
                }
                Some(watermark)
            }
            Err(_) => {
                self.state.kill(token);
                self.state.closed_pending.push(token);
                None
            }
        }
    }

    /// Drops the connection now. A `Closed` event follows.
    pub fn close(&mut self, token: Token) {
        if self.state.kill(token) {
            self.state.closed_pending.push(token);
        }
    }

    /// Stops accepting and exits the loop once every queued reply is
    /// flushed (or `DRAIN_GRACE` passes).
    pub fn shutdown(&mut self) {
        if !self.state.draining {
            self.state.draining = true;
            self.state.drain_since = Some(Instant::now());
        }
    }

    pub fn is_draining(&self) -> bool {
        self.state.draining
    }

    pub fn open_conns(&self) -> usize {
        self.state.conns.len()
    }
}

/// The event loop: owns the listener, every accepted connection, and
/// the readiness driver.
pub struct EventLoop {
    listener: TcpListener,
    listener_fd: i32,
    accepting: bool,
    next_token: Token,
    state: LoopState,
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    -1
}

impl EventLoop {
    /// Takes ownership of a bound listener and prepares the driver.
    pub fn bind(listener: TcpListener, cfg: NetConfig) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let listener_fd = fd_of(&listener);
        let mut poll = Poll::new();
        poll.add(listener_fd, LISTENER_TOKEN, true, false)?;
        Ok(EventLoop {
            listener,
            listener_fd,
            accepting: true,
            next_token: 1,
            state: LoopState {
                poll,
                conns: HashMap::new(),
                cfg,
                draining: false,
                drain_since: None,
                dirty: Vec::new(),
                closed_pending: Vec::new(),
            },
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle other threads use to interrupt [`EventLoop::run`]'s
    /// sleep; each wake surfaces as one [`NetEvent::Wake`].
    pub fn waker(&self) -> Waker {
        self.state.poll.waker()
    }

    /// Runs the loop until a callback calls [`Ctx::shutdown`] and the
    /// outbound queues drain. The callback observes every event; it
    /// must not block, or the whole plane stalls.
    pub fn run<F>(mut self, mut cb: F) -> io::Result<()>
    where
        F: FnMut(NetEvent<'_>, &mut Ctx<'_>),
    {
        let mut ready: Vec<Ready> = Vec::new();
        let mut events: Vec<Ev> = Vec::new();
        let mut next_tick = Instant::now() + self.state.cfg.tick;
        loop {
            let now = Instant::now();
            let mut timeout = next_tick.saturating_duration_since(now);
            if !self.state.poll.readiness() {
                // No readiness source: poll the sockets on a short leash.
                timeout = timeout.min(Duration::from_millis(1));
            }
            let woke = self.state.poll.wait(timeout, &mut ready)?;

            if self.state.draining && self.accepting {
                self.state.poll.delete(self.listener_fd, LISTENER_TOKEN);
                self.accepting = false;
            }

            events.clear();
            if self.state.poll.readiness() {
                let batch: Vec<Ready> = ready.clone();
                for r in batch {
                    if r.token == LISTENER_TOKEN {
                        self.accept_ready(&mut events);
                    } else {
                        self.drive_conn(r.token, r.readable, r.writable || r.error, &mut events);
                    }
                }
            } else {
                // Fallback driver: everything is "ready"; the
                // nonblocking sockets sort out the truth.
                if self.accepting {
                    self.accept_ready(&mut events);
                }
                let tokens: Vec<Token> = self.state.conns.keys().copied().collect();
                for token in tokens {
                    self.drive_conn(token, true, true, &mut events);
                }
            }

            let mut ctx = Ctx {
                state: &mut self.state,
            };
            if woke {
                cb(NetEvent::Wake, &mut ctx);
            }
            for ev in events.drain(..) {
                match ev {
                    Ev::Opened(token) => cb(NetEvent::Opened(token), &mut ctx),
                    Ev::Line(token, line) => cb(NetEvent::Line(token, &line), &mut ctx),
                    Ev::Closed(token) => cb(NetEvent::Closed(token), &mut ctx),
                }
            }
            // Write-progress notifications, then callback-driven closes
            // (which Flushed handlers may add to).
            let dirty = std::mem::take(&mut ctx.state.dirty);
            for token in dirty {
                if let Some(conn) = ctx.state.conns.get_mut(&token) {
                    conn.flush_dirty = false;
                    let total = conn.flushed_total;
                    cb(NetEvent::Flushed(token, total), &mut ctx);
                }
            }
            while let Some(token) = ctx.state.closed_pending.pop() {
                cb(NetEvent::Closed(token), &mut ctx);
            }
            let now = Instant::now();
            if now >= next_tick {
                cb(NetEvent::Tick, &mut ctx);
                next_tick = now + ctx.state.cfg.tick;
            }

            self.sweep();

            if self.state.draining {
                let flushed = self.state.conns.values().all(|c| c.pending() == 0);
                let grace_up = self
                    .state
                    .drain_since
                    .map(|t| t.elapsed() >= DRAIN_GRACE)
                    .unwrap_or(true);
                if flushed || grace_up {
                    return Ok(());
                }
            }
        }
    }

    fn accept_ready(&mut self, events: &mut Vec<Ev>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let fd = fd_of(&stream);
                    if self.state.poll.add(fd, token, true, false).is_err() {
                        continue;
                    }
                    self.state.conns.insert(
                        token,
                        Conn {
                            stream,
                            fd,
                            inbuf: Vec::new(),
                            scan_from: 0,
                            outbuf: Vec::new(),
                            out_sent: 0,
                            flushed_total: 0,
                            queued_total: 0,
                            peer_closed: false,
                            reg_read: true,
                            reg_write: false,
                            flush_dirty: false,
                        },
                    );
                    events.push(Ev::Opened(token));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE and friends): give
                // up for this iteration, the next wait retries.
                Err(_) => break,
            }
        }
    }

    /// Performs I/O on one ready connection, extracting complete lines
    /// and detecting death. Removes dead connections and records their
    /// `Closed` event inline so it dispatches after their final lines.
    fn drive_conn(&mut self, token: Token, readable: bool, writable: bool, events: &mut Vec<Ev>) {
        let cfg_max_line = self.state.cfg.max_line;
        let cfg_high_water = self.state.cfg.high_water;
        let Some(conn) = self.state.conns.get_mut(&token) else {
            return;
        };
        let mut dead = false;

        if writable && conn.pending() > 0 {
            match conn.flush() {
                Ok(progress) => {
                    if progress && !conn.flush_dirty {
                        conn.flush_dirty = true;
                        self.state.dirty.push(token);
                    }
                }
                Err(_) => dead = true,
            }
        }

        // Re-borrow after the dirty push above released it.
        let Some(conn) = self.state.conns.get_mut(&token) else {
            return;
        };

        let read_ok = readable && !conn.peer_closed && !dead && conn.pending() < cfg_high_water;
        if read_ok {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&chunk[..n]);
                        // Lines complete as soon as their newline lands.
                        let mut consumed = 0;
                        while let Some(pos) = conn.inbuf[conn.scan_from..]
                            .iter()
                            .position(|&b| b == b'\n')
                        {
                            let end = conn.scan_from + pos;
                            events.push(Ev::Line(token, conn.inbuf[consumed..end].to_vec()));
                            consumed = end + 1;
                            conn.scan_from = consumed;
                        }
                        if consumed > 0 {
                            conn.inbuf.drain(..consumed);
                            conn.scan_from = 0;
                        } else {
                            conn.scan_from = conn.inbuf.len();
                        }
                        if conn.inbuf.len() > cfg_max_line {
                            dead = true;
                            break;
                        }
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }

        if conn.peer_closed && conn.pending() == 0 {
            dead = true;
        }
        if dead {
            self.state.kill(token);
            events.push(Ev::Closed(token));
        }
    }

    /// Reconciles each connection's driver interest with its current
    /// state: reads pause above the high-water mark, write interest
    /// exists only while the outbuf holds bytes.
    fn sweep(&mut self) {
        let state = &mut self.state;
        for (&token, conn) in state.conns.iter_mut() {
            let want_read = !conn.peer_closed && conn.pending() < state.cfg.high_water;
            let want_write = conn.pending() > 0;
            if (want_read != conn.reg_read || want_write != conn.reg_write)
                && state
                    .poll
                    .modify(conn.fd, token, want_read, want_write)
                    .is_ok()
            {
                conn.reg_read = want_read;
                conn.reg_write = want_write;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;
    use std::sync::mpsc;
    use std::thread;

    fn spawn_echo(
        cfg: NetConfig,
    ) -> (
        SocketAddr,
        Waker,
        thread::JoinHandle<io::Result<()>>,
        mpsc::Receiver<String>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ev = EventLoop::bind(listener, cfg).unwrap();
        let addr = ev.local_addr().unwrap();
        let waker = ev.waker();
        let (note_tx, note_rx) = mpsc::channel();
        let handle = thread::spawn(move || {
            ev.run(move |event, ctx| match event {
                NetEvent::Line(token, line) => {
                    if line == b"quit" {
                        ctx.shutdown();
                    } else {
                        let mut reply = line.to_vec();
                        reply.push(b'\n');
                        ctx.send(token, &reply);
                    }
                }
                NetEvent::Wake => {
                    let _ = note_tx.send("wake".to_string());
                }
                NetEvent::Closed(token) => {
                    let _ = note_tx.send(format!("closed {token}"));
                }
                _ => {}
            })
        });
        (addr, waker, handle, note_rx)
    }

    #[test]
    fn echoes_lines_split_across_arbitrary_writes() {
        let (addr, _waker, handle, _notes) = spawn_echo(NetConfig::default());
        let mut client = TcpStream::connect(addr).unwrap();
        // One line delivered in three torn writes, then two in one.
        client.write_all(b"hel").unwrap();
        client.flush().unwrap();
        thread::sleep(Duration::from_millis(10));
        client.write_all(b"lo wor").unwrap();
        thread::sleep(Duration::from_millis(10));
        client.write_all(b"ld\nsecond\nthird\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello world\n");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "second\n");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "third\n");
        client.write_all(b"quit\n").unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn waker_interrupts_the_sleep() {
        let (addr, waker, handle, notes) = spawn_echo(NetConfig::default());
        waker.wake();
        let note = notes.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(note, "wake");
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"quit\n").unwrap();
        handle.join().unwrap().unwrap();
        // Waking after exit is a no-op, not a panic.
        waker.wake();
    }

    #[test]
    fn overlong_line_drops_the_connection() {
        let cfg = NetConfig {
            max_line: 64,
            ..NetConfig::default()
        };
        let (addr, _waker, handle, notes) = spawn_echo(cfg);
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&[b'x'; 256]).unwrap();
        let note = notes.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(note.starts_with("closed"), "expected a close, got {note}");
        // The loop survives: a well-behaved client still gets service.
        let mut good = TcpStream::connect(addr).unwrap();
        good.write_all(b"ping\n").unwrap();
        let mut reader = BufReader::new(good.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ping\n");
        good.write_all(b"quit\n").unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn abrupt_close_emits_closed_and_loop_survives() {
        let (addr, _waker, handle, notes) = spawn_echo(NetConfig::default());
        let client = TcpStream::connect(addr).unwrap();
        drop(client);
        let note = notes.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(note.starts_with("closed"), "expected a close, got {note}");
        let mut quitter = TcpStream::connect(addr).unwrap();
        quitter.write_all(b"quit\n").unwrap();
        handle.join().unwrap().unwrap();
    }
}
