//! Adversarial exercise of the event loop: torn writes, partial lines,
//! slow readers leaning on the backpressure path, and abrupt closes —
//! the loop must neither panic nor wedge, and every line that made it
//! through intact must have been answered.

use pqos_net::{EventLoop, NetConfig, NetEvent};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// Deterministic xorshift64* so failures replay from the printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// An echo server with deliberately small buffers so the fuzz run hits
/// the high-water and hard-cap paths quickly.
fn spawn_server() -> (SocketAddr, thread::JoinHandle<()>) {
    let cfg = NetConfig {
        max_line: 4096,
        high_water: 8 * 1024,
        hard_cap: 64 * 1024,
        tick: Duration::from_millis(50),
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let ev = EventLoop::bind(listener, cfg).unwrap();
    let addr = ev.local_addr().unwrap();
    let handle = thread::spawn(move || {
        ev.run(|event, ctx| {
            if let NetEvent::Line(token, line) = event {
                if line == b"quit" {
                    ctx.shutdown();
                } else {
                    let mut reply = Vec::with_capacity(line.len() + 1);
                    reply.extend_from_slice(line);
                    reply.push(b'\n');
                    ctx.send(token, &reply);
                }
            }
        })
        .unwrap();
    });
    (addr, handle)
}

/// Sends `total` numbered lines in randomly torn chunks while reading
/// echoes, and verifies every line comes back verbatim and in order.
fn torn_writer(addr: SocketAddr, rng: &mut Rng, total: usize) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut wire = Vec::new();
    for i in 0..total {
        let pad = "x".repeat(rng.below(64) as usize);
        wire.extend_from_slice(format!("line-{i}-{pad}\n").as_bytes());
    }
    let expected = wire.clone();

    let reader = {
        let mut stream = stream.try_clone().unwrap();
        let want = expected.len();
        thread::spawn(move || {
            let mut got = Vec::new();
            let mut buf = [0u8; 1024];
            while got.len() < want {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => panic!("echo read failed: {e}"),
                }
            }
            got
        })
    };

    let mut sent = 0;
    while sent < wire.len() {
        let chunk = 1 + rng.below(17) as usize;
        let end = (sent + chunk).min(wire.len());
        stream.write_all(&wire[sent..end]).unwrap();
        sent = end;
        if rng.below(4) == 0 {
            thread::sleep(Duration::from_micros(rng.below(300)));
        }
    }
    let got = reader.join().unwrap();
    assert_eq!(got, expected, "echoed stream diverged");
}

#[test]
fn fuzz_torn_writes_echo_intact() {
    let (addr, handle) = spawn_server();
    let seed = 0xD5_2005u64;
    let mut threads = Vec::new();
    for t in 0..4u64 {
        let mut rng = Rng(seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1);
        threads.push(thread::spawn(move || torn_writer(addr, &mut rng, 200)));
    }
    for t in threads {
        t.join().unwrap();
    }
    TcpStream::connect(addr)
        .unwrap()
        .write_all(b"quit\n")
        .unwrap();
    handle.join().unwrap();
}

#[test]
fn fuzz_abrupt_closers_never_wedge_the_loop() {
    let (addr, handle) = spawn_server();
    let mut rng = Rng(0xFEED_FACE | 1);
    // A horde of clients that write garbage fragments — often without a
    // final newline — and vanish without reading a byte.
    for _ in 0..64 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let n = rng.below(600) as usize;
        let mut junk = Vec::with_capacity(n);
        for _ in 0..n {
            // Mostly printable noise, sprinkled with newlines.
            let b = if rng.below(10) == 0 {
                b'\n'
            } else {
                b' ' + (rng.below(90) as u8)
            };
            junk.push(b);
        }
        let _ = stream.write_all(&junk);
        drop(stream);
    }
    // A few clients that send an overlong line (> max_line 4096).
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(&vec![b'y'; 16 * 1024]);
        // Server may drop the conn mid-write (EPIPE here) — that is the
        // expected outcome, not a failure.
        thread::sleep(Duration::from_millis(5));
    }
    // The loop is still alive and still correct.
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    probe.write_all(b"still-there\n").unwrap();
    let mut buf = [0u8; 64];
    let mut got = Vec::new();
    while !got.ends_with(b"\n") {
        let n = probe.read(&mut buf).unwrap();
        assert_ne!(n, 0, "server hung up on the healthy probe");
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, b"still-there\n");
    probe.write_all(b"quit\n").unwrap();
    handle.join().unwrap();
}

#[test]
fn fuzz_slow_reader_is_backpressured_then_dropped() {
    // Replies here are NOT driven by client reads: any connection that
    // says "subscribe" gets a 4 KiB line pushed on every tick, the way
    // engine completions arrive regardless of what the peer is doing.
    // A subscriber that never reads must be dropped at the hard cap
    // rather than buffered without bound.
    let cfg = NetConfig {
        max_line: 4096,
        high_water: 8 * 1024,
        hard_cap: 64 * 1024,
        tick: Duration::from_millis(20),
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let ev = EventLoop::bind(listener, cfg).unwrap();
    let addr = ev.local_addr().unwrap();
    let handle = thread::spawn(move || {
        let mut subscribers: Vec<u64> = Vec::new();
        let payload = {
            let mut p = vec![b'z'; 4095];
            p.push(b'\n');
            p
        };
        ev.run(move |event, ctx| match event {
            NetEvent::Line(token, line) => {
                if line == b"quit" {
                    ctx.shutdown();
                } else if line == b"subscribe" {
                    subscribers.push(token);
                } else {
                    let mut reply = line.to_vec();
                    reply.push(b'\n');
                    ctx.send(token, &reply);
                }
            }
            NetEvent::Closed(token) => subscribers.retain(|&t| t != token),
            NetEvent::Tick => {
                // Push hard: kernel socket buffers must fill before
                // backpressure shows, and they are megabytes deep.
                for token in subscribers.clone() {
                    for _ in 0..16 {
                        if ctx.send(token, &payload).is_none() {
                            break;
                        }
                    }
                }
            }
            _ => {}
        })
        .unwrap();
    });

    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"subscribe\n").unwrap();
    // Never read; the server's eventual close arrives as a reset (it
    // closed with data we refused to consume), surfacing as a write
    // error on these occasional pings.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut dropped = false;
    while Instant::now() < deadline {
        match slow.write_all(b"ping\n") {
            Ok(()) => thread::sleep(Duration::from_millis(50)),
            Err(_) => {
                dropped = true;
                break;
            }
        }
    }
    assert!(dropped, "slow subscriber was never disconnected");

    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    probe.write_all(b"after-pressure\n").unwrap();
    let mut buf = [0u8; 64];
    let mut got = Vec::new();
    while !got.ends_with(b"\n") {
        let n = probe.read(&mut buf).unwrap();
        assert_ne!(n, 0, "server hung up on the healthy probe");
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, b"after-pressure\n");
    probe.write_all(b"quit\n").unwrap();
    handle.join().unwrap();
}
