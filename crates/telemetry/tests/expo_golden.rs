//! Golden-file test for the Prometheus exposition: a deterministically
//! seeded registry must render byte-for-byte what the committed golden
//! says. Any change to name sanitization, label ordering/escaping,
//! histogram expansion, or family headers shows up here as a diff a
//! reviewer can read, instead of silently changing what scrapers see.
//!
//! To regenerate after a deliberate format change:
//!
//! ```text
//! UPDATE_EXPO_GOLDEN=1 cargo test -p pqos-telemetry --test expo_golden
//! ```

use pqos_telemetry::{expo, labeled, MetricsRegistry};

/// A registry exercising every exposition feature: plain and labeled
/// counters, gauges (including a negative one), a multi-label histogram,
/// and names that need sanitizing.
fn seeded() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("jobs.quoted").add(42);
    registry
        .counter(&labeled("rpc.requests_total", &[("verb", "negotiate")]))
        .add(7);
    registry
        .counter(&labeled("rpc.requests_total", &[("verb", "status")]))
        .add(2);
    registry.gauge("engine.queue_depth").set(3);
    registry.gauge("engine.drift").set(-5);
    registry.gauge("process.uptime_seconds").set(61);
    let stage = registry.histogram(&labeled(
        "rpc.stage_ns",
        &[("stage", "compute"), ("verb", "negotiate")],
    ));
    for v in [1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0] {
        stage.observe(v);
    }
    registry
}

#[test]
fn exposition_matches_the_committed_golden() {
    let text = expo::render(&seeded().snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.txt");
    if std::env::var_os("UPDATE_EXPO_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file committed");
    assert_eq!(
        text, golden,
        "exposition drifted from the golden; if deliberate, regenerate with \
         UPDATE_EXPO_GOLDEN=1 cargo test -p pqos-telemetry --test expo_golden"
    );
}

#[test]
fn the_golden_itself_parses_and_round_trips() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/exposition.txt"
    ))
    .expect("golden file committed");
    let samples = expo::parse(&golden).expect("golden is valid exposition");
    assert_eq!(
        expo::find(&samples, "pqos_jobs_quoted", &[]),
        Some(42.0),
        "the golden carries the seeded values"
    );
    assert_eq!(
        expo::find(&samples, "pqos_rpc_requests_total", &[("verb", "status")]),
        Some(2.0)
    );
    assert_eq!(
        expo::find(
            &samples,
            "pqos_rpc_stage_ns_count",
            &[("stage", "compute"), ("verb", "negotiate")]
        ),
        Some(5.0)
    );
}
