//! Prometheus text-format exposition (v0.0.4) for metric [`Snapshot`]s,
//! plus a small parser for the same format.
//!
//! The renderer is what `pqos-qosd` serves on its `/metrics` endpoint; the
//! parser is what `pqos-top` and the CI smoke test use to read it back.
//! Registry names like `rpc.stage_ns{stage="queue"}` (see
//! [`labeled`](crate::metrics::labeled)) become families named
//! `pqos_rpc_stage_ns` with label pairs, and every histogram summary
//! expands into the standard `_bucket`/`_sum`/`_count` triplet using the
//! fixed ladder from [`bucket_bounds`](crate::metrics::bucket_bounds).
//!
//! # Examples
//!
//! ```
//! use pqos_telemetry::metrics::MetricsRegistry;
//! use pqos_telemetry::expo;
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("jobs.quoted").add(3);
//! let text = expo::render(&registry.snapshot());
//! assert!(text.contains("pqos_jobs_quoted 3"));
//! let samples = expo::parse(&text).unwrap();
//! assert_eq!(expo::find(&samples, "pqos_jobs_quoted", &[]), Some(3.0));
//! ```

use crate::metrics::{split_labeled, Snapshot};
use std::fmt::Write as _;

/// One parsed sample line: family name, label pairs (source order), value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name (e.g. `pqos_rpc_stage_ns_bucket`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Maps a registry name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every invalid character becomes `_` and
/// the result is prefixed with `pqos_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("pqos_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float the way Prometheus expects: integral values without a
/// trailing `.0`, everything else in shortest round-trip form.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders `{labels}` (with an optional extra `le` pair appended) or the
/// empty string when there are no labels at all.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Emits `# HELP` / `# TYPE` headers the first time a family appears.
fn header(out: &mut String, last: &mut String, family: &str, original: &str, kind: &str) {
    if family != last {
        let _ = writeln!(out, "# HELP {family} registry metric {original}");
        let _ = writeln!(out, "# TYPE {family} {kind}");
        last.clear();
        last.push_str(family);
    }
}

/// Renders a snapshot in the Prometheus text exposition format. Families
/// appear in snapshot (sorted) order: counters, then gauges, then
/// histograms; multiple label sets of one family share a single
/// `# HELP`/`# TYPE` header. An empty snapshot renders to an empty string.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, value) in &snapshot.counters {
        let (base, labels) = split_labeled(key);
        let family = sanitize_name(base);
        header(&mut out, &mut last_family, &family, base, "counter");
        let _ = writeln!(out, "{family}{} {value}", label_block(&labels, None));
    }
    for (key, value) in &snapshot.gauges {
        let (base, labels) = split_labeled(key);
        let family = sanitize_name(base);
        header(&mut out, &mut last_family, &family, base, "gauge");
        let _ = writeln!(out, "{family}{} {value}", label_block(&labels, None));
    }
    for (key, summary) in &snapshot.histograms {
        let (base, labels) = split_labeled(key);
        let family = sanitize_name(base);
        header(&mut out, &mut last_family, &family, base, "histogram");
        for (bound, count) in &summary.buckets {
            let _ = writeln!(
                out,
                "{family}_bucket{} {count}",
                label_block(&labels, Some(&fmt_value(*bound)))
            );
        }
        let _ = writeln!(
            out,
            "{family}_bucket{} {}",
            label_block(&labels, Some("+Inf")),
            summary.count
        );
        let _ = writeln!(
            out,
            "{family}_sum{} {}",
            label_block(&labels, None),
            fmt_value(summary.total())
        );
        let _ = writeln!(
            out,
            "{family}_count{} {}",
            label_block(&labels, None),
            summary.count
        );
    }
    out
}

/// Parses exposition text back into samples. Comment (`#`) and blank lines
/// are skipped; any malformed sample line makes the whole parse fail with
/// `None` — the CI smoke test wants "valid or not", never a partial read.
pub fn parse(text: &str) -> Option<Vec<Sample>> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    Some(samples)
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (name_and_labels, value_text) = match line.find('{') {
        Some(_) => {
            let close = line.rfind('}')?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let space = line.find(char::is_whitespace)?;
            (&line[..space], line[space..].trim())
        }
    };
    let value: f64 = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => {
            // Rust's float parser also accepts "inf"/"nan" spellings; the
            // exposition format does not, so only numeric tokens pass.
            if !v
                .bytes()
                .all(|b| matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                return None;
            }
            v.parse().ok()?
        }
    };
    let (name, labels) = match name_and_labels.find('{') {
        Some(brace) => {
            let body = &name_and_labels[brace + 1..name_and_labels.len() - 1];
            (&name_and_labels[..brace], parse_labels(body)?)
        }
        None => (name_and_labels, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return None;
    }
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        rest = rest.strip_prefix('"')?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, ch)) = chars.next() {
            match ch {
                '\\' => match chars.next()?.1 {
                    'n' => value.push('\n'),
                    escaped => value.push(escaped),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        rest = &rest[consumed?..];
        labels.push((key, value));
        rest = rest.trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(labels)
}

/// Finds the value of the sample matching `name` whose labels include
/// every `(key, value)` pair in `want` (extra labels are allowed).
pub fn find(samples: &[Sample], name: &str, want: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && want
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
        .map(|s| s.value)
}

/// Estimates the `q`-quantile from cumulative `(upper_bound, count)`
/// buckets by linear interpolation inside the containing bucket —
/// the classic `histogram_quantile` calculation. Returns `None` when the
/// buckets are empty or hold no observations.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> Option<f64> {
    let total = buckets.last()?.1;
    if total == 0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut prev_bound = 0.0;
    let mut prev_count = 0u64;
    for &(bound, count) in buckets {
        if (count as f64) >= rank {
            let in_bucket = (count - prev_count) as f64;
            if in_bucket == 0.0 {
                return Some(bound);
            }
            let frac = (rank - prev_count as f64) / in_bucket;
            return Some(prev_bound + (bound - prev_bound) * frac.clamp(0.0, 1.0));
        }
        prev_bound = bound;
        prev_count = count;
    }
    Some(prev_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{labeled, MetricsRegistry};

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&Snapshot::default()), "");
        assert_eq!(parse("").unwrap(), Vec::new());
    }

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(sanitize_name("rpc.stage_ns"), "pqos_rpc_stage_ns");
        assert_eq!(sanitize_name("a-b c"), "pqos_a_b_c");
        assert_eq!(sanitize_name("ok:name_9"), "pqos_ok:name_9");
    }

    #[test]
    fn counters_and_gauges_render_and_parse_back() {
        let registry = MetricsRegistry::new();
        registry.counter("jobs.quoted").add(7);
        registry
            .counter(&labeled("rpc.requests_total", &[("verb", "negotiate")]))
            .add(3);
        registry.gauge("engine.queue_depth").set(-2);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE pqos_jobs_quoted counter"));
        assert!(text.contains("# TYPE pqos_engine_queue_depth gauge"));
        let samples = parse(&text).expect("valid exposition");
        assert_eq!(find(&samples, "pqos_jobs_quoted", &[]), Some(7.0));
        assert_eq!(
            find(
                &samples,
                "pqos_rpc_requests_total",
                &[("verb", "negotiate")]
            ),
            Some(3.0)
        );
        assert_eq!(find(&samples, "pqos_engine_queue_depth", &[]), Some(-2.0));
        assert_eq!(find(&samples, "pqos_missing", &[]), None);
    }

    #[test]
    fn label_values_are_escaped_and_unescaped() {
        let registry = MetricsRegistry::new();
        registry
            .counter(&labeled("c", &[("k", "a\"b\\c\nd")]))
            .inc();
        let text = render(&registry.snapshot());
        assert!(text.contains(r#"k="a\"b\\c\nd""#), "escaped in {text}");
        let samples = parse(&text).expect("parses");
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn histograms_expand_into_consistent_bucket_sum_count() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram(&labeled("rpc.stage_ns", &[("stage", "queue")]));
        for i in 0..1000u64 {
            h.observe((i * 977 % 100_000) as f64);
        }
        let snapshot = registry.snapshot();
        let summary = snapshot
            .histogram(&labeled("rpc.stage_ns", &[("stage", "queue")]))
            .unwrap();
        let text = render(&snapshot);
        assert!(text.contains("# TYPE pqos_rpc_stage_ns histogram"));
        let samples = parse(&text).expect("valid exposition");

        // _count and _sum agree with the summary.
        assert_eq!(
            find(&samples, "pqos_rpc_stage_ns_count", &[("stage", "queue")]),
            Some(summary.count as f64)
        );
        let sum = find(&samples, "pqos_rpc_stage_ns_sum", &[("stage", "queue")]).unwrap();
        assert!((sum - summary.total()).abs() <= summary.total().abs() * 1e-9 + 1e-9);

        // Buckets are cumulative, monotone, and end at +Inf == count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "pqos_rpc_stage_ns_bucket")
            .collect();
        assert_eq!(buckets.len(), summary.buckets.len() + 1);
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone");
        let inf = buckets.last().unwrap();
        assert!(inf.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"));
        assert_eq!(inf.value, summary.count as f64);
    }

    #[test]
    fn one_header_per_family_across_label_sets() {
        let registry = MetricsRegistry::new();
        for verb in ["accept", "cancel", "negotiate"] {
            registry
                .counter(&labeled("rpc.requests_total", &[("verb", verb)]))
                .inc();
        }
        let text = render(&registry.snapshot());
        let headers = text
            .lines()
            .filter(|l| l.starts_with("# TYPE pqos_rpc_requests_total"))
            .count();
        assert_eq!(headers, 1, "TYPE emitted once:\n{text}");
        assert_eq!(parse(&text).unwrap().len(), 3);
    }

    #[test]
    fn malformed_exposition_is_rejected() {
        assert!(parse("no_value_here").is_none());
        assert!(parse("name{unterminated 1").is_none());
        assert!(parse("9starts_with_digit 1").is_none());
        assert!(parse("bad name 1").is_none());
        assert!(parse("x NaN").is_some(), "NaN is a legal sample value");
    }

    #[test]
    fn duplicate_and_conflicting_headers_are_ignored() {
        // Scrapes stitched from two sources can repeat or contradict
        // HELP/TYPE headers; headers are commentary, samples are truth.
        let text = "# HELP pqos_x one\n# TYPE pqos_x counter\n\
                    # HELP pqos_x two\n# TYPE pqos_x gauge\n\
                    pqos_x 1\npqos_x 2\n";
        let samples = parse(text).expect("headers never invalidate samples");
        assert_eq!(samples.len(), 2);
        assert_eq!(find(&samples, "pqos_x", &[]), Some(1.0));
    }

    #[test]
    fn non_finite_values_round_trip_without_panicking() {
        let text = "a +Inf\nb -Inf\nc NaN\nd 1e309\n";
        let samples = parse(text).expect("non-finite values are legal");
        assert_eq!(find(&samples, "a", &[]), Some(f64::INFINITY));
        assert_eq!(find(&samples, "b", &[]), Some(f64::NEG_INFINITY));
        assert!(find(&samples, "c", &[]).unwrap().is_nan());
        // Overflowing literals saturate to infinity in the float parser.
        assert_eq!(find(&samples, "d", &[]), Some(f64::INFINITY));
        // But non-finite spellings outside the Prometheus vocabulary fail.
        assert!(parse("e inf").is_none());
        assert!(parse("f nan").is_none());
    }

    #[test]
    fn out_of_order_buckets_parse_and_quantile_stays_finite() {
        // A buggy exporter can emit `le` buckets out of order or
        // non-cumulatively; the parser reads the lines (they are
        // well-formed), and the quantile helper must neither panic nor
        // return a non-finite bound.
        let text = "h_bucket{le=\"10\"} 50\nh_bucket{le=\"1\"} 7\n\
                    h_bucket{le=\"+Inf\"} 50\n";
        let samples = parse(text).expect("lines are syntactically valid");
        let buckets: Vec<(f64, u64)> = samples
            .iter()
            .filter(|s| s.name == "h_bucket")
            .map(|s| {
                let le = s.labels.iter().find(|(k, _)| k == "le").unwrap();
                (le.1.parse::<f64>().unwrap_or(f64::INFINITY), s.value as u64)
            })
            .collect();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            if let Some(v) = quantile_from_buckets(&buckets, q) {
                assert!(v.is_finite() || buckets.iter().all(|(b, _)| !b.is_finite()));
            }
        }
        // Decreasing cumulative counts (impossible data) must also not
        // panic.
        assert!(quantile_from_buckets(&[(1.0, 50), (2.0, 7), (3.0, 50)], 0.5).is_some());
    }

    #[test]
    fn adversarial_label_escapes_reject_or_normalize() {
        // Trailing backslash with nothing to escape: reject.
        assert!(parse("x{k=\"a\\").is_none());
        // Unterminated label value: reject.
        assert!(parse("x{k=\"a} 1").is_none());
        // Missing '=' in a label pair: reject.
        assert!(parse("x{k} 1").is_none());
        // Unknown escape sequences normalize to the escaped character.
        let samples = parse("x{k=\"a\\qb\"} 1").expect("unknown escape normalizes");
        assert_eq!(samples[0].labels[0].1, "aqb");
        // Escaped quote and backslash inside a value survive.
        let samples = parse("x{k=\"a\\\"b\\\\c\"} 2").unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c");
        // A label value containing '}' must not confuse the name split.
        let samples = parse("x{k=\"a}b\"} 3").unwrap();
        assert_eq!(samples[0].name, "x");
        assert_eq!(samples[0].labels[0].1, "a}b");
        // Empty label block is fine; stray comma noise is tolerated by the
        // lenient splitter but the pairs must still be well formed.
        let samples = parse("x{} 4").unwrap();
        assert!(samples[0].labels.is_empty());
    }

    #[test]
    fn render_parse_round_trip_on_hostile_registry_names() {
        let registry = MetricsRegistry::new();
        registry.counter("weird name/with+chars").add(1);
        registry
            .counter(&labeled("c", &[("k", "\\trailing\\")]))
            .add(2);
        registry.gauge("9starts.with.digit").set(5);
        let text = render(&registry.snapshot());
        let samples = parse(&text).expect("rendered exposition always parses");
        assert_eq!(find(&samples, "pqos_weird_name_with_chars", &[]), Some(1.0));
        assert_eq!(
            find(&samples, "pqos_c", &[("k", "\\trailing\\")]),
            Some(2.0)
        );
        // sanitize_name prefixes, so a leading digit is legal again.
        assert_eq!(find(&samples, "pqos_9starts_with_digit", &[]), Some(5.0));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations uniform in (0, 100]: cumulative buckets at
        // 25/50/75/100.
        let buckets = vec![(25.0, 25), (50.0, 50), (75.0, 75), (100.0, 100)];
        let p50 = quantile_from_buckets(&buckets, 0.5).unwrap();
        assert!((p50 - 50.0).abs() < 1.0, "p50 {p50}");
        let p99 = quantile_from_buckets(&buckets, 0.99).unwrap();
        assert!((95.0..=100.0).contains(&p99), "p99 {p99}");
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
        assert_eq!(quantile_from_buckets(&[(1.0, 0)], 0.5), None);
    }
}
